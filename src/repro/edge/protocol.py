"""The edge wire protocol: NDJSON and binary frames, typed both ways.

Two wire formats share one port, negotiated by the **first byte** of a
connection: ``{`` opens the newline-delimited JSON protocol below;
:data:`BINARY_MAGIC` opens the length-prefixed binary frame protocol
(see *Binary frames*); anything else is HTTP.

In NDJSON form one connection carries a stream of JSON objects, one per
line.  Every client line is an *operation* (``op``) tagged with a
caller-chosen ``id``; every server line is the answer to exactly one
operation, echoing that ``id`` — so clients may pipeline freely and
match answers out of order.

Operations::

    {"v": 1, "id": "r1", "op": "read", "stack": 7, "request": {...}}
    {"id": "p1", "op": "ping"}
    {"id": "s1", "id": "s1", "op": "stats"}
    {"id": "a1", "op": "admin.scale", "shards": 4, "token": "..."}

The ``admin.*`` family (:data:`ADMIN_OPS`) is the control plane: shard
topology queries and reshapes.  Admin ops ride every wire the data ops
do — NDJSON lines, binary frames (JSON body), and HTTP
(``POST /v1/admin/<verb>`` / ``GET /v1/admin/status``) — and are gated
by the deployment's ``admin_token`` when one is configured (a missing
or wrong token answers ``invalid``; the vocabulary stays closed).

``read`` carries one :class:`~repro.serve.requests.ReadRequest` in wire
form (see :func:`request_to_wire`); ``stack`` is the client-visible
stack id the router hashes onto a shard.  Deadlines travel as *relative*
``deadline_ms`` and are re-anchored against the shard worker's clock at
decode time (the two processes share no clock).

Answers::

    {"id": "r1", "ok": true, "shard": 2, "result": {...}}
    {"id": "r1", "ok": false, "error":
        {"code": "backpressure", "message": "...", "retryable": true}}

Failures are *typed*: :data:`ERROR_CODES` is the closed vocabulary, and
``retryable`` tells a client whether backing off and resending is sound
(shard window full, shard being respawned) or pointless (malformed
request).  The same payloads ride the HTTP adapter with the status codes
in :data:`HTTP_STATUS`.
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serve.requests import (
    ReadRequest,
    ReadResult,
    RequestKind,
    ResultStatus,
    TierReading,
)

PROTOCOL_VERSION = 1

#: Hard bound on one NDJSON line (either direction).  A full-stack poll of
#: a tall stack is ~2 KiB; anything near this bound is abuse, not traffic.
MAX_LINE_BYTES = 256 * 1024

# ------------------------------------------------------------- error codes

MALFORMED = "malformed"  # line is not a JSON object
INVALID = "invalid"  # JSON is fine, the request inside is not
UNKNOWN_OP = "unknown_op"  # op outside the protocol vocabulary
OVERSIZED = "oversized"  # line exceeded MAX_LINE_BYTES
BACKPRESSURE = "backpressure"  # shard window / queue full — back off, retry
SHARD_DOWN = "shard_down"  # owning shard died mid-flight or is quarantined
CLOSED = "closed"  # server is draining; no new work
INTERNAL = "internal"  # engine exception; the request itself may be fine

ERROR_CODES = frozenset(
    {
        MALFORMED,
        INVALID,
        UNKNOWN_OP,
        OVERSIZED,
        BACKPRESSURE,
        SHARD_DOWN,
        CLOSED,
        INTERNAL,
    }
)

#: Codes a client may answer with backoff-and-resend.
RETRYABLE_CODES = frozenset({BACKPRESSURE, SHARD_DOWN})

#: HTTP status the adapter maps each code onto.
HTTP_STATUS: Dict[str, int] = {
    MALFORMED: 400,
    INVALID: 400,
    UNKNOWN_OP: 404,
    OVERSIZED: 413,
    BACKPRESSURE: 503,
    SHARD_DOWN: 503,
    CLOSED: 503,
    INTERNAL: 500,
}

# --------------------------------------------------------------- admin ops

ADMIN_STATUS = "admin.status"  # topology, generation, per-shard health
ADMIN_SCALE = "admin.scale"  # reshape to {"shards": n}
ADMIN_DRAIN_SHARD = "admin.drain_shard"  # drain + remove {"shard": i}
ADMIN_RESTART = "admin.restart"  # rolling restart (or one {"shard": i})

#: The closed control-plane op family.  Like :data:`ERROR_CODES`, this
#: vocabulary only ever grows; every verb is expressible over NDJSON,
#: binary frames (JSON body) and HTTP (``POST /v1/admin/<verb>``).
ADMIN_OPS = frozenset({ADMIN_STATUS, ADMIN_SCALE, ADMIN_DRAIN_SHARD, ADMIN_RESTART})

# -------------------------------------------------------------- stream ops

STREAM_SUBSCRIBE = "stream.subscribe"  # {"kinds": [...], "metrics": [...], "queue": n}
STREAM_UNSUBSCRIBE = "stream.unsubscribe"  # {"subscription": id}

#: The closed subscription op family.  Subscribing turns server push on
#: for the connection: event objects (``{"event": ..., "seq": ..., ...}``
#: — note: no ``id`` field) are interleaved with answers on the NDJSON
#: wire and ride JSON-body frames on the binary wire; the HTTP face
#: streams the same events as SSE over ``GET /v1/stream``.
STREAM_OPS = frozenset({STREAM_SUBSCRIBE, STREAM_UNSUBSCRIBE})

# ----------------------------------------------------------------- dtm ops

DTM_STATUS = "dtm.status"  # policy, per-(stack, tier) scales, counters
DTM_THROTTLE = "dtm.throttle"  # {"stack": s, "tier": t, "round": r, ...}
DTM_RELEASE = "dtm.release"  # {"stack": s, "tier": t, "round": r, ...}
DTM_DECISIONS = "dtm.decisions"  # {"since": seq} -> decision log tail
DTM_RESET = "dtm.reset"  # drop all scales/decisions back to full power

#: The closed thermal-management op family.  ``dtm.throttle`` and
#: ``dtm.release`` are *idempotent by round*: the server applies at most
#: one decision per (stack, tier, round) and answers duplicates with the
#: standing scale (``applied: false``), so a reconnecting controller may
#: replay without double-throttling.  Like the admin family, every verb
#: rides NDJSON lines, binary frames (JSON body) and HTTP
#: (``POST /v1/dtm/<verb>`` / ``GET /v1/dtm/status``).
DTM_OPS = frozenset({DTM_STATUS, DTM_THROTTLE, DTM_RELEASE, DTM_DECISIONS, DTM_RESET})


class EdgeError(RuntimeError):
    """One typed edge failure, as an exception.

    Raised by :class:`repro.edge.client.EdgeClient` when the server
    answers with an error payload (after retries, for retryable codes)
    and used server-side to funnel routing/window failures into wire
    errors.
    """

    def __init__(self, code: str, message: str, retryable: Optional[bool] = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown edge error code {code!r}")
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retryable = code in RETRYABLE_CODES if retryable is None else retryable

    def to_wire(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "EdgeError":
        code = payload.get("code", INTERNAL)
        if code not in ERROR_CODES:
            code = INTERNAL
        return cls(
            code,
            str(payload.get("message", "")),
            retryable=bool(payload.get("retryable", code in RETRYABLE_CODES)),
        )


# ----------------------------------------------------------------- framing


def encode(payload: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a JSON object.

    Raises:
        EdgeError: ``malformed`` when the line is not a JSON object.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise EdgeError(MALFORMED, f"line is not JSON: {error}") from error
    if not isinstance(payload, dict):
        raise EdgeError(MALFORMED, "line is not a JSON object")
    return payload


def error_payload(
    request_id: Optional[str], error: EdgeError, shard: Optional[int] = None
) -> Dict[str, Any]:
    """The failure answer to one operation."""
    payload: Dict[str, Any] = {"id": request_id, "ok": False, "error": error.to_wire()}
    if shard is not None:
        payload["shard"] = shard
    return payload


def result_payload(
    request_id: Optional[str], result_wire: Mapping[str, Any], shard: int
) -> Dict[str, Any]:
    """The success answer to one ``read`` operation."""
    return {"id": request_id, "ok": True, "shard": shard, "result": dict(result_wire)}


# ------------------------------------------------------- request round-trip

_KINDS = {kind.value: kind for kind in RequestKind}


def request_to_wire(
    request: ReadRequest, deadline_ms: Optional[float] = None
) -> Dict[str, Any]:
    """The wire form of one :class:`ReadRequest`.

    ``request.deadline_s`` is service-clock-relative and meaningless to a
    remote peer, so it never crosses the wire; pass a *relative*
    ``deadline_ms`` instead and the shard worker re-anchors it against
    its own clock on decode.
    """
    payload: Dict[str, Any] = {"kind": request.kind.value, "temp_c": request.temp_c}
    if request.tier is not None:
        payload["tier"] = request.tier
    if request.tiers is not None:
        payload["tiers"] = list(request.tiers)
    if request.temps_c is not None:
        payload["temps_c"] = {str(t): c for t, c in request.temps_c.items()}
    if request.vdd is not None:
        payload["vdd"] = request.vdd
    if request.assume_vdd is not None:
        payload["assume_vdd"] = request.assume_vdd
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


def wire_to_request(payload: Mapping[str, Any], now: float) -> ReadRequest:
    """Decode one wire request against the local clock ``now``.

    Raises:
        EdgeError: ``invalid`` on an unknown kind, missing or ill-typed
            fields — with a message naming the offence.
    """
    if not isinstance(payload, Mapping):
        raise EdgeError(INVALID, "request must be a JSON object")
    kind_name = payload.get("kind")
    kind = _KINDS.get(kind_name)
    if kind is None:
        raise EdgeError(
            INVALID,
            f"unknown request kind {kind_name!r}; known: {sorted(_KINDS)}",
        )
    deadline_ms = payload.get("deadline_ms")
    deadline_s = None
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms < 0:
            raise EdgeError(INVALID, "deadline_ms must be a non-negative number")
        deadline_s = now + float(deadline_ms) / 1e3
    temps_c = payload.get("temps_c")
    if temps_c is not None:
        if not isinstance(temps_c, Mapping):
            raise EdgeError(INVALID, "temps_c must map tier -> Celsius")
        try:
            temps_c = {int(t): float(c) for t, c in temps_c.items()}
        except (TypeError, ValueError) as error:
            raise EdgeError(INVALID, f"temps_c entries must be numeric: {error}")
    tiers = payload.get("tiers")
    if tiers is not None:
        if not isinstance(tiers, (list, tuple)):
            raise EdgeError(INVALID, "tiers must be a list of tier indices")
        try:
            tiers = tuple(int(t) for t in tiers)
        except (TypeError, ValueError) as error:
            raise EdgeError(INVALID, f"tiers entries must be integers: {error}")
    try:
        return ReadRequest(
            kind=kind,
            temp_c=float(payload.get("temp_c", 25.0)),
            tier=None if payload.get("tier") is None else int(payload["tier"]),
            tiers=tiers,
            temps_c=temps_c,
            vdd=None if payload.get("vdd") is None else float(payload["vdd"]),
            assume_vdd=(
                None
                if payload.get("assume_vdd") is None
                else float(payload["assume_vdd"])
            ),
            deadline_s=deadline_s,
        )
    except (TypeError, ValueError) as error:
        raise EdgeError(INVALID, str(error)) from error


# -------------------------------------------------------- result round-trip


def result_to_wire(result: ReadResult) -> Dict[str, Any]:
    """The wire form of one served :class:`ReadResult`."""
    return {
        "status": result.status.value,
        "batch_size": result.batch_size,
        "cache_hits": result.cache_hits,
        "error": result.error,
        "latency_ms": result.latency_s * 1e3,
        "readings": [
            {
                "tier": r.tier,
                "temperature_c": r.temperature_c,
                "dvtn": r.dvtn,
                "dvtp": r.dvtp,
                "converged": r.converged,
                "quality": r.quality,
                "cache_hit": r.cache_hit,
                "conversion_time": r.conversion_time,
                "energy_j": r.energy_j,
            }
            for r in result.readings
        ],
    }


@dataclass(frozen=True)
class EdgeResult:
    """A served answer, as the typed client returns it.

    Field-for-field the remote :class:`~repro.serve.requests.ReadResult`
    (readings are real :class:`TierReading` instances; JSON's
    shortest-round-trip floats make the values bit-identical to the
    shard's), plus the answering shard and the client-side attempt count.
    Fleet clients additionally stamp ``hedged`` (this answer raced a
    hedge) and ``host`` (the replica that won); both wires leave the
    defaults for single-host reads.
    """

    id: str
    shard: int
    status: ResultStatus
    readings: Tuple[TierReading, ...]
    batch_size: int
    cache_hits: int
    error: Optional[str]
    latency_ms: float
    attempts: int = 1
    hedged: bool = False
    host: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status in (ResultStatus.OK, ResultStatus.DEGRADED)

    def reading_for(self, tier: int) -> TierReading:
        for reading in self.readings:
            if reading.tier == tier:
                return reading
        raise KeyError(f"no reading for tier {tier}")


# ----------------------------------------------------------- binary frames
#
# The fast wire.  A frame is an 8-byte struct-packed header followed by a
# body of exactly ``length`` bytes::
#
#     0      1      2         4            8
#     +------+------+---------+------------+----------------- - -
#     | magic| ver  |  flags  |   length   |  body (length bytes)
#     | 0xB7 | 0x01 | u16 BE  |   u32 BE   |
#     +------+------+---------+------------+----------------- - -
#
# The low 4 bits of ``flags`` select the body encoding: JSON (any
# payload; the compatibility body), or fixed-field packed bodies for the
# three hot shapes — ``read`` operations, ``read`` answers, and typed
# errors.  ``encode_frame`` picks the packed form when the payload fits
# (integer ids, in-range fields) and falls back to a JSON body
# otherwise, so *every* NDJSON payload has a binary representation.
# Floats are packed as IEEE-754 doubles (struct ``d``), which is exactly
# the value — the cross-process bit-identity guarantee holds on both
# wires.
#
# The magic byte 0xB7 is not ``{`` and not an ASCII letter, so the
# server's first-byte sniffer can tell a binary connection from NDJSON
# and HTTP without consuming anything.

BINARY_MAGIC = 0xB7
BINARY_VERSION = 1

FRAME_HEADER = struct.Struct("!BBHI")  # magic, version, flags, body length
FRAME_HEADER_SIZE = FRAME_HEADER.size  # 8 bytes

#: Body encodings (low 4 bits of the header ``flags``).
FRAME_JSON = 0x0  # body is one JSON object (control ops, fallbacks)
FRAME_READ = 0x1  # packed ``read`` operation — the hot request
FRAME_RESULT = 0x2  # packed ``read`` answer
FRAME_ERROR = 0x3  # packed typed error

_FRAME_KIND_MASK = 0x000F

# Closed vocabularies get stable wire indices (wire order is part of the
# protocol; append only).
_CODE_BY_INDEX: Tuple[str, ...] = (
    MALFORMED,
    INVALID,
    UNKNOWN_OP,
    OVERSIZED,
    BACKPRESSURE,
    SHARD_DOWN,
    CLOSED,
    INTERNAL,
)
_INDEX_BY_CODE = {code: i for i, code in enumerate(_CODE_BY_INDEX)}
_KIND_BY_INDEX: Tuple[RequestKind, ...] = tuple(RequestKind)
_INDEX_BY_KIND = {kind: i for i, kind in enumerate(_KIND_BY_INDEX)}
_STATUS_BY_INDEX: Tuple[ResultStatus, ...] = tuple(ResultStatus)
_INDEX_BY_STATUS = {status: i for i, status in enumerate(_STATUS_BY_INDEX)}

# id(i64; -1 = none), stack(i64), kind(u8), tier(i16; -1 = none),
# temp_c, vdd, assume_vdd, deadline_ms (NaN = absent)
_READ_FIXED = struct.Struct("!qqBhdddd")
# id(i64), shard(i16), status(u8), batch_size(u16), cache_hits(u16),
# latency_ms
_RESULT_FIXED = struct.Struct("!qhBHHd")
# tier(u16), temperature_c, dvtn, dvtp, conversion_time, energy_j,
# converged(u8), cache_hit(u8)
_READING = struct.Struct("!HdddddBB")
# id(i64; -1 = none), shard(i16; -1 = none), code(u8), retryable(u8)
_ERROR_FIXED = struct.Struct("!qhBB")
_U16 = struct.Struct("!H")
_TEMP_ENTRY = struct.Struct("!Hd")

_ABSENT_U16 = 0xFFFF  # count sentinel: field absent (vs present-but-empty)


def _pack_str(text: Optional[str]) -> bytes:
    blob = b"" if text is None else text.encode("utf-8")
    if len(blob) > 0xFFFE:
        blob = blob[:0xFFFE]
    return _U16.pack(len(blob) + 1 if text is not None else 0) + blob


class _BodyReader:
    """Sequential unpacking with typed truncation errors."""

    def __init__(self, body: bytes, what: str) -> None:
        self.body = body
        self.offset = 0
        self.what = what

    def unpack(self, spec: struct.Struct) -> tuple:
        try:
            values = spec.unpack_from(self.body, self.offset)
        except struct.error as error:
            raise EdgeError(
                MALFORMED, f"truncated {self.what} frame: {error}"
            ) from error
        self.offset += spec.size
        return values

    def take(self, count: int) -> bytes:
        if self.offset + count > len(self.body):
            raise EdgeError(MALFORMED, f"truncated {self.what} frame")
        blob = self.body[self.offset : self.offset + count]
        self.offset += count
        return blob

    def unpack_str(self) -> Optional[str]:
        (marker,) = self.unpack(_U16)
        if marker == 0:
            return None
        return self.take(marker - 1).decode("utf-8", errors="replace")


def _encode_read_body(payload: Mapping[str, Any]) -> bytes:
    request = payload["request"]
    if not isinstance(request, Mapping):
        raise ValueError("read needs a request object")
    kind = _KINDS.get(request.get("kind"))
    if kind is None:
        raise ValueError("unknown request kind")
    tier = request.get("tier")
    deadline_ms = request.get("deadline_ms")
    parts = [
        _READ_FIXED.pack(
            int(payload.get("id", -1)),
            int(payload.get("stack", 0)),
            _INDEX_BY_KIND[kind],
            -1 if tier is None else int(tier),
            float(request.get("temp_c", 25.0)),
            _nan_if_none(request.get("vdd")),
            _nan_if_none(request.get("assume_vdd")),
            _nan_if_none(deadline_ms),
        )
    ]
    tiers = request.get("tiers")
    if tiers is None:
        parts.append(_U16.pack(_ABSENT_U16))
    else:
        parts.append(_U16.pack(len(tiers)))
        for t in tiers:
            parts.append(_U16.pack(int(t)))
    temps_c = request.get("temps_c")
    if temps_c is None:
        parts.append(_U16.pack(_ABSENT_U16))
    else:
        parts.append(_U16.pack(len(temps_c)))
        for t, c in temps_c.items():
            parts.append(_TEMP_ENTRY.pack(int(t), float(c)))
    return b"".join(parts)


def _nan_if_none(value: Optional[float]) -> float:
    return float("nan") if value is None else float(value)


def _none_if_nan(value: float) -> Optional[float]:
    return None if math.isnan(value) else value


def _decode_read_body(body: bytes) -> Dict[str, Any]:
    reader = _BodyReader(body, "read")
    (rid, stack, kind_index, tier, temp_c, vdd, assume_vdd, deadline_ms) = (
        reader.unpack(_READ_FIXED)
    )
    if kind_index >= len(_KIND_BY_INDEX):
        raise EdgeError(INVALID, f"unknown request kind index {kind_index}")
    request: Dict[str, Any] = {
        "kind": _KIND_BY_INDEX[kind_index].value,
        "temp_c": temp_c,
    }
    if tier >= 0:
        request["tier"] = tier
    if (vdd := _none_if_nan(vdd)) is not None:
        request["vdd"] = vdd
    if (assume_vdd := _none_if_nan(assume_vdd)) is not None:
        request["assume_vdd"] = assume_vdd
    if (deadline_ms := _none_if_nan(deadline_ms)) is not None:
        request["deadline_ms"] = deadline_ms
    (n_tiers,) = reader.unpack(_U16)
    if n_tiers != _ABSENT_U16:
        request["tiers"] = [reader.unpack(_U16)[0] for _ in range(n_tiers)]
    (n_temps,) = reader.unpack(_U16)
    if n_temps != _ABSENT_U16:
        temps: Dict[str, float] = {}
        for _ in range(n_temps):
            t, c = reader.unpack(_TEMP_ENTRY)
            temps[str(t)] = c
        request["temps_c"] = temps
    return {
        "v": PROTOCOL_VERSION,
        "id": None if rid < 0 else rid,
        "op": "read",
        "stack": stack,
        "request": request,
    }


def _encode_result_body(payload: Mapping[str, Any]) -> bytes:
    result = payload["result"]
    status = ResultStatus(result["status"])
    readings = result.get("readings", ())
    parts = [
        _RESULT_FIXED.pack(
            int(payload.get("id", -1)),
            int(payload.get("shard", -1)),
            _INDEX_BY_STATUS[status],
            int(result.get("batch_size", 0)),
            int(result.get("cache_hits", 0)),
            float(result.get("latency_ms", 0.0)),
        ),
        _pack_str(result.get("error")),
        _U16.pack(len(readings)),
    ]
    for r in readings:
        parts.append(
            _READING.pack(
                int(r["tier"]),
                float(r["temperature_c"]),
                float(r["dvtn"]),
                float(r["dvtp"]),
                float(r.get("conversion_time", 0.0)),
                float(r.get("energy_j", 0.0)),
                1 if r.get("converged", False) else 0,
                1 if r.get("cache_hit", False) else 0,
            )
        )
        parts.append(_pack_str(r.get("quality", "ok")))
    return b"".join(parts)


def _decode_result_body(body: bytes) -> Dict[str, Any]:
    reader = _BodyReader(body, "result")
    rid, shard, status_index, batch_size, cache_hits, latency_ms = reader.unpack(
        _RESULT_FIXED
    )
    if status_index >= len(_STATUS_BY_INDEX):
        raise EdgeError(MALFORMED, f"unknown result status index {status_index}")
    error = reader.unpack_str()
    (n_readings,) = reader.unpack(_U16)
    readings = []
    for _ in range(n_readings):
        (tier, temp, dvtn, dvtp, conv, energy, converged, cache_hit) = (
            reader.unpack(_READING)
        )
        quality = reader.unpack_str()
        readings.append(
            {
                "tier": tier,
                "temperature_c": temp,
                "dvtn": dvtn,
                "dvtp": dvtp,
                "converged": bool(converged),
                "quality": "ok" if quality is None else quality,
                "cache_hit": bool(cache_hit),
                "conversion_time": conv,
                "energy_j": energy,
            }
        )
    return {
        "id": None if rid < 0 else rid,
        "ok": True,
        "shard": shard,
        "result": {
            "status": _STATUS_BY_INDEX[status_index].value,
            "batch_size": batch_size,
            "cache_hits": cache_hits,
            "error": error,
            "latency_ms": latency_ms,
            "readings": readings,
        },
    }


def _encode_error_body(payload: Mapping[str, Any]) -> bytes:
    error = payload["error"]
    code = error.get("code", INTERNAL)
    rid = payload.get("id")
    shard = payload.get("shard")
    return (
        _ERROR_FIXED.pack(
            -1 if rid is None else int(rid),
            -1 if shard is None else int(shard),
            _INDEX_BY_CODE[code],
            1 if error.get("retryable", code in RETRYABLE_CODES) else 0,
        )
        + _pack_str(error.get("message", ""))
    )


def _decode_error_body(body: bytes) -> Dict[str, Any]:
    reader = _BodyReader(body, "error")
    rid, shard, code_index, retryable = reader.unpack(_ERROR_FIXED)
    code = (
        _CODE_BY_INDEX[code_index]
        if code_index < len(_CODE_BY_INDEX)
        else INTERNAL
    )
    message = reader.unpack_str() or ""
    payload: Dict[str, Any] = {
        "id": None if rid < 0 else rid,
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "retryable": bool(retryable),
        },
    }
    if shard >= 0:
        payload["shard"] = shard
    return payload


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """One binary frame: packed body when the payload fits, JSON body else.

    The packed forms require integer ids (the binary clients allocate
    numeric ids); anything that does not fit — string ids, out-of-range
    fields, control ops — rides a JSON body, so every payload of the
    NDJSON protocol is expressible on the binary wire.
    """
    rid = payload.get("id")
    packed_id = rid is None or isinstance(rid, int)
    try:
        if packed_id and payload.get("op") == "read":
            return _frame(FRAME_READ, _encode_read_body(payload))
        if packed_id and payload.get("ok") and "result" in payload:
            return _frame(FRAME_RESULT, _encode_result_body(payload))
        if (
            packed_id
            and payload.get("ok") is False
            and isinstance(payload.get("error"), Mapping)
        ):
            return _frame(FRAME_ERROR, _encode_error_body(payload))
    except (KeyError, TypeError, ValueError, OverflowError, struct.error):
        pass  # payload does not fit the fixed fields; JSON body below
    return _frame(FRAME_JSON, json.dumps(payload, separators=(",", ":")).encode("utf-8"))


def _frame(kind: int, body: bytes) -> bytes:
    return FRAME_HEADER.pack(BINARY_MAGIC, BINARY_VERSION, kind, len(body)) + body


def decode_frame_header(header: bytes) -> Tuple[int, int, int]:
    """Parse one frame header into ``(version, kind, body_length)``.

    Raises:
        EdgeError: ``malformed`` on a short header or wrong magic — the
            stream offers no resync point, so the connection must close;
            ``invalid`` on an unsupported version — the header layout
            (and so the ``length`` field) still holds, so the caller may
            skip the body and keep the connection.
    """
    if len(header) < FRAME_HEADER_SIZE:
        raise EdgeError(MALFORMED, "truncated frame header")
    magic, version, flags, length = FRAME_HEADER.unpack(header[:FRAME_HEADER_SIZE])
    if magic != BINARY_MAGIC:
        raise EdgeError(
            MALFORMED, f"bad frame magic 0x{magic:02x} (want 0x{BINARY_MAGIC:02x})"
        )
    if version != BINARY_VERSION:
        raise EdgeError(
            INVALID,
            f"unsupported frame version {version} (speaking {BINARY_VERSION})",
        )
    return version, flags & _FRAME_KIND_MASK, length


def decode_frame_body(kind: int, body: bytes) -> Dict[str, Any]:
    """Decode one frame body into the equivalent NDJSON payload.

    Raises:
        EdgeError: ``malformed`` on truncated bodies / non-object JSON,
            ``invalid`` on unknown frame kinds.
    """
    if kind == FRAME_JSON:
        return decode_line(body)
    if kind == FRAME_READ:
        return _decode_read_body(body)
    if kind == FRAME_RESULT:
        return _decode_result_body(body)
    if kind == FRAME_ERROR:
        return _decode_error_body(body)
    raise EdgeError(INVALID, f"unknown frame kind {kind}")


def wire_to_edge_result(
    payload: Mapping[str, Any], attempts: int = 1
) -> EdgeResult:
    """Decode one success answer into an :class:`EdgeResult`."""
    result = payload.get("result") or {}
    readings = tuple(
        TierReading(
            tier=int(r["tier"]),
            temperature_c=float(r["temperature_c"]),
            dvtn=float(r["dvtn"]),
            dvtp=float(r["dvtp"]),
            converged=bool(r["converged"]),
            quality=str(r.get("quality", "ok")),
            cache_hit=bool(r.get("cache_hit", False)),
            conversion_time=float(r.get("conversion_time", 0.0)),
            energy_j=float(r.get("energy_j", 0.0)),
        )
        for r in result.get("readings", ())
    )
    return EdgeResult(
        id=str(payload.get("id")),
        shard=int(payload.get("shard", -1)),
        status=ResultStatus(result.get("status", "error")),
        readings=readings,
        batch_size=int(result.get("batch_size", 0)),
        cache_hits=int(result.get("cache_hits", 0)),
        error=result.get("error"),
        latency_ms=float(result.get("latency_ms", 0.0)),
        attempts=attempts,
    )
