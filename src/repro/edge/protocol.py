"""The edge wire protocol: newline-delimited JSON, typed both ways.

One connection carries a stream of JSON objects, one per line (NDJSON).
Every client line is an *operation* (``op``) tagged with a caller-chosen
``id``; every server line is the answer to exactly one operation,
echoing that ``id`` — so clients may pipeline freely and match answers
out of order.

Operations::

    {"v": 1, "id": "r1", "op": "read", "stack": 7, "request": {...}}
    {"id": "p1", "op": "ping"}
    {"id": "s1", "id": "s1", "op": "stats"}

``read`` carries one :class:`~repro.serve.requests.ReadRequest` in wire
form (see :func:`request_to_wire`); ``stack`` is the client-visible
stack id the router hashes onto a shard.  Deadlines travel as *relative*
``deadline_ms`` and are re-anchored against the shard worker's clock at
decode time (the two processes share no clock).

Answers::

    {"id": "r1", "ok": true, "shard": 2, "result": {...}}
    {"id": "r1", "ok": false, "error":
        {"code": "backpressure", "message": "...", "retryable": true}}

Failures are *typed*: :data:`ERROR_CODES` is the closed vocabulary, and
``retryable`` tells a client whether backing off and resending is sound
(shard window full, shard being respawned) or pointless (malformed
request).  The same payloads ride the HTTP adapter with the status codes
in :data:`HTTP_STATUS`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serve.requests import (
    ReadRequest,
    ReadResult,
    RequestKind,
    ResultStatus,
    TierReading,
)

PROTOCOL_VERSION = 1

#: Hard bound on one NDJSON line (either direction).  A full-stack poll of
#: a tall stack is ~2 KiB; anything near this bound is abuse, not traffic.
MAX_LINE_BYTES = 256 * 1024

# ------------------------------------------------------------- error codes

MALFORMED = "malformed"  # line is not a JSON object
INVALID = "invalid"  # JSON is fine, the request inside is not
UNKNOWN_OP = "unknown_op"  # op outside the protocol vocabulary
OVERSIZED = "oversized"  # line exceeded MAX_LINE_BYTES
BACKPRESSURE = "backpressure"  # shard window / queue full — back off, retry
SHARD_DOWN = "shard_down"  # owning shard died mid-flight or is quarantined
CLOSED = "closed"  # server is draining; no new work
INTERNAL = "internal"  # engine exception; the request itself may be fine

ERROR_CODES = frozenset(
    {
        MALFORMED,
        INVALID,
        UNKNOWN_OP,
        OVERSIZED,
        BACKPRESSURE,
        SHARD_DOWN,
        CLOSED,
        INTERNAL,
    }
)

#: Codes a client may answer with backoff-and-resend.
RETRYABLE_CODES = frozenset({BACKPRESSURE, SHARD_DOWN})

#: HTTP status the adapter maps each code onto.
HTTP_STATUS: Dict[str, int] = {
    MALFORMED: 400,
    INVALID: 400,
    UNKNOWN_OP: 404,
    OVERSIZED: 413,
    BACKPRESSURE: 503,
    SHARD_DOWN: 503,
    CLOSED: 503,
    INTERNAL: 500,
}


class EdgeError(RuntimeError):
    """One typed edge failure, as an exception.

    Raised by :class:`repro.edge.client.EdgeClient` when the server
    answers with an error payload (after retries, for retryable codes)
    and used server-side to funnel routing/window failures into wire
    errors.
    """

    def __init__(self, code: str, message: str, retryable: Optional[bool] = None):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown edge error code {code!r}")
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retryable = code in RETRYABLE_CODES if retryable is None else retryable

    def to_wire(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "retryable": self.retryable,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "EdgeError":
        code = payload.get("code", INTERNAL)
        if code not in ERROR_CODES:
            code = INTERNAL
        return cls(
            code,
            str(payload.get("message", "")),
            retryable=bool(payload.get("retryable", code in RETRYABLE_CODES)),
        )


# ----------------------------------------------------------------- framing


def encode(payload: Mapping[str, Any]) -> bytes:
    """One wire line: compact JSON plus the newline terminator."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a JSON object.

    Raises:
        EdgeError: ``malformed`` when the line is not a JSON object.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise EdgeError(MALFORMED, f"line is not JSON: {error}") from error
    if not isinstance(payload, dict):
        raise EdgeError(MALFORMED, "line is not a JSON object")
    return payload


def error_payload(
    request_id: Optional[str], error: EdgeError, shard: Optional[int] = None
) -> Dict[str, Any]:
    """The failure answer to one operation."""
    payload: Dict[str, Any] = {"id": request_id, "ok": False, "error": error.to_wire()}
    if shard is not None:
        payload["shard"] = shard
    return payload


def result_payload(
    request_id: Optional[str], result_wire: Mapping[str, Any], shard: int
) -> Dict[str, Any]:
    """The success answer to one ``read`` operation."""
    return {"id": request_id, "ok": True, "shard": shard, "result": dict(result_wire)}


# ------------------------------------------------------- request round-trip

_KINDS = {kind.value: kind for kind in RequestKind}


def request_to_wire(
    request: ReadRequest, deadline_ms: Optional[float] = None
) -> Dict[str, Any]:
    """The wire form of one :class:`ReadRequest`.

    ``request.deadline_s`` is service-clock-relative and meaningless to a
    remote peer, so it never crosses the wire; pass a *relative*
    ``deadline_ms`` instead and the shard worker re-anchors it against
    its own clock on decode.
    """
    payload: Dict[str, Any] = {"kind": request.kind.value, "temp_c": request.temp_c}
    if request.tier is not None:
        payload["tier"] = request.tier
    if request.tiers is not None:
        payload["tiers"] = list(request.tiers)
    if request.temps_c is not None:
        payload["temps_c"] = {str(t): c for t, c in request.temps_c.items()}
    if request.vdd is not None:
        payload["vdd"] = request.vdd
    if request.assume_vdd is not None:
        payload["assume_vdd"] = request.assume_vdd
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


def wire_to_request(payload: Mapping[str, Any], now: float) -> ReadRequest:
    """Decode one wire request against the local clock ``now``.

    Raises:
        EdgeError: ``invalid`` on an unknown kind, missing or ill-typed
            fields — with a message naming the offence.
    """
    if not isinstance(payload, Mapping):
        raise EdgeError(INVALID, "request must be a JSON object")
    kind_name = payload.get("kind")
    kind = _KINDS.get(kind_name)
    if kind is None:
        raise EdgeError(
            INVALID,
            f"unknown request kind {kind_name!r}; known: {sorted(_KINDS)}",
        )
    deadline_ms = payload.get("deadline_ms")
    deadline_s = None
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or deadline_ms < 0:
            raise EdgeError(INVALID, "deadline_ms must be a non-negative number")
        deadline_s = now + float(deadline_ms) / 1e3
    temps_c = payload.get("temps_c")
    if temps_c is not None:
        if not isinstance(temps_c, Mapping):
            raise EdgeError(INVALID, "temps_c must map tier -> Celsius")
        try:
            temps_c = {int(t): float(c) for t, c in temps_c.items()}
        except (TypeError, ValueError) as error:
            raise EdgeError(INVALID, f"temps_c entries must be numeric: {error}")
    tiers = payload.get("tiers")
    if tiers is not None:
        if not isinstance(tiers, (list, tuple)):
            raise EdgeError(INVALID, "tiers must be a list of tier indices")
        try:
            tiers = tuple(int(t) for t in tiers)
        except (TypeError, ValueError) as error:
            raise EdgeError(INVALID, f"tiers entries must be integers: {error}")
    try:
        return ReadRequest(
            kind=kind,
            temp_c=float(payload.get("temp_c", 25.0)),
            tier=None if payload.get("tier") is None else int(payload["tier"]),
            tiers=tiers,
            temps_c=temps_c,
            vdd=None if payload.get("vdd") is None else float(payload["vdd"]),
            assume_vdd=(
                None
                if payload.get("assume_vdd") is None
                else float(payload["assume_vdd"])
            ),
            deadline_s=deadline_s,
        )
    except (TypeError, ValueError) as error:
        raise EdgeError(INVALID, str(error)) from error


# -------------------------------------------------------- result round-trip


def result_to_wire(result: ReadResult) -> Dict[str, Any]:
    """The wire form of one served :class:`ReadResult`."""
    return {
        "status": result.status.value,
        "batch_size": result.batch_size,
        "cache_hits": result.cache_hits,
        "error": result.error,
        "latency_ms": result.latency_s * 1e3,
        "readings": [
            {
                "tier": r.tier,
                "temperature_c": r.temperature_c,
                "dvtn": r.dvtn,
                "dvtp": r.dvtp,
                "converged": r.converged,
                "quality": r.quality,
                "cache_hit": r.cache_hit,
                "conversion_time": r.conversion_time,
                "energy_j": r.energy_j,
            }
            for r in result.readings
        ],
    }


@dataclass(frozen=True)
class EdgeResult:
    """A served answer, as the typed client returns it.

    Field-for-field the remote :class:`~repro.serve.requests.ReadResult`
    (readings are real :class:`TierReading` instances; JSON's
    shortest-round-trip floats make the values bit-identical to the
    shard's), plus the answering shard and the client-side attempt count.
    """

    id: str
    shard: int
    status: ResultStatus
    readings: Tuple[TierReading, ...]
    batch_size: int
    cache_hits: int
    error: Optional[str]
    latency_ms: float
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in (ResultStatus.OK, ResultStatus.DEGRADED)

    def reading_for(self, tier: int) -> TierReading:
        for reading in self.readings:
            if reading.tier == tier:
                return reading
        raise KeyError(f"no reading for tier {tier}")


def wire_to_edge_result(
    payload: Mapping[str, Any], attempts: int = 1
) -> EdgeResult:
    """Decode one success answer into an :class:`EdgeResult`."""
    result = payload.get("result") or {}
    readings = tuple(
        TierReading(
            tier=int(r["tier"]),
            temperature_c=float(r["temperature_c"]),
            dvtn=float(r["dvtn"]),
            dvtp=float(r["dvtp"]),
            converged=bool(r["converged"]),
            quality=str(r.get("quality", "ok")),
            cache_hit=bool(r.get("cache_hit", False)),
            conversion_time=float(r.get("conversion_time", 0.0)),
            energy_j=float(r.get("energy_j", 0.0)),
        )
        for r in result.get("readings", ())
    )
    return EdgeResult(
        id=str(payload.get("id")),
        shard=int(payload.get("shard", -1)),
        status=ResultStatus(result.get("status", "error")),
        readings=readings,
        batch_size=int(result.get("batch_size", 0)),
        cache_hits=int(result.get("cache_hits", 0)),
        error=result.get("error"),
        latency_ms=float(result.get("latency_ms", 0.0)),
        attempts=attempts,
    )
