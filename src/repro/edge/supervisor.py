"""The shard pool: spawn, route, window, health-check, respawn, reshard.

:class:`ShardPool` owns the backend worker processes.  It is plain
threads-and-pipes (no asyncio) so the same pool serves the asyncio
server, the sync CLI, and tests; the server bridges its
:class:`concurrent.futures.Future` results onto the event loop with
``asyncio.wrap_future``.

Responsibilities:

* **Routing** — stack id → shard through the consistent
  :class:`~repro.edge.sharding.HashRing`.  The ring is immutable; the
  pool *republishes* a fresh ring (generation + 1) whenever the
  topology changes, with one atomic reference swap — readers never see
  a half-built topology.
* **Windows** — at most ``window`` outstanding requests per shard; the
  excess is rejected *at the edge* with a typed, retryable
  ``backpressure`` error, propagating the embedded service's
  :class:`~repro.serve.admission.AdmissionController` discipline to
  remote clients instead of letting pipes buffer unboundedly.
* **Batch-coalesced IPC** — routed reads are not sent one pipe message
  each: up to ``ipc_batch`` of them are coalesced into a single framed
  ``read_batch`` message, flushed when the window fills or after a
  sub-millisecond ``ipc_linger_s``.  One pickle, one pipe write, one
  wakeup per *batch* instead of per request — and the shard's
  micro-batcher sees a real batch arrive at once instead of a trickle
  of singletons.  A failed item in a batch fails alone.
* **Supervision** — a health thread pings every shard; a dead or
  unresponsive shard is quarantined (its outstanding requests fail with
  retryable ``shard_down`` errors — never a hang), killed if needed, and
  respawned after a short backoff.  The respawn consults the **live**
  topology: a shard removed while quarantined never comes back, and a
  worker respawned mid-reshard re-mints its config from the deployment
  factory and rejoins the current ring generation.  Same seed, same
  stack: the replacement is bit-identical.  The vocabulary deliberately
  mirrors the quarantine/probation/revival state machine of
  :class:`repro.network.aggregator.StackMonitor`.
* **Elasticity** — :meth:`add_shard` / :meth:`remove_shard` /
  :meth:`scale_to` reshape the pool live.  A departing shard leaves the
  ring first (new work re-routes), then its in-flight reads drain
  per-shard before the worker is torn down — zero dropped
  non-retryable requests.  ``warm_spares`` keeps pre-seeded workers
  idling outside the ring so scale-up is a ring-join, not a cold
  spawn.  :meth:`rolling_restart` recycles one shard at a time through
  the same drain path.
* **Drain** — ``close(drain=True)`` stops new work, lets every shard
  finish its queue, and joins the processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import telemetry
from repro.edge.protocol import BACKPRESSURE, CLOSED, EdgeError, SHARD_DOWN
from repro.edge.sharding import REMAP_SAMPLE, HashRing
from repro.edge.worker import WorkerConfig, worker_main

_SHARD_DEATHS = telemetry.counter(
    "edge.shard_deaths", unit="shards", help="Shard worker deaths observed"
)
_SHARD_RESTARTS = telemetry.counter(
    "edge.shard_restarts", unit="shards", help="Shard workers respawned"
)
_WINDOW_REJECTED = telemetry.counter(
    "edge.rejected",
    unit="requests",
    help="Requests rejected at the edge (per-shard window full)",
)
_INFLIGHT = telemetry.gauge(
    "edge.inflight", unit="requests", help="Requests outstanding across all shards"
)
_IPC_MESSAGES = telemetry.counter(
    "edge.ipc_messages",
    unit="messages",
    help="Coalesced read_batch pipe messages sent to shard workers",
)
_IPC_BATCH = telemetry.histogram(
    "edge.ipc_batch",
    unit="requests",
    help="Routed reads coalesced per worker pipe message",
)
_SHARDS = telemetry.gauge(
    "edge.shards", unit="shards", help="Shards currently in the routing ring"
)
_RESHARD_EVENTS = telemetry.counter(
    "edge.reshard_events",
    unit="events",
    help="Ring republishes (scale up/down, rolling restarts)",
)
_DRAIN_MS = telemetry.histogram(
    "edge.drain_ms",
    unit="ms",
    help="Per-shard drain time before teardown (remove / restart)",
)
_REMAPPED_KEYS = telemetry.counter(
    "edge.remapped_keys",
    unit="keys",
    help="Probe stack ids whose owner moved at a ring republish "
    f"(out of {REMAP_SAMPLE} sampled per event)",
)


class ShardState(str, Enum):
    """Lifecycle of one backend worker, in supervision vocabulary.

    Elastic lifecycle: ``warm`` (spawned, probed, outside the ring) →
    ``starting`` → ``healthy`` (serving) → ``draining`` (leaving the
    ring or restarting; in-flight work completes, new work is refused
    with a retryable error) → ``stopped`` (gone).  ``quarantined`` is
    the crash detour: the supervisor respawns the worker into the
    *current* topology, unless the shard was removed meanwhile.
    """

    WARM = "warm"
    STARTING = "starting"
    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    DRAINING = "draining"
    STOPPED = "stopped"


# States whose worker process is expected to answer pipe messages.
_LIVE_STATES = (
    ShardState.WARM,
    ShardState.STARTING,
    ShardState.HEALTHY,
    ShardState.DRAINING,
)
# States a routed read may be admitted in.
_SERVING_STATES = (ShardState.STARTING, ShardState.HEALTHY)


class _Shard:
    """Parent-side bookkeeping of one worker process."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.state = ShardState.STOPPED
        self.restarts = 0
        self.generation = 0  # ring generation the worker last joined at
        self.retiring = False  # deliberate per-shard teardown in progress
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.outstanding: Dict[int, Future] = {}
        self.seq = itertools.count()
        # Coalescing state: reads wait here (briefly) to share one pipe
        # message.  ``flush_lock`` makes pop-and-send atomic so batches
        # can never be written to the pipe out of arrival order.
        self.batch: List[Dict[str, Any]] = []
        self.batch_cv = threading.Condition()
        self.flush_lock = threading.Lock()
        self.flusher: Optional[threading.Thread] = None
        self.gone = threading.Event()  # permanently retired (stops the flusher)

    @property
    def index(self) -> int:
        return self.config.shard_index


class ShardPool:
    """A supervised, elastic pool of sharded backend worker processes."""

    def __init__(
        self,
        workers: Sequence[WorkerConfig],
        window: int = 64,
        start_method: str = "spawn",
        health_interval_s: float = 1.0,
        health_timeout_s: float = 5.0,
        spawn_timeout_s: float = 30.0,
        respawn_backoff_s: float = 0.05,
        ring_replicas: int = 64,
        ipc_batch: int = 16,
        ipc_linger_s: float = 0.0005,
        config_factory: Optional[Callable[[int], WorkerConfig]] = None,
        warm_spares: int = 0,
    ) -> None:
        if not workers:
            raise ValueError("need at least one shard worker")
        if window < 1:
            raise ValueError("window must be >= 1")
        if ipc_batch < 1:
            raise ValueError("ipc_batch must be >= 1")
        if ipc_linger_s < 0.0:
            raise ValueError("ipc_linger_s must be non-negative")
        if warm_spares < 0:
            raise ValueError("warm_spares must be >= 0")
        if warm_spares > 0 and config_factory is None:
            raise ValueError("warm_spares needs a config_factory to mint configs")
        indices = [w.shard_index for w in workers]
        if len(set(indices)) != len(indices):
            raise ValueError("shard indices must be unique")
        self.window = window
        self.ipc_batch = ipc_batch
        self.ipc_linger_s = ipc_linger_s
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.spawn_timeout_s = spawn_timeout_s
        self.respawn_backoff_s = respawn_backoff_s
        self.ring_replicas = ring_replicas
        self.warm_spares = warm_spares
        self._config_factory = config_factory
        self._context = multiprocessing.get_context(start_method)
        self._shards: Dict[int, _Shard] = {
            w.shard_index: _Shard(w) for w in workers
        }
        self._spares: Dict[int, _Shard] = {}
        self.ring = HashRing(sorted(self._shards), replicas=ring_replicas)
        self._last_remap_fraction = 0.0
        # ``_topology_lock`` guards ring republishes and the shard/spare
        # dicts; ``_admin_lock`` serialises whole reshape operations
        # (scale / restart) so two admin calls cannot interleave drains.
        self._topology_lock = threading.RLock()
        self._admin_lock = threading.RLock()
        self._replenish_lock = threading.Lock()
        self._closing = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -------------------------------------------------------------- lifecycle

    def start(self, health_checks: bool = True) -> None:
        """Spawn every worker (and warm spares), probe, start supervision."""
        for shard in self._shards.values():
            self._spawn(shard)
        for shard in self._shards.values():
            self._probe(shard, timeout=self.spawn_timeout_s)
            self._start_flusher(shard)
        _SHARDS.set(len(self._shards))
        self._replenish_spares(wait=True)
        if health_checks:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="edge-health", daemon=True
            )
            self._health_thread.start()

    def _start_flusher(self, shard: _Shard) -> None:
        if self.ipc_batch > 1 and self.ipc_linger_s > 0.0 and shard.flusher is None:
            shard.flusher = threading.Thread(
                target=self._linger_loop,
                args=(shard,),
                name=f"edge-flush-{shard.index}",
                daemon=True,
            )
            shard.flusher.start()

    def _spawn(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(shard.config, child_conn),
            name=f"edge-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with shard.lock:
            shard.process = process
            shard.conn = parent_conn
            shard.state = ShardState.STARTING
            shard.generation = self.ring.generation
        shard.reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, parent_conn),
            name=f"edge-reader-{shard.index}",
            daemon=True,
        )
        shard.reader.start()

    def _probe(
        self,
        shard: _Shard,
        timeout: float,
        to_state: ShardState = ShardState.HEALTHY,
    ) -> bool:
        """Probation ping: promote on a pong, quarantine on a miss."""
        try:
            self._ping_shard(shard, timeout=timeout)
        except (EdgeError, TimeoutError, FutureTimeoutError):
            self._quarantine(shard, reason="probe failed")
            return False
        with shard.lock:
            if shard.state in (ShardState.STARTING, ShardState.WARM):
                shard.state = to_state
        return True

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool: drain (default) or abandon queued work, join all."""
        self._closing.set()
        with self._topology_lock:
            everyone = list(self._shards.values()) + list(self._spares.values())
        for shard in everyone:
            with shard.batch_cv:
                shard.batch_cv.notify_all()  # release the linger flushers
            self._flush_reads(shard)  # deliver coalesced stragglers pre-shutdown
        acks = []
        for shard in everyone:
            with shard.lock:
                conn_ok = shard.conn is not None and shard.state in _LIVE_STATES
            if conn_ok:
                try:
                    acks.append(
                        (shard, self._send(shard, {"op": "shutdown", "drain": drain}))
                    )
                except EdgeError:
                    pass
        for shard, future in acks:
            try:
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        for shard in everyone:
            process = shard.process
            if process is not None:
                process.join(timeout=timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            with shard.lock:
                shard.state = ShardState.STOPPED
                leftovers = list(shard.outstanding.values())
                shard.outstanding.clear()
            shard.gone.set()
            for future in leftovers:
                if not future.done():
                    future.set_exception(
                        EdgeError(CLOSED, "edge pool closed before serving")
                    )
        for shard in everyone:
            if shard.flusher is not None:
                shard.flusher.join(timeout=5.0)
                shard.flusher = None
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------- elasticity

    @property
    def generation(self) -> int:
        """Generation of the currently published ring."""
        return self.ring.generation

    @property
    def active_count(self) -> int:
        """Shards currently in the routing ring."""
        return len(self._shards)

    @property
    def spare_indices(self) -> List[int]:
        """Indices of warm spares standing by outside the ring."""
        with self._topology_lock:
            return sorted(self._spares)

    def _republish(self) -> None:
        """Swap in a new ring over the current shard set (atomic).

        Callers hold ``_topology_lock``.  Remap impact is measured over
        the :data:`~repro.edge.sharding.REMAP_SAMPLE` probe stack ids
        and exported as ``edge.remapped_keys``.
        """
        old = self.ring
        new = old.successor(sorted(self._shards), replicas=self.ring_replicas)
        moved = sum(
            1
            for stack_id in range(REMAP_SAMPLE)
            if old.route(stack_id) != new.route(stack_id)
        )
        self.ring = new  # one reference assignment: readers see old or new
        self._last_remap_fraction = moved / REMAP_SAMPLE
        _REMAPPED_KEYS.inc(moved)
        _RESHARD_EVENTS.inc()
        _SHARDS.set(len(self._shards))

    def _next_index(self) -> int:
        """Smallest shard index not active — removed gaps are refilled
        first (same index, same derived seed, bit-identical stack)."""
        with self._topology_lock:
            for index in sorted(self._spares):
                if index not in self._shards:
                    return index
            index = 0
            while index in self._shards:
                index += 1
            return index

    def add_shard(self, index: Optional[int] = None, timeout: Optional[float] = None) -> int:
        """Grow the pool by one shard; returns the joined index.

        Prefers promoting a warm spare (ring-join, no spawn on the
        critical path); otherwise cold-spawns from the config factory.
        The ring is republished only after the worker answers a probe,
        so a joining shard never receives routed work it cannot serve.
        """
        timeout = self.spawn_timeout_s if timeout is None else timeout
        with self._admin_lock:
            if self._closing.is_set():
                raise EdgeError(CLOSED, "edge pool is draining")
            if index is None:
                index = self._next_index()
            with self._topology_lock:
                if index in self._shards:
                    raise ValueError(f"shard {index} is already active")
                spare = self._spares.pop(index, None)
            shard: Optional[_Shard] = None
            if spare is not None and self._probe(spare, timeout=timeout):
                shard = spare
            if shard is None:
                if self._config_factory is None:
                    raise ValueError(
                        "cannot add shards without a config_factory "
                        "(construct the pool via EdgeDeployment)"
                    )
                shard = _Shard(self._config_factory(index))
                self._spawn(shard)
                self._start_flusher(shard)
                if not self._probe(shard, timeout=timeout):
                    raise EdgeError(
                        SHARD_DOWN, f"shard {index} failed its join probe"
                    )
                self._prewarm(shard, timeout=timeout)
            with self._topology_lock:
                self._shards[index] = shard
                with shard.lock:
                    shard.generation = self.ring.generation + 1
                self._republish()
            self._replenish_spares()
            return index

    def remove_shard(self, index: int, timeout: float = 30.0) -> None:
        """Shrink the pool by one shard, draining it before teardown.

        The shard leaves the ring *first* (new work re-routes to the
        survivors; the brief race window of already-routed submissions
        is answered with a retryable ``shard_down``), then its in-flight
        reads drain, then the worker shuts down.  Nothing non-retryable
        is dropped.
        """
        with self._admin_lock:
            with self._topology_lock:
                if index not in self._shards:
                    raise ValueError(f"shard {index} is not active")
                if len(self._shards) <= 1:
                    raise ValueError("cannot remove the last shard")
                shard = self._shards.pop(index)
                with shard.lock:
                    was_live = shard.state in _SERVING_STATES
                    if was_live:
                        shard.state = ShardState.DRAINING
                self._republish()
            if was_live:
                self._drain_shard(shard, timeout=timeout)
            self._teardown_worker(shard, timeout=timeout)
            shard.gone.set()

    def scale_to(self, shards: int, timeout: Optional[float] = None) -> List[int]:
        """Reshape to ``shards`` active shards; returns the final indices.

        Grows and shrinks one shard at a time so every intermediate
        topology is a valid, fully-drained deployment.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        with self._admin_lock:
            while len(self._shards) < shards:
                self.add_shard(timeout=timeout)
            while len(self._shards) > shards:
                # Retire the highest index: the next grow refills it
                # with the identical derived seed.
                self.remove_shard(max(self._shards))
            return self.shard_indices

    def restart_shard(self, index: int, timeout: float = 30.0) -> None:
        """Recycle one shard through the drain path, keeping its ring slot.

        The shard stays *in* the ring (its keys do not remap — answers
        for them stay bit-identical), but stops admitting new work:
        submissions during the restart get a retryable ``shard_down``
        and land on the replacement worker on retry.
        """
        with self._admin_lock:
            with self._topology_lock:
                shard = self._shards.get(index)
                if shard is None:
                    raise ValueError(f"shard {index} is not active")
            with shard.lock:
                if shard.state not in _SERVING_STATES:
                    raise EdgeError(
                        SHARD_DOWN,
                        f"shard {index} is {shard.state.value}; "
                        "only serving shards restart",
                    )
                shard.state = ShardState.DRAINING
            self._drain_shard(shard, timeout=timeout)
            self._teardown_worker(shard, timeout=timeout, final=False)
            if self._config_factory is not None:
                shard.config = self._config_factory(index)
            self._spawn(shard)
            self._start_flusher(shard)
            self._prewarm(shard, timeout=self.spawn_timeout_s)
            shard.retiring = False
            with shard.lock:
                shard.restarts += 1
            _SHARD_RESTARTS.inc()
            _RESHARD_EVENTS.inc()
            self._probe(shard, timeout=self.spawn_timeout_s)

    def rolling_restart(self, timeout: float = 30.0) -> List[int]:
        """Recycle every active shard, one at a time; returns the order."""
        restarted = []
        with self._admin_lock:
            for index in self.shard_indices:
                if self._closing.is_set():
                    break
                self.restart_shard(index, timeout=timeout)
                restarted.append(index)
        return restarted

    def _drain_shard(self, shard: _Shard, timeout: float) -> bool:
        """Wait for a draining shard's in-flight reads to complete.

        Flushes the coalescing buffer first (accepted work must reach
        the worker), then polls the outstanding window down to zero.
        Returns ``False`` on timeout (leftovers are failed retryable by
        the subsequent teardown).
        """
        started = time.perf_counter()
        with shard.batch_cv:
            shard.batch_cv.notify_all()
        self._flush_reads(shard)
        deadline = started + timeout
        drained = True
        while True:
            with shard.lock:
                remaining = len(shard.outstanding)
            if remaining == 0:
                break
            if time.perf_counter() >= deadline:
                drained = False
                break
            time.sleep(0.002)
        _DRAIN_MS.observe((time.perf_counter() - started) * 1e3)
        return drained

    def _prewarm(self, shard: _Shard, timeout: float) -> None:
        """Run one all-tier conversion on a joining worker, best-effort.

        A freshly spawned worker's first routed read would otherwise pay
        the full self-calibration cost and spike the tail latency of the
        reshard window; one scan read warms every tier's calibration
        before the shard takes (or resumes) traffic.
        """
        from repro.edge.protocol import request_to_wire
        from repro.serve.requests import ReadRequest

        wire = request_to_wire(ReadRequest.scan(45.0))
        try:
            future = self._send(shard, {"op": "read", "request": wire})
            future.result(timeout=timeout)
        except Exception:  # noqa: BLE001 - the probe already proved liveness
            pass

    def _teardown_worker(
        self, shard: _Shard, timeout: float = 30.0, final: bool = True
    ) -> None:
        """Shut one worker process down (deliberately — no respawn)."""
        shard.retiring = True
        with shard.lock:
            conn_ok = shard.conn is not None and shard.state in _LIVE_STATES
        ack = None
        if conn_ok:
            try:
                ack = self._send(shard, {"op": "shutdown", "drain": True})
            except EdgeError:
                pass
        if ack is not None:
            try:
                ack.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        process = shard.process
        if process is not None:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        with shard.lock:
            shard.state = ShardState.STOPPED
            leftovers = list(shard.outstanding.values())
            shard.outstanding.clear()
        error = EdgeError(
            SHARD_DOWN, f"shard {shard.index} retired before serving; retry"
        )
        for future in leftovers:
            if not future.done():
                future.set_exception(error)
        if final:
            shard.retiring = False

    def _replenish_spares(self, wait: bool = False) -> None:
        """Keep ``warm_spares`` pre-seeded workers standing by.

        Spares spawn off the admin path (scale-up latency is a ring
        join, not a process spawn); ``wait=True`` spawns inline for
        deterministic startup.
        """
        if self.warm_spares <= 0 or self._closing.is_set():
            return
        if wait:
            self._spawn_spares()
            return
        threading.Thread(
            target=self._spawn_spares, name="edge-spares", daemon=True
        ).start()

    def _spawn_spares(self) -> None:
        with self._replenish_lock:
            while not self._closing.is_set():
                with self._topology_lock:
                    if len(self._spares) >= self.warm_spares:
                        return
                    index = 0
                    while index in self._shards or index in self._spares:
                        index += 1
                    # Reserve the slot before the (slow) spawn.
                    spare = _Shard(self._config_factory(index))
                    self._spares[index] = spare
                self._spawn(spare)
                self._start_flusher(spare)
                if self._probe(
                    spare, timeout=self.spawn_timeout_s, to_state=ShardState.WARM
                ):
                    self._prewarm(spare, timeout=self.spawn_timeout_s)
                    continue
                with self._topology_lock:
                    self._spares.pop(index, None)
                return  # a spare that cannot boot would just crash-loop here

    def status(self) -> Dict[str, Any]:
        """Topology + supervision state, as ``admin.status`` reports it."""
        with self._topology_lock:
            ring = self.ring
            active = sorted(self._shards)
            spares = sorted(self._spares)
        return {
            "generation": ring.generation,
            "shards": active,
            "spares": spares,
            "window": self.window,
            "last_remap_fraction": self._last_remap_fraction,
            "health": self.health(),
        }

    # ----------------------------------------------------------------- client

    def route(self, stack_id: int) -> int:
        """The shard index owning ``stack_id``."""
        return self.ring.route(stack_id)

    def submit_read(self, stack_id: int, wire_request: Dict[str, Any]) -> "Future":
        """Route one wire-form read to its shard; future of the raw reply.

        The read joins the shard's coalescing buffer rather than being
        written to the pipe immediately: it ships in the next
        ``read_batch`` message, at the latest ``ipc_linger_s`` from now.
        Window accounting happens here, at admission into the buffer, so
        backpressure semantics are identical to the uncoalesced wire.

        Raises:
            EdgeError: ``backpressure`` when the shard's outstanding
                window is full (retryable); ``shard_down`` when the shard
                is quarantined, draining or mid-respawn (retryable);
                ``closed`` when the pool is draining.
        """
        if self._closing.is_set():
            raise EdgeError(CLOSED, "edge pool is draining")
        shard = self._shards.get(self.route(stack_id))
        if shard is None:
            # The owner left between the ring read and the dict lookup;
            # the republished ring knows the new owner.
            shard = self._shards.get(self.route(stack_id))
            if shard is None:
                raise EdgeError(
                    SHARD_DOWN, "routing raced a reshard; retry shortly"
                )
        with shard.lock:
            if shard.state not in _SERVING_STATES:
                raise EdgeError(
                    SHARD_DOWN,
                    f"shard {shard.index} is {shard.state.value}; retry shortly",
                )
            if len(shard.outstanding) >= self.window:
                _WINDOW_REJECTED.inc()
                raise EdgeError(
                    BACKPRESSURE,
                    f"shard {shard.index} window full "
                    f"({len(shard.outstanding)}/{self.window}); back off and retry",
                )
            seq = next(shard.seq)
            future: Future = Future()
            shard.outstanding[seq] = future
        self._track_inflight(+1)
        future.add_done_callback(lambda _f: self._track_inflight(-1))
        with shard.batch_cv:
            shard.batch.append({"seq": seq, "request": wire_request})
            full = len(shard.batch) >= self.ipc_batch
            shard.batch_cv.notify_all()
        if full or self.ipc_linger_s <= 0.0 or shard.flusher is None:
            self._flush_reads(shard)
        return future

    def _ping_shard(self, shard: _Shard, timeout: float = 5.0) -> Dict[str, Any]:
        future = self._send(shard, {"op": "ping"})
        return future.result(timeout=timeout)

    def ping(self, shard_index: int, timeout: float = 5.0) -> Dict[str, Any]:
        """Round-trip one health probe through a shard worker."""
        return self._ping_shard(self._shards[shard_index], timeout=timeout)

    def shard_stats(self, timeout: float = 10.0) -> List[Dict[str, Any]]:
        """Service-level stats gathered from every live shard."""
        futures = []
        for shard in list(self._shards.values()):
            try:
                futures.append((shard, self._send(shard, {"op": "stats"})))
            except EdgeError as error:
                futures.append((shard, error))
        stats: List[Dict[str, Any]] = []
        for shard, outcome in futures:
            if isinstance(outcome, EdgeError):
                stats.append({"shard": shard.index, "error": outcome.to_wire()})
                continue
            try:
                stats.append(outcome.result(timeout=timeout)["stats"])
            except Exception as error:  # noqa: BLE001 - per-shard isolation
                stats.append(
                    {
                        "shard": shard.index,
                        "error": EdgeError(SHARD_DOWN, str(error)).to_wire(),
                    }
                )
        return stats

    def chaos(self, shard_index: int, op: str) -> None:
        """Send a chaos op (``exit`` / ``hang``) to one shard worker.

        Only honoured by workers configured with ``enable_chaos`` — the
        hook the resilience tests use to stage crashes.
        """
        if op not in ("exit", "hang"):
            raise ValueError("chaos op must be 'exit' or 'hang'")
        self._send(self._shards[shard_index], {"op": op})

    def health(self) -> List[Dict[str, Any]]:
        """Parent-side health of every shard (no worker round-trips)."""
        report = []
        with self._topology_lock:
            shards = {index: self._shards[index] for index in sorted(self._shards)}
        for index, shard in shards.items():
            with shard.lock:
                process = shard.process
                report.append(
                    {
                        "shard": index,
                        "state": shard.state.value,
                        "outstanding": len(shard.outstanding),
                        "window": self.window,
                        "restarts": shard.restarts,
                        "generation": shard.generation,
                        "pid": None if process is None else process.pid,
                        "alive": process is not None and process.is_alive(),
                    }
                )
        return report

    def healthy(self) -> bool:
        """Whether every shard is currently serving."""
        return all(entry["state"] == "healthy" for entry in self.health())

    @property
    def shard_indices(self) -> List[int]:
        return sorted(self._shards)

    @property
    def shard_configs(self) -> List[WorkerConfig]:
        with self._topology_lock:
            return [self._shards[i].config for i in sorted(self._shards)]

    # ------------------------------------------------------------- internals

    def _send(
        self, shard: _Shard, message: Dict[str, Any], windowed: bool = False
    ) -> "Future":
        if self._closing.is_set() and message.get("op") != "shutdown":
            raise EdgeError(CLOSED, "edge pool is draining")
        with shard.lock:
            if shard.state not in _LIVE_STATES:
                raise EdgeError(
                    SHARD_DOWN,
                    f"shard {shard.index} is {shard.state.value}; retry shortly",
                )
            if windowed and len(shard.outstanding) >= self.window:
                _WINDOW_REJECTED.inc()
                raise EdgeError(
                    BACKPRESSURE,
                    f"shard {shard.index} window full "
                    f"({len(shard.outstanding)}/{self.window}); back off and retry",
                )
            seq = next(shard.seq)
            future: Future = Future()
            shard.outstanding[seq] = future
            conn = shard.conn
        if windowed:
            self._track_inflight(+1)
            future.add_done_callback(lambda _f: self._track_inflight(-1))
        message = dict(message, seq=seq)
        try:
            with shard.send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            with shard.lock:
                shard.outstanding.pop(seq, None)
            self._on_shard_death(shard)
            raise EdgeError(SHARD_DOWN, f"shard {shard.index} pipe is broken")
        return future

    def _flush_reads(self, shard: _Shard) -> None:
        """Drain the shard's coalescing buffer to the pipe, in order.

        Pop-and-send is atomic under ``flush_lock``: an inline flush (a
        submitter filling the window) and the linger flusher can never
        interleave their pipe writes, so batches always hit the pipe in
        buffer order.  A dead shard fails the drained reads with a
        retryable ``shard_down`` instead of hanging them.  A *draining*
        shard still flushes: admitted work completes even while new
        work is refused.
        """
        while True:
            with shard.flush_lock:
                with shard.batch_cv:
                    if not shard.batch:
                        return
                    items = shard.batch[: self.ipc_batch]
                    del shard.batch[: self.ipc_batch]
                with shard.lock:
                    alive = shard.state in _LIVE_STATES
                    conn = shard.conn
                    # A shard death between reservation and flush already
                    # failed (and dropped) these futures; don't resend
                    # their seqs to the replacement worker.
                    items = [i for i in items if i["seq"] in shard.outstanding]
                if not items:
                    continue
                if not alive or conn is None:
                    error = EdgeError(
                        SHARD_DOWN,
                        f"shard {shard.index} is down; retry shortly",
                    )
                    with shard.lock:
                        futures = [
                            shard.outstanding.pop(i["seq"], None) for i in items
                        ]
                    for future in futures:
                        if future is not None and not future.done():
                            future.set_exception(error)
                    continue
                try:
                    with shard.send_lock:
                        conn.send({"op": "read_batch", "items": items})
                except (BrokenPipeError, OSError):
                    self._on_shard_death(shard)
                    continue
                _IPC_MESSAGES.inc()
                _IPC_BATCH.observe(float(len(items)))

    def _linger_loop(self, shard: _Shard) -> None:
        """Per-shard flusher: give a part-filled batch ``ipc_linger_s``
        to fill, then flush whatever accumulated."""
        while not self._closing.is_set() and not shard.gone.is_set():
            with shard.batch_cv:
                while (
                    not shard.batch
                    and not self._closing.is_set()
                    and not shard.gone.is_set()
                ):
                    shard.batch_cv.wait(timeout=0.2)
                if self._closing.is_set() or shard.gone.is_set():
                    break
                deadline = time.monotonic() + self.ipc_linger_s
                while (
                    shard.batch
                    and len(shard.batch) < self.ipc_batch
                    and not self._closing.is_set()
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    shard.batch_cv.wait(timeout=remaining)
            self._flush_reads(shard)
        self._flush_reads(shard)  # stragglers between close() and our exit

    def _track_inflight(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta
            _INFLIGHT.set(self._inflight)

    def _reader_loop(self, shard: _Shard, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._on_shard_death(shard, conn)
                return
            future = None
            with shard.lock:
                future = shard.outstanding.pop(message.get("seq"), None)
            if future is not None and not future.done():
                future.set_result(message)

    def _on_shard_death(self, shard: _Shard, conn=None) -> None:
        """Quarantine a dead shard, fail its in-flight work, respawn."""
        with shard.lock:
            if conn is not None and shard.conn is not conn:
                return  # a stale reader observed its own replaced pipe
            if shard.state in (ShardState.QUARANTINED, ShardState.STOPPED):
                return
            deliberate = self._closing.is_set() or shard.retiring
            shard.state = (
                ShardState.STOPPED if deliberate else ShardState.QUARANTINED
            )
            failed = list(shard.outstanding.values())
            shard.outstanding.clear()
        _SHARD_DEATHS.inc()
        error = EdgeError(
            SHARD_DOWN,
            f"shard {shard.index} died with the request in flight; "
            "it is being respawned — retry",
        )
        for future in failed:
            if not future.done():
                future.set_exception(error)
        if not deliberate:
            threading.Thread(
                target=self._respawn, args=(shard,), name=f"edge-respawn-{shard.index}",
                daemon=True,
            ).start()

    def _quarantine(self, shard: _Shard, reason: str) -> None:
        """Force a live-but-unresponsive shard through the death path."""
        with shard.lock:
            process = shard.process
            if shard.state not in _LIVE_STATES:
                return
        if process is not None and process.is_alive():
            process.terminate()  # the reader thread sees EOF and fans out
        else:
            self._on_shard_death(shard)

    def _respawn(self, shard: _Shard) -> None:
        if self._closing.is_set():
            return
        # Exponential backoff against crash loops: a worker dying at
        # startup (bad plan, broken import) respawns ever more slowly
        # instead of burning a process per respawn_backoff_s.
        backoff = self.respawn_backoff_s * (2 ** min(shard.restarts, 8))
        self._closing.wait(backoff)
        if self._closing.is_set():
            return
        # Respawn against the *live* topology, not the topology the
        # worker died under: a shard removed while quarantined stays
        # gone, and a respawn racing a reshard re-mints its config from
        # the deployment factory and stamps the current ring generation
        # (the old bug respawned from a config snapshot frozen at boot).
        with self._topology_lock:
            if self._shards.get(shard.index) is not shard:
                with shard.lock:
                    shard.state = ShardState.STOPPED
                shard.gone.set()
                return
            if self._config_factory is not None:
                shard.config = self._config_factory(shard.index)
        old = shard.process
        if old is not None:
            old.join(timeout=5.0)
        self._spawn(shard)
        shard.restarts += 1
        _SHARD_RESTARTS.inc()
        self._probe(shard, timeout=self.spawn_timeout_s)

    def _health_loop(self) -> None:
        while not self._closing.wait(self.health_interval_s):
            for shard in list(self._shards.values()):
                if self._closing.is_set():
                    return
                with shard.lock:
                    state = shard.state
                if state is not ShardState.HEALTHY:
                    continue
                try:
                    self._ping_shard(shard, timeout=self.health_timeout_s)
                except (EdgeError, TimeoutError, FutureTimeoutError):
                    self._quarantine(shard, reason="health ping missed")
