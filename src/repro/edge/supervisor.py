"""The shard pool: spawn, route, window, health-check, respawn, drain.

:class:`ShardPool` owns the backend worker processes.  It is plain
threads-and-pipes (no asyncio) so the same pool serves the asyncio
server, the sync CLI, and tests; the server bridges its
:class:`concurrent.futures.Future` results onto the event loop with
``asyncio.wrap_future``.

Responsibilities:

* **Routing** — stack id → shard through the consistent
  :class:`~repro.edge.sharding.HashRing`.
* **Windows** — at most ``window`` outstanding requests per shard; the
  excess is rejected *at the edge* with a typed, retryable
  ``backpressure`` error, propagating the embedded service's
  :class:`~repro.serve.admission.AdmissionController` discipline to
  remote clients instead of letting pipes buffer unboundedly.
* **Batch-coalesced IPC** — routed reads are not sent one pipe message
  each: up to ``ipc_batch`` of them are coalesced into a single framed
  ``read_batch`` message, flushed when the window fills or after a
  sub-millisecond ``ipc_linger_s``.  One pickle, one pipe write, one
  wakeup per *batch* instead of per request — and the shard's
  micro-batcher sees a real batch arrive at once instead of a trickle
  of singletons.  A failed item in a batch fails alone.
* **Supervision** — a health thread pings every shard; a dead or
  unresponsive shard is quarantined (its outstanding requests fail with
  retryable ``shard_down`` errors — never a hang), killed if needed, and
  respawned from its original :class:`~repro.edge.worker.WorkerConfig`
  after a short backoff.  Same config, same seed, same stack: the
  replacement is bit-identical.  The vocabulary deliberately mirrors the
  quarantine/probation/revival state machine of
  :class:`repro.network.aggregator.StackMonitor`.
* **Drain** — ``close(drain=True)`` stops new work, lets every shard
  finish its queue, and joins the processes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence

from repro import telemetry
from repro.edge.protocol import BACKPRESSURE, CLOSED, EdgeError, SHARD_DOWN
from repro.edge.sharding import HashRing
from repro.edge.worker import WorkerConfig, worker_main

_SHARD_DEATHS = telemetry.counter(
    "edge.shard_deaths", unit="shards", help="Shard worker deaths observed"
)
_SHARD_RESTARTS = telemetry.counter(
    "edge.shard_restarts", unit="shards", help="Shard workers respawned"
)
_WINDOW_REJECTED = telemetry.counter(
    "edge.rejected",
    unit="requests",
    help="Requests rejected at the edge (per-shard window full)",
)
_INFLIGHT = telemetry.gauge(
    "edge.inflight", unit="requests", help="Requests outstanding across all shards"
)
_IPC_MESSAGES = telemetry.counter(
    "edge.ipc_messages",
    unit="messages",
    help="Coalesced read_batch pipe messages sent to shard workers",
)
_IPC_BATCH = telemetry.histogram(
    "edge.ipc_batch",
    unit="requests",
    help="Routed reads coalesced per worker pipe message",
)


class ShardState(str, Enum):
    """Lifecycle of one backend worker, in supervision vocabulary."""

    STARTING = "starting"
    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    STOPPED = "stopped"


class _Shard:
    """Parent-side bookkeeping of one worker process."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.process = None
        self.conn = None
        self.reader: Optional[threading.Thread] = None
        self.state = ShardState.STOPPED
        self.restarts = 0
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.outstanding: Dict[int, Future] = {}
        self.seq = itertools.count()
        # Coalescing state: reads wait here (briefly) to share one pipe
        # message.  ``flush_lock`` makes pop-and-send atomic so batches
        # can never be written to the pipe out of arrival order.
        self.batch: List[Dict[str, Any]] = []
        self.batch_cv = threading.Condition()
        self.flush_lock = threading.Lock()
        self.flusher: Optional[threading.Thread] = None

    @property
    def index(self) -> int:
        return self.config.shard_index


class ShardPool:
    """A supervised pool of sharded backend worker processes."""

    def __init__(
        self,
        workers: Sequence[WorkerConfig],
        window: int = 64,
        start_method: str = "spawn",
        health_interval_s: float = 1.0,
        health_timeout_s: float = 5.0,
        spawn_timeout_s: float = 30.0,
        respawn_backoff_s: float = 0.05,
        ring_replicas: int = 64,
        ipc_batch: int = 16,
        ipc_linger_s: float = 0.0005,
    ) -> None:
        if not workers:
            raise ValueError("need at least one shard worker")
        if window < 1:
            raise ValueError("window must be >= 1")
        if ipc_batch < 1:
            raise ValueError("ipc_batch must be >= 1")
        if ipc_linger_s < 0.0:
            raise ValueError("ipc_linger_s must be non-negative")
        indices = [w.shard_index for w in workers]
        if len(set(indices)) != len(indices):
            raise ValueError("shard indices must be unique")
        self.window = window
        self.ipc_batch = ipc_batch
        self.ipc_linger_s = ipc_linger_s
        self.health_interval_s = health_interval_s
        self.health_timeout_s = health_timeout_s
        self.spawn_timeout_s = spawn_timeout_s
        self.respawn_backoff_s = respawn_backoff_s
        self._context = multiprocessing.get_context(start_method)
        self._shards: Dict[int, _Shard] = {
            w.shard_index: _Shard(w) for w in workers
        }
        self.ring = HashRing(sorted(self._shards), replicas=ring_replicas)
        self._closing = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # -------------------------------------------------------------- lifecycle

    def start(self, health_checks: bool = True) -> None:
        """Spawn every worker and (optionally) the supervision thread."""
        for shard in self._shards.values():
            self._spawn(shard)
        for shard in self._shards.values():
            self._probe(shard, timeout=self.spawn_timeout_s)
        if self.ipc_batch > 1 and self.ipc_linger_s > 0.0:
            for shard in self._shards.values():
                shard.flusher = threading.Thread(
                    target=self._linger_loop,
                    args=(shard,),
                    name=f"edge-flush-{shard.index}",
                    daemon=True,
                )
                shard.flusher.start()
        if health_checks:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="edge-health", daemon=True
            )
            self._health_thread.start()

    def _spawn(self, shard: _Shard) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(shard.config, child_conn),
            name=f"edge-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with shard.lock:
            shard.process = process
            shard.conn = parent_conn
            shard.state = ShardState.STARTING
        shard.reader = threading.Thread(
            target=self._reader_loop,
            args=(shard, parent_conn),
            name=f"edge-reader-{shard.index}",
            daemon=True,
        )
        shard.reader.start()

    def _probe(self, shard: _Shard, timeout: float) -> bool:
        """Probation ping: promote to HEALTHY on a pong, quarantine on miss."""
        try:
            self.ping(shard.index, timeout=timeout)
        except (EdgeError, TimeoutError, FutureTimeoutError):
            self._quarantine(shard, reason="probe failed")
            return False
        with shard.lock:
            if shard.state is ShardState.STARTING:
                shard.state = ShardState.HEALTHY
        return True

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool: drain (default) or abandon queued work, join all."""
        self._closing.set()
        for shard in self._shards.values():
            with shard.batch_cv:
                shard.batch_cv.notify_all()  # release the linger flushers
            self._flush_reads(shard)  # deliver coalesced stragglers pre-shutdown
        acks = []
        for shard in self._shards.values():
            with shard.lock:
                conn_ok = shard.conn is not None and shard.state in (
                    ShardState.STARTING,
                    ShardState.HEALTHY,
                )
            if conn_ok:
                try:
                    acks.append(
                        (shard, self._send(shard, {"op": "shutdown", "drain": drain}))
                    )
                except EdgeError:
                    pass
        for shard, future in acks:
            try:
                future.result(timeout=timeout)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        for shard in self._shards.values():
            process = shard.process
            if process is not None:
                process.join(timeout=timeout)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            with shard.lock:
                shard.state = ShardState.STOPPED
                leftovers = list(shard.outstanding.values())
                shard.outstanding.clear()
            for future in leftovers:
                if not future.done():
                    future.set_exception(
                        EdgeError(CLOSED, "edge pool closed before serving")
                    )
        for shard in self._shards.values():
            if shard.flusher is not None:
                shard.flusher.join(timeout=5.0)
                shard.flusher = None
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
            self._health_thread = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ----------------------------------------------------------------- client

    def route(self, stack_id: int) -> int:
        """The shard index owning ``stack_id``."""
        return self.ring.route(stack_id)

    def submit_read(self, stack_id: int, wire_request: Dict[str, Any]) -> "Future":
        """Route one wire-form read to its shard; future of the raw reply.

        The read joins the shard's coalescing buffer rather than being
        written to the pipe immediately: it ships in the next
        ``read_batch`` message, at the latest ``ipc_linger_s`` from now.
        Window accounting happens here, at admission into the buffer, so
        backpressure semantics are identical to the uncoalesced wire.

        Raises:
            EdgeError: ``backpressure`` when the shard's outstanding
                window is full (retryable); ``shard_down`` when the shard
                is quarantined or mid-respawn (retryable); ``closed``
                when the pool is draining.
        """
        shard = self._shards[self.route(stack_id)]
        if self._closing.is_set():
            raise EdgeError(CLOSED, "edge pool is draining")
        with shard.lock:
            if shard.state not in (ShardState.STARTING, ShardState.HEALTHY):
                raise EdgeError(
                    SHARD_DOWN,
                    f"shard {shard.index} is {shard.state.value}; retry shortly",
                )
            if len(shard.outstanding) >= self.window:
                _WINDOW_REJECTED.inc()
                raise EdgeError(
                    BACKPRESSURE,
                    f"shard {shard.index} window full "
                    f"({len(shard.outstanding)}/{self.window}); back off and retry",
                )
            seq = next(shard.seq)
            future: Future = Future()
            shard.outstanding[seq] = future
        self._track_inflight(+1)
        future.add_done_callback(lambda _f: self._track_inflight(-1))
        with shard.batch_cv:
            shard.batch.append({"seq": seq, "request": wire_request})
            full = len(shard.batch) >= self.ipc_batch
            shard.batch_cv.notify_all()
        if full or self.ipc_linger_s <= 0.0 or shard.flusher is None:
            self._flush_reads(shard)
        return future

    def ping(self, shard_index: int, timeout: float = 5.0) -> Dict[str, Any]:
        """Round-trip one health probe through a shard worker."""
        future = self._send(self._shards[shard_index], {"op": "ping"})
        return future.result(timeout=timeout)

    def shard_stats(self, timeout: float = 10.0) -> List[Dict[str, Any]]:
        """Service-level stats gathered from every live shard."""
        futures = []
        for shard in self._shards.values():
            try:
                futures.append((shard, self._send(shard, {"op": "stats"})))
            except EdgeError as error:
                futures.append((shard, error))
        stats: List[Dict[str, Any]] = []
        for shard, outcome in futures:
            if isinstance(outcome, EdgeError):
                stats.append({"shard": shard.index, "error": outcome.to_wire()})
                continue
            try:
                stats.append(outcome.result(timeout=timeout)["stats"])
            except Exception as error:  # noqa: BLE001 - per-shard isolation
                stats.append(
                    {
                        "shard": shard.index,
                        "error": EdgeError(SHARD_DOWN, str(error)).to_wire(),
                    }
                )
        return stats

    def chaos(self, shard_index: int, op: str) -> None:
        """Send a chaos op (``exit`` / ``hang``) to one shard worker.

        Only honoured by workers configured with ``enable_chaos`` — the
        hook the resilience tests use to stage crashes.
        """
        if op not in ("exit", "hang"):
            raise ValueError("chaos op must be 'exit' or 'hang'")
        self._send(self._shards[shard_index], {"op": op})

    def health(self) -> List[Dict[str, Any]]:
        """Parent-side health of every shard (no worker round-trips)."""
        report = []
        for index in sorted(self._shards):
            shard = self._shards[index]
            with shard.lock:
                process = shard.process
                report.append(
                    {
                        "shard": index,
                        "state": shard.state.value,
                        "outstanding": len(shard.outstanding),
                        "window": self.window,
                        "restarts": shard.restarts,
                        "pid": None if process is None else process.pid,
                        "alive": process is not None and process.is_alive(),
                    }
                )
        return report

    def healthy(self) -> bool:
        """Whether every shard is currently serving."""
        return all(entry["state"] == "healthy" for entry in self.health())

    @property
    def shard_indices(self) -> List[int]:
        return sorted(self._shards)

    @property
    def shard_configs(self) -> List[WorkerConfig]:
        return [self._shards[i].config for i in sorted(self._shards)]

    # ------------------------------------------------------------- internals

    def _send(
        self, shard: _Shard, message: Dict[str, Any], windowed: bool = False
    ) -> "Future":
        if self._closing.is_set() and message.get("op") != "shutdown":
            raise EdgeError(CLOSED, "edge pool is draining")
        with shard.lock:
            if shard.state not in (ShardState.STARTING, ShardState.HEALTHY):
                raise EdgeError(
                    SHARD_DOWN,
                    f"shard {shard.index} is {shard.state.value}; retry shortly",
                )
            if windowed and len(shard.outstanding) >= self.window:
                _WINDOW_REJECTED.inc()
                raise EdgeError(
                    BACKPRESSURE,
                    f"shard {shard.index} window full "
                    f"({len(shard.outstanding)}/{self.window}); back off and retry",
                )
            seq = next(shard.seq)
            future: Future = Future()
            shard.outstanding[seq] = future
            conn = shard.conn
        if windowed:
            self._track_inflight(+1)
            future.add_done_callback(lambda _f: self._track_inflight(-1))
        message = dict(message, seq=seq)
        try:
            with shard.send_lock:
                conn.send(message)
        except (BrokenPipeError, OSError):
            with shard.lock:
                shard.outstanding.pop(seq, None)
            self._on_shard_death(shard)
            raise EdgeError(SHARD_DOWN, f"shard {shard.index} pipe is broken")
        return future

    def _flush_reads(self, shard: _Shard) -> None:
        """Drain the shard's coalescing buffer to the pipe, in order.

        Pop-and-send is atomic under ``flush_lock``: an inline flush (a
        submitter filling the window) and the linger flusher can never
        interleave their pipe writes, so batches always hit the pipe in
        buffer order.  A dead shard fails the drained reads with a
        retryable ``shard_down`` instead of hanging them.
        """
        while True:
            with shard.flush_lock:
                with shard.batch_cv:
                    if not shard.batch:
                        return
                    items = shard.batch[: self.ipc_batch]
                    del shard.batch[: self.ipc_batch]
                with shard.lock:
                    alive = shard.state in (ShardState.STARTING, ShardState.HEALTHY)
                    conn = shard.conn
                    # A shard death between reservation and flush already
                    # failed (and dropped) these futures; don't resend
                    # their seqs to the replacement worker.
                    items = [i for i in items if i["seq"] in shard.outstanding]
                if not items:
                    continue
                if not alive or conn is None:
                    error = EdgeError(
                        SHARD_DOWN,
                        f"shard {shard.index} is down; retry shortly",
                    )
                    with shard.lock:
                        futures = [
                            shard.outstanding.pop(i["seq"], None) for i in items
                        ]
                    for future in futures:
                        if future is not None and not future.done():
                            future.set_exception(error)
                    continue
                try:
                    with shard.send_lock:
                        conn.send({"op": "read_batch", "items": items})
                except (BrokenPipeError, OSError):
                    self._on_shard_death(shard)
                    continue
                _IPC_MESSAGES.inc()
                _IPC_BATCH.observe(float(len(items)))

    def _linger_loop(self, shard: _Shard) -> None:
        """Per-shard flusher: give a part-filled batch ``ipc_linger_s``
        to fill, then flush whatever accumulated."""
        while not self._closing.is_set():
            with shard.batch_cv:
                while not shard.batch and not self._closing.is_set():
                    shard.batch_cv.wait(timeout=0.2)
                if self._closing.is_set():
                    break
                deadline = time.monotonic() + self.ipc_linger_s
                while (
                    shard.batch
                    and len(shard.batch) < self.ipc_batch
                    and not self._closing.is_set()
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    shard.batch_cv.wait(timeout=remaining)
            self._flush_reads(shard)
        self._flush_reads(shard)  # stragglers between close() and our exit

    def _track_inflight(self, delta: int) -> None:
        with self._inflight_lock:
            self._inflight += delta
            _INFLIGHT.set(self._inflight)

    def _reader_loop(self, shard: _Shard, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._on_shard_death(shard, conn)
                return
            future = None
            with shard.lock:
                future = shard.outstanding.pop(message.get("seq"), None)
            if future is not None and not future.done():
                future.set_result(message)

    def _on_shard_death(self, shard: _Shard, conn=None) -> None:
        """Quarantine a dead shard, fail its in-flight work, respawn."""
        with shard.lock:
            if conn is not None and shard.conn is not conn:
                return  # a stale reader observed its own replaced pipe
            if shard.state in (ShardState.QUARANTINED, ShardState.STOPPED):
                return
            deliberate = self._closing.is_set()
            shard.state = (
                ShardState.STOPPED if deliberate else ShardState.QUARANTINED
            )
            failed = list(shard.outstanding.values())
            shard.outstanding.clear()
        _SHARD_DEATHS.inc()
        error = EdgeError(
            SHARD_DOWN,
            f"shard {shard.index} died with the request in flight; "
            "it is being respawned — retry",
        )
        for future in failed:
            if not future.done():
                future.set_exception(error)
        if not deliberate:
            threading.Thread(
                target=self._respawn, args=(shard,), name=f"edge-respawn-{shard.index}",
                daemon=True,
            ).start()

    def _quarantine(self, shard: _Shard, reason: str) -> None:
        """Force a live-but-unresponsive shard through the death path."""
        with shard.lock:
            process = shard.process
            if shard.state is not ShardState.HEALTHY and shard.state is not ShardState.STARTING:
                return
        if process is not None and process.is_alive():
            process.terminate()  # the reader thread sees EOF and fans out
        else:
            self._on_shard_death(shard)

    def _respawn(self, shard: _Shard) -> None:
        if self._closing.is_set():
            return
        # Exponential backoff against crash loops: a worker dying at
        # startup (bad plan, broken import) respawns ever more slowly
        # instead of burning a process per respawn_backoff_s.
        backoff = self.respawn_backoff_s * (2 ** min(shard.restarts, 8))
        self._closing.wait(backoff)
        if self._closing.is_set():
            return
        old = shard.process
        if old is not None:
            old.join(timeout=5.0)
        self._spawn(shard)
        shard.restarts += 1
        _SHARD_RESTARTS.inc()
        self._probe(shard, timeout=self.spawn_timeout_s)

    def _health_loop(self) -> None:
        while not self._closing.wait(self.health_interval_s):
            for shard in list(self._shards.values()):
                if self._closing.is_set():
                    return
                with shard.lock:
                    state = shard.state
                if state is not ShardState.HEALTHY:
                    continue
                try:
                    self.ping(shard.index, timeout=self.health_timeout_s)
                except (EdgeError, TimeoutError, FutureTimeoutError):
                    self._quarantine(shard, reason="health ping missed")
