"""repro: reproduction of "On-chip self-calibrated process-temperature
sensor for TSV 3D integration" (Chiang et al., IEEE SOCC 2012).

The package builds the paper's sensor and every substrate it stands on --
device physics, ring-oscillator circuits, process variation, a 3-D stack
thermal solver, TSV stress and read-out -- as documented in DESIGN.md.

Quickstart::

    from repro import PTSensor, nominal_65nm

    sensor = PTSensor(nominal_65nm())
    reading = sensor.read(temp_c=65.0)
    print(reading.temperature_c, reading.dvtn, reading.dvtp)
"""

from repro.config import SensorConfig
from repro.core import (
    CalibrationState,
    PTSensor,
    ProcessLut,
    SelfCalibrationEngine,
    SensingModel,
    SensorReading,
    estimate_temperature,
    extract_process,
)
from repro.device import Technology, nominal_65nm
from repro.variation import DieSample, sample_dies

__version__ = "1.0.0"

__all__ = [
    "CalibrationState",
    "DieSample",
    "PTSensor",
    "ProcessLut",
    "SelfCalibrationEngine",
    "SensingModel",
    "SensorConfig",
    "SensorReading",
    "Technology",
    "__version__",
    "estimate_temperature",
    "extract_process",
    "nominal_65nm",
    "sample_dies",
]
