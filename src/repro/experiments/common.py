"""Shared fixtures for the experiment suite.

Centralises the reference design, the shared Monte-Carlo die populations
and the paper's headline anchor numbers, so every experiment runs on
identical inputs and EXPERIMENTS.md rows stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.config import SensorConfig
from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor
from repro.device.technology import Technology, nominal_65nm
from repro.variation.montecarlo import DieSample, sample_dies

DEFAULT_SEED = 2012
"""Master seed of the reproduction (the paper's publication year)."""

PAPER_ANCHORS = {
    "energy_per_conversion_pj": 367.5,
    "vtn_band_mv": 1.6,
    "vtp_band_mv": 0.8,
    "temperature_band_c": 1.5,
    "technology": "TSMC 65 nm (paper) / generic-65nm-LP (reproduction)",
}
"""Headline numbers from the paper's abstract, used as acceptance anchors."""


@dataclass(frozen=True)
class ReferenceSetup:
    """The reference design shared by all experiments."""

    technology: Technology
    config: SensorConfig
    model: SensingModel
    lut: ProcessLut


@lru_cache(maxsize=1)
def reference_setup() -> ReferenceSetup:
    """Build (once) the reference technology, config, model and LUT."""
    technology = nominal_65nm()
    config = SensorConfig()
    model = SensingModel(technology, config)
    lut = ProcessLut.build(model)
    return ReferenceSetup(technology=technology, config=config, model=model, lut=lut)


@lru_cache(maxsize=8)
def die_population(count: int, seed: int = DEFAULT_SEED) -> Tuple[DieSample, ...]:
    """A cached, reproducible Monte-Carlo die population."""
    setup = reference_setup()
    return tuple(sample_dies(setup.technology, count, seed=seed))


def build_sensor(die: DieSample = None, die_id: int = 0) -> PTSensor:
    """A PT sensor of the reference design on a given die."""
    setup = reference_setup()
    return PTSensor(
        setup.technology,
        config=setup.config,
        die=die,
        die_id=die_id,
        sensing_model=setup.model,
        lut=setup.lut,
    )


def population_sensors(count: int, seed: int = DEFAULT_SEED) -> List[PTSensor]:
    """Sensors of the reference design across a die population."""
    return [
        build_sensor(die, die_id=index % 64)
        for index, die in enumerate(die_population(count, seed))
    ]


def population_truths(sensors: List[PTSensor]) -> np.ndarray:
    """Ground-truth systematic (dV_tn, dV_tp) per sensor, shape ``(n, 2)``.

    The reference the batch population experiments score extractions
    against; row ``i`` is ``sensors[i].true_process_shifts()``.
    """
    return np.array([sensor.true_process_shifts() for sensor in sensors])
