"""R-T1: the sensor summary table — headline numbers vs the paper.

The one-row-per-spec table every sensor paper ends with: technology,
supply, range, accuracy of each output, energy and rate.  Every measured
cell comes from the other experiments' machinery run at the reference
design point, so this table *is* the reproduction scorecard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import render_table
from repro.circuits.ring_oscillator import Environment
from repro.core.area import estimate_macro_area
from repro.experiments import exp_f3_vt_extraction, exp_f4_temperature_accuracy
from repro.experiments.common import PAPER_ANCHORS, reference_setup
from repro.readout.energy import conversion_energy
from repro.readout.sequencer import ConversionSequencer
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class T1Result:
    """Measured headline figures at the reference design point."""

    technology: str
    vdd: float
    temp_range_c: tuple
    vtn_band_mv: float
    vtp_band_mv: float
    temp_band_c: float
    energy_pj_27c: float
    conversion_rate_ks_27c: float
    area_mm2: float

    def render(self) -> str:
        anchors = PAPER_ANCHORS
        rows: List[List[str]] = [
            ["technology", self.technology, "TSMC 65 nm"],
            ["supply (V)", f"{self.vdd:.2f}", "1.2 (node nominal)"],
            (
                [
                    "temperature range (degC)",
                    f"{self.temp_range_c[0]:.0f} .. {self.temp_range_c[1]:.0f}",
                    "industrial-class range",
                ]
            ),
            [
                "V_tn read-out band (mV)",
                f"+/-{self.vtn_band_mv:.2f}",
                f"+/-{anchors['vtn_band_mv']}",
            ],
            [
                "V_tp read-out band (mV)",
                f"+/-{self.vtp_band_mv:.2f}",
                f"+/-{anchors['vtp_band_mv']}",
            ],
            [
                "temperature inaccuracy (degC)",
                f"+/-{self.temp_band_c:.2f}",
                f"+/-{anchors['temperature_band_c']}",
            ],
            [
                "energy per conversion (pJ)",
                f"{self.energy_pj_27c:.1f}",
                f"{anchors['energy_per_conversion_pj']}",
            ],
            [
                "conversion rate @27C (kS/s)",
                f"{self.conversion_rate_ks_27c:.1f}",
                "(not in abstract)",
            ],
            [
                "macro area (mm^2)",
                f"{self.area_mm2:.4f}",
                "(not in abstract; RO-sensor class)",
            ],
        ]
        return render_table(
            ["specification", "measured", "paper"],
            rows,
            title="R-T1 sensor summary (paper-style)",
        )


def run(fast: bool = False) -> T1Result:
    """Assemble the summary from the reference design and small MC runs."""
    setup = reference_setup()

    f3 = exp_f3_vt_extraction.run(fast=True)  # paper-style sample size
    f4 = exp_f4_temperature_accuracy.run(fast=fast)

    env_27 = Environment(temp_k=celsius_to_kelvin(27.0), vdd=setup.technology.vdd)
    energy = conversion_energy(setup.model.bank, env_27, setup.config)
    sequencer = ConversionSequencer(setup.config)
    f_t = setup.model.bank.tsro.frequency(env_27)

    small_n, small_p = f3.small_sample_band_mv()
    return T1Result(
        technology=setup.technology.name,
        vdd=setup.technology.vdd,
        temp_range_c=(setup.config.temp_min_c, setup.config.temp_max_c),
        vtn_band_mv=small_n,
        vtp_band_mv=small_p,
        temp_band_c=f4.small_sample_band_c(),
        energy_pj_27c=energy.total * 1e12,
        conversion_rate_ks_27c=sequencer.conversion_rate(f_t) / 1e3,
        area_mm2=estimate_macro_area(setup.technology, setup.config).total_mm2,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
