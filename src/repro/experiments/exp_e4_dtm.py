"""R-E4 (extension): sensor-driven dynamic thermal management.

Closes the loop the paper's introduction motivates: per-tier sensors feed a
throttling policy that must hold the stack under its thermal limit.  Run
twice on the same stack and workload:

* **open loop** — no throttling: shows the violation the workload causes;
* **closed loop** — the DTM policy acting on *sensor* readings.

The success criteria are systems-level: the closed loop caps the true peak
near the throttle threshold (sensor error becomes guard-band, not failure),
and it does so while keeping more power budget than a worst-case static
derating would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.tables import render_table
from repro.dtm.table import DtmTable
from repro.experiments.common import die_population, reference_setup
from repro.network.aggregator import StackMonitor
from repro.network.dtm import DtmPolicy, DtmTrace, run_closed_loop
from repro.core.sensor import PTSensor
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import transient
from repro.tsv.bus import TsvSensorBus
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array
from repro.units import kelvin_to_celsius

SENSOR_SITE = (2.0e-3, 2.0e-3)


@dataclass(frozen=True)
class E4Result:
    """Open- vs closed-loop outcome."""

    open_peak_c: float
    closed_trace: DtmTrace
    policy: DtmPolicy

    def closed_peak_c(self) -> float:
        return self.closed_trace.max_true_peak()

    def overshoot_c(self) -> float:
        """How far the closed loop's true peak exceeds the throttle set-point."""
        return self.closed_peak_c() - self.policy.throttle_c

    def render(self) -> str:
        final_scales = self.closed_trace.power_scales[-1]
        rows = [
            ["open loop (no DTM)", f"{self.open_peak_c:.1f}", "-"],
            [
                "closed loop (sensor DTM)",
                f"{self.closed_peak_c():.1f}",
                ", ".join(f"t{t}={s:.2f}" for t, s in sorted(final_scales.items())),
            ],
        ]
        table = render_table(
            ["configuration", "true peak (degC)", "final power scales"],
            rows,
            title=f"R-E4 DTM closed loop (throttle at {self.policy.throttle_c:.0f} degC)",
        )
        return (
            f"{table}\n"
            f"overshoot above set-point: {self.overshoot_c():+.1f} degC; "
            f"worst sensing gap along trajectory: "
            f"{self.closed_trace.worst_sensing_gap():.2f} degC; "
            f"throttled on {self.closed_trace.throttled_steps}/"
            f"{len(self.closed_trace.power_scales)} steps"
        )


def _assembly(nx: int, ny: int):
    tiers = [TierSpec(f"tier{i}") for i in range(4)]
    stack = StackDescriptor(
        tiers=tiers,
        tsv_sites=regular_tsv_array(8, 8, pitch=100e-6, origin=(2.1e-3, 2.1e-3)),
    )
    grid = build_stack_grid(
        stack.thermal_layers(nx, ny), stack.die_width, stack.die_height, nx=nx, ny=ny
    )
    return stack, grid


def _hot_workload(stack: StackDescriptor, nx: int, ny: int) -> Dict[str, np.ndarray]:
    """A workload that violates the limit without DTM."""
    maps = {}
    for i, tier in enumerate(stack.tiers):
        hotspots = (
            [(1.5e-3, 1.5e-3, 1.2e-3, 1.2e-3, 4.5)] if i == 0 else []
        )
        maps[stack.transistor_layer_name(tier)] = hotspot_power_map(
            nx, ny, stack.die_width, stack.die_height, hotspots, background_watts=0.8
        )
    return maps


def run(fast: bool = False) -> E4Result:
    """Execute the R-E4 open/closed-loop comparison."""
    setup = reference_setup()
    nx = ny = 10 if fast else 16
    steps = 12 if fast else 40
    dt = 0.02
    stack, grid = _assembly(nx, ny)
    workload = _hot_workload(stack, nx, ny)

    # Open loop: integrate to (near) steady state, record the violation.
    fields = transient(grid, lambda t: workload, dt=dt * 4, steps=steps)
    open_peak = max(
        kelvin_to_celsius(fields[-1].peak(stack.transistor_layer_name(t)))
        for t in stack.tiers
    )

    # Closed loop: sensors + aggregator + throttling policy.
    dies = die_population(len(stack.tiers))
    sensors = {
        tier_id: PTSensor(
            setup.technology,
            config=setup.config,
            die=die,
            location=SENSOR_SITE,
            die_id=tier_id,
            sensing_model=setup.model,
            lut=setup.lut,
        )
        for tier_id, die in enumerate(dies)
    }
    policy = DtmPolicy(throttle_c=85.0, release_c=78.0)
    monitor = StackMonitor(
        sensors,
        TsvSensorBus(tiers=len(stack.tiers)),
        warning_c=policy.release_c,
        emergency_c=policy.throttle_c + 15.0,
    )
    # The loop emits the live control plane's typed verbs; recording
    # them through a DtmTable (the same arithmetic the edge runs) must
    # land on exactly the trace's final scales — drift here would mean
    # the offline study and the deployed controller disagree.
    table = DtmTable(policy)
    trace = run_closed_loop(
        stack,
        grid,
        monitor,
        workload,
        policy,
        dt=dt,
        steps=steps * 4,
        sensor_sites={i: SENSOR_SITE for i in range(len(stack.tiers))},
        decision_sink=lambda tier, rnd, action: table.apply(0, tier, rnd, action),
    )
    final_scales = trace.power_scales[-1]
    mismatch = {
        tier: (table.scale(0, tier), scale)
        for tier, scale in final_scales.items()
        if table.scale(0, tier) != scale
    }
    if mismatch:
        raise AssertionError(
            f"decision replay diverged from the closed loop: {mismatch}"
        )
    return E4Result(open_peak_c=open_peak, closed_trace=trace, policy=policy)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
