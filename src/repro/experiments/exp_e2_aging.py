"""R-E2 (extension): aging — why calibration must be *self*-calibration.

BTI drift raises thresholds over the product's life.  A factory trim
captures the die at time zero and silently goes stale; the paper's sensor
re-extracts the process point at every power-on, so it tracks the drift —
and its V_t read-out *is* an in-field aging monitor.

The experiment ages a die population (1/3/10 years of stress), then reads
temperature with (a) the self-calibrated sensor re-extracting naively
against the manufacturing model, (b) the drift-anchored variant
(:mod:`repro.core.drift` — mobility frozen at the time-zero extraction),
and (c) a sensor two-point factory-trimmed **before** aging; it also checks
how well each V_t read-out recovers the injected drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.tables import render_table
from repro.baselines.two_point import TwoPointCalibratedSensor
from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.core.calibration import SelfCalibrationEngine
from repro.core.drift import DriftAnchoredModel
from repro.experiments.common import die_population, reference_setup
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.aging import BtiAgingModel
from repro.variation.montecarlo import DieSample

AGES_YEARS = (0.0, 1.0, 3.0, 10.0)
READ_TEMPS_C = (27.0, 85.0)


@dataclass(frozen=True)
class E2Row:
    """Accuracy after one aging step."""

    years: float
    injected_dvtp_drift_mv: float
    detected_dvtp_drift_mv: float
    anchored_dvtp_drift_mv: float
    selfcal_temp_band_c: float
    anchored_temp_band_c: float
    stale_trim_temp_band_c: float


@dataclass(frozen=True)
class E2Result:
    """The aging sweep."""

    rows: List[E2Row]

    def drift_tracking_error_mv(self) -> float:
        """Worst anchored-read-out gap vs the injected dV_tp drift."""
        return max(
            abs(r.anchored_dvtp_drift_mv - r.injected_dvtp_drift_mv)
            for r in self.rows
        )

    def render(self) -> str:
        rows = [
            [
                f"{r.years:g}",
                f"{r.injected_dvtp_drift_mv:+.2f}",
                f"{r.detected_dvtp_drift_mv:+.2f}",
                f"{r.anchored_dvtp_drift_mv:+.2f}",
                f"{r.selfcal_temp_band_c:.2f}",
                f"{r.anchored_temp_band_c:.2f}",
                f"{r.stale_trim_temp_band_c:.2f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            [
                "age (y)",
                "injected dVtp (mV)",
                "naive detect (mV)",
                "anchored detect (mV)",
                "naive T band (degC)",
                "anchored T band (degC)",
                "stale trim T band (degC)",
            ],
            rows,
            title="R-E2 aging: drift-anchored self-calibration vs naive vs stale factory trim",
        )
        return (
            f"{table}\n"
            f"worst drift-tracking error: {self.drift_tracking_error_mv():.2f} mV"
        )


class _FrozenTrimSensor(TwoPointCalibratedSensor):
    """A two-point sensor whose trim was taken on the *unaged* die.

    Mimics factory calibration: the trim coefficients are measured at time
    zero and stored in fuses; the die then ages underneath them.
    """

    def __init__(self, technology, config, fresh_die: DieSample):
        super().__init__(technology, config=config, die=fresh_die)

    def retarget(self, aged_die: DieSample) -> None:
        """Point the *hardware* at the aged die, keeping the stored trim."""
        self.die = aged_die
        self.bank = build_oscillator_bank(
            self.technology,
            die=aged_die,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
        )


def run(fast: bool = False) -> E2Result:
    """Execute the R-E2 aging sweep."""
    setup = reference_setup()
    die_count = 6 if fast else 30
    dies = die_population(die_count)
    aging = BtiAgingModel()
    engine = SelfCalibrationEngine(setup.model, lut=setup.lut)

    def bank_for(die):
        return build_oscillator_bank(
            setup.technology,
            die=die,
            psro_stages=setup.config.psro_stages,
            tsro_stages=setup.config.tsro_stages,
        )

    def frequencies_at(die, bank, temp_c):
        env = environment_for_die(
            die, (2.5e-3, 2.5e-3), celsius_to_kelvin(temp_c), setup.technology.vdd
        )
        return bank.frequencies(env)

    # Time zero: factory trim (frozen) and the self-calibration anchor.
    trim_sensors: Dict[int, _FrozenTrimSensor] = {}
    anchor_engines: Dict[int, SelfCalibrationEngine] = {}
    anchor_dvtp: Dict[int, float] = {}
    for die in dies:
        trim_sensors[die.index] = _FrozenTrimSensor(
            setup.technology, setup.config, die
        )
        fresh_freqs = frequencies_at(die, bank_for(die), READ_TEMPS_C[0])
        t0 = engine.run(fresh_freqs.psro_n, fresh_freqs.psro_p, fresh_freqs.tsro)
        anchored = DriftAnchoredModel.from_time_zero(setup.model, t0.dvtn, t0.dvtp)
        anchor_engines[die.index] = SelfCalibrationEngine(anchored, lut=None)
        anchor_dvtp[die.index] = t0.dvtp

    rows: List[E2Row] = []
    for years in AGES_YEARS if not fast else AGES_YEARS[:3]:
        naive_errors, anchored_errors, trim_errors = [], [], []
        naive_drifts, anchored_drifts = [], []
        _, injected_dvtp = aging.vt_drift(years)
        for die in dies:
            aged = aging.age_die(die, years)
            bank = bank_for(aged)
            trim = trim_sensors[die.index]
            trim.retarget(aged)
            anchored_engine = anchor_engines[die.index]
            for temp_c in READ_TEMPS_C:
                freqs = frequencies_at(aged, bank, temp_c)
                naive = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
                naive_errors.append(kelvin_to_celsius(naive.temp_k) - temp_c)
                anchored = anchored_engine.run(
                    freqs.psro_n, freqs.psro_p, freqs.tsro
                )
                anchored_errors.append(kelvin_to_celsius(anchored.temp_k) - temp_c)
                trim_errors.append(
                    trim.read_temperature(temp_c, deterministic=True) - temp_c
                )
                if temp_c == READ_TEMPS_C[0]:
                    naive_drifts.append(
                        (naive.dvtp - anchor_dvtp[die.index]) * 1e3
                    )
                    anchored_drifts.append(
                        (anchored.dvtp - anchor_dvtp[die.index]) * 1e3
                    )
        rows.append(
            E2Row(
                years=years,
                injected_dvtp_drift_mv=injected_dvtp * 1e3,
                detected_dvtp_drift_mv=float(np.mean(naive_drifts)),
                anchored_dvtp_drift_mv=float(np.mean(anchored_drifts)),
                selfcal_temp_band_c=float(np.max(np.abs(naive_errors))),
                anchored_temp_band_c=float(np.max(np.abs(anchored_errors))),
                stale_trim_temp_band_c=float(np.max(np.abs(trim_errors))),
            )
        )
    return E2Result(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
