"""Run-everything orchestration and report generation.

``run_all`` executes every registered experiment and collects renders,
runtimes and failures into a :class:`SuiteResult`; ``write_report`` turns
that into a single markdown document (the machine-generated companion to
the hand-written EXPERIMENTS.md).  The CLI exposes this as
``python -m repro report``.
"""

from __future__ import annotations

import json
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional

from repro import telemetry
from repro.experiments import ALL_EXPERIMENTS

_RUNS = telemetry.counter(
    "experiments.runs", unit="experiments", help="Experiment executions"
)
_FAILURES = telemetry.counter(
    "experiments.failures",
    unit="experiments",
    help="Experiment executions that raised",
)
_RUNTIME = telemetry.histogram(
    "experiments.runtime_s", unit="s", help="Wall-clock runtime per experiment"
)
_JOBS = telemetry.gauge(
    "experiments.jobs", unit="threads", help="Worker threads of the last run_all"
)


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's execution record.

    Attributes:
        key: Experiment id (R-F1 ...).
        ok: Whether ``run`` and ``render`` completed.
        runtime_s: Wall-clock runtime.
        rendered: The rendered table(s), or the traceback on failure.
    """

    key: str
    ok: bool
    runtime_s: float
    rendered: str


@dataclass(frozen=True)
class SuiteResult:
    """The whole suite's outcome."""

    outcomes: List[ExperimentOutcome]
    fast: bool

    @property
    def all_ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def failures(self) -> List[str]:
        return [outcome.key for outcome in self.outcomes if not outcome.ok]

    def to_json(self) -> str:
        """Serialise for archival next to the report."""
        payload = {
            "fast": self.fast,
            "outcomes": [
                {
                    "key": o.key,
                    "ok": o.ok,
                    "runtime_s": round(o.runtime_s, 3),
                    "rendered": o.rendered,
                }
                for o in self.outcomes
            ],
        }
        return json.dumps(payload, indent=2)


def run_experiment(key: str, fast: bool = False):
    """Run one registered experiment and return its result object.

    The stable single-experiment entry point of the facade
    (:mod:`repro.api`): ``run_experiment("R-F4").render()`` prints the
    same rows ``python -m repro run R-F4`` does.  Raises ``KeyError`` on
    an unknown experiment id.
    """
    if key not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {key!r}; known: {', '.join(ALL_EXPERIMENTS)}"
        )
    with telemetry.span("experiments.run", key=key, fast=fast):
        return ALL_EXPERIMENTS[key].run(fast=fast)


def _run_one(key: str, fast: bool) -> ExperimentOutcome:
    """Execute a single experiment, capturing failures into the outcome."""
    started = time.perf_counter()
    try:
        rendered = run_experiment(key, fast=fast).render()
        ok = True
    except Exception:
        rendered = traceback.format_exc()
        ok = False
    runtime_s = time.perf_counter() - started
    _RUNS.inc()
    _RUNTIME.observe(runtime_s)
    if not ok:
        _FAILURES.inc()
    return ExperimentOutcome(key=key, ok=ok, runtime_s=runtime_s, rendered=rendered)


def run_all(
    fast: bool = False, only: Optional[List[str]] = None, jobs: int = 1
) -> SuiteResult:
    """Execute every (or a subset of) registered experiment.

    Failures are captured, not raised: a report with one broken experiment
    is more useful than no report.

    Args:
        fast: Use the reduced smoke workloads.
        only: Restrict to a subset of experiment ids.
        jobs: Worker threads.  Experiments are independent (each builds its
            own sensors with private rng streams, and the shared fixtures
            are cached read-only), so ``jobs > 1`` overlaps their NumPy
            sections while keeping outcome order and renders identical to
            a serial run.
    """
    keys = list(ALL_EXPERIMENTS) if only is None else list(only)
    unknown = [key for key in keys if key not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    _JOBS.set(min(jobs, max(len(keys), 1)))
    with telemetry.span(
        "experiments.run_all", experiments=len(keys), jobs=jobs, fast=fast
    ) as trace:
        if jobs == 1 or len(keys) <= 1:
            outcomes = [_run_one(key, fast) for key in keys]
        else:
            with ThreadPoolExecutor(max_workers=min(jobs, len(keys))) as pool:
                # map() preserves submission order regardless of finish order.
                outcomes = list(pool.map(lambda key: _run_one(key, fast), keys))
        result = SuiteResult(outcomes=outcomes, fast=fast)
        trace.set(failures=len(result.failures()))
        return result


def write_report(result: SuiteResult, path: str) -> None:
    """Write the suite's markdown report to ``path``."""
    lines = [
        "# Generated experiment report",
        "",
        f"Workload: {'fast (smoke)' if result.fast else 'full'};"
        f" {len(result.outcomes)} experiments;"
        f" {'all passed' if result.all_ok else 'FAILURES: ' + ', '.join(result.failures())}.",
        "",
        "Regenerate with `python -m repro report"
        + (" --fast" if result.fast else "")
        + "`.",
        "",
    ]
    for outcome in result.outcomes:
        status = "ok" if outcome.ok else "FAILED"
        lines.append(f"## {outcome.key} ({status}, {outcome.runtime_s:.1f}s)")
        lines.append("")
        lines.append("```")
        lines.append(outcome.rendered.rstrip())
        lines.append("```")
        lines.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
