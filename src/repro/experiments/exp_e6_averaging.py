"""R-E6 (extension): oversampling — buying resolution with conversions.

A single conversion's temperature error has a random part (counter phase
quantisation + RO jitter) and a per-die systematic part (mismatch the
calibration cannot see).  Averaging N conversions shrinks the random part
by sqrt(N) until the systematic floor; this experiment measures that curve
and locates the floor, quantifying how far oversampling can stretch the
sensor before only a better *design* (larger devices) helps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.batch import read_population
from repro.experiments.common import build_sensor, die_population


@dataclass(frozen=True)
class E6Row:
    """Error statistics at one oversampling factor."""

    conversions: int
    random_sigma_c: float
    total_band_c: float
    energy_pj: float


@dataclass(frozen=True)
class E6Result:
    """The oversampling sweep."""

    rows: List[E6Row]
    systematic_floor_c: float

    def render(self) -> str:
        rows = [
            [
                str(r.conversions),
                f"{r.random_sigma_c:.3f}",
                f"{r.total_band_c:.2f}",
                f"{r.energy_pj:.0f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            [
                "conversions averaged",
                "random sigma (degC)",
                "total band (degC)",
                "energy (pJ)",
            ],
            rows,
            title="R-E6 oversampling: random error shrinks ~sqrt(N) to the mismatch floor",
        )
        return (
            f"{table}\n"
            f"per-die systematic floor (sigma across dies): "
            f"{self.systematic_floor_c:.3f} degC"
        )


def run(fast: bool = False, temp_c: float = 65.0) -> E6Result:
    """Execute the R-E6 oversampling sweep."""
    die_count = 8 if fast else 25
    repeats = 16 if fast else 64
    factors = (1, 4, 16) if fast else (1, 2, 4, 8, 16, 32)
    dies = die_population(die_count)
    sensors = [build_sensor(die) for die in dies]

    # Per-die mean over many single conversions isolates the systematic
    # part (what averaging can never remove).
    readings = read_population(sensors, [temp_c], repeats=repeats)
    per_die_errors = readings.temperature_c[:, 0, :] - temp_c
    single_energy = float(readings.energy.at((0, 0, 0)).total) * 1e12
    systematic = per_die_errors.mean(axis=1)
    random_part = per_die_errors - systematic[:, None]

    rows: List[E6Row] = []
    for n in factors:
        # Average blocks of n conversions along the repeat axis.
        usable = (repeats // n) * n
        if usable == 0:
            continue
        averaged = per_die_errors[:, :usable].reshape(die_count, -1, n).mean(axis=2)
        random_sigma = float(
            np.std(random_part[:, :usable].reshape(die_count, -1, n).mean(axis=2))
        )
        rows.append(
            E6Row(
                conversions=n,
                random_sigma_c=random_sigma,
                total_band_c=float(np.max(np.abs(averaged))),
                energy_pj=single_energy * n,
            )
        )
    return E6Result(rows=rows, systematic_floor_c=float(np.std(systematic)))


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
