"""R-A1: ablation of the self-calibration design choices.

Removes each ingredient of the scheme in turn and measures the temperature
band on the same die population:

* **full** — the shipped design;
* **no V_tp correction / no V_tn correction** — the temperature estimator
  sees only half the extracted process point (is the 2-D extraction really
  necessary?);
* **no correction** — equivalent to the uncalibrated baseline;
* **1 round** — a single process/temperature alternation (does the
  iteration matter?);
* **no LUT seed** — Newton starts from the typical point (is the LUT
  worth its storage?);
* **non-ZTC bias** — PSROs biased away from the zero-temperature-
  coefficient point (does the ZTC bias matter?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.metrics import ErrorStats, error_stats
from repro.analysis.tables import render_table
from repro.circuits.inverter import NmosSensingStage, PmosSensingStage
from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.core.calibration import SelfCalibrationEngine
from repro.core.decoupler import ProcessLut, extract_process
from repro.core.errors import SensorError
from repro.core.sensing_model import SensingModel
from repro.core.temperature import estimate_temperature_clamped
from repro.experiments.common import die_population, reference_setup
from repro.units import celsius_to_kelvin, kelvin_to_celsius

ABLATION_TEMPS_C = (-20.0, 27.0, 85.0)

# The non-ZTC ablation rebuilds the design with sensing biases well below
# the zero-temperature-coefficient points.
NONZTC_STAGE_N = NmosSensingStage(bias_ratio=0.585)
NONZTC_STAGE_P = PmosSensingStage(bias_ratio=0.62)


class _NonZtcSensingModel(SensingModel):
    """Sensing model whose typical bank uses the non-ZTC stage designs."""

    def __post_init__(self) -> None:
        bank = build_oscillator_bank(
            self.technology,
            die=None,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
            psro_n_stage=NONZTC_STAGE_N,
            psro_p_stage=NONZTC_STAGE_P,
        )
        object.__setattr__(self, "_bank", bank)


@dataclass(frozen=True)
class A1Result:
    """Temperature-error stats per ablation variant."""

    variants: Dict[str, ErrorStats]
    newton_iters_with_lut: int
    newton_iters_without_lut: int

    def render(self) -> str:
        rows = [
            [name, f"+/-{stats.band:.2f}", f"{stats.three_sigma:.2f}"]
            for name, stats in self.variants.items()
        ]
        table = render_table(
            ["variant", "T inaccuracy (degC)", "3sigma (degC)"],
            rows,
            title="R-A1 ablation of the self-calibration scheme",
        )
        return (
            f"{table}\n"
            f"Newton iterations to converge: {self.newton_iters_with_lut} with LUT seed, "
            f"{self.newton_iters_without_lut} from the typical point"
        )


def _newton_iterations(setup, with_lut: bool) -> int:
    """Iterations Newton needs on a hard (corner) die."""
    corner = setup.technology.corner("FS")
    temp_k = celsius_to_kelvin(25.0)
    f_n, f_p = setup.model.process_frequencies(corner.dvtn, corner.dvtp, temp_k)
    lut = setup.lut if with_lut else None
    for iters in range(1, 12):
        try:
            dvtn, dvtp = extract_process(
                setup.model, f_n, f_p, temp_k, lut=lut, iterations=iters
            )
        except SensorError:
            continue
        if abs(dvtn - corner.dvtn) < 1e-4 and abs(dvtp - corner.dvtp) < 1e-4:
            return iters
    raise AssertionError("Newton failed to converge within 12 iterations")


def run(fast: bool = False) -> A1Result:
    """Execute the R-A1 ablation."""
    setup = reference_setup()
    die_count = 15 if fast else 80
    dies = die_population(die_count)
    temps = ABLATION_TEMPS_C[:2] if fast else ABLATION_TEMPS_C

    errors: Dict[str, List[float]] = {
        "full self-calibration": [],
        "no V_tp correction": [],
        "no V_tn correction": [],
        "no correction (uncal)": [],
        "single round": [],
        "non-ZTC PSRO bias": [],
    }

    engine = SelfCalibrationEngine(setup.model, lut=setup.lut)

    for die in dies:
        bank = build_oscillator_bank(
            setup.technology,
            die=die,
            psro_stages=setup.config.psro_stages,
            tsro_stages=setup.config.tsro_stages,
        )
        for temp_c in temps:
            env = environment_for_die(
                die, (2.5e-3, 2.5e-3), celsius_to_kelvin(temp_c), setup.technology.vdd
            )
            freqs = bank.frequencies(env)

            state = engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
            errors["full self-calibration"].append(
                kelvin_to_celsius(state.temp_k) - temp_c
            )

            for variant, (dvtn, dvtp) in {
                "no V_tp correction": (state.dvtn, 0.0),
                "no V_tn correction": (0.0, state.dvtp),
                "no correction (uncal)": (0.0, 0.0),
            }.items():
                est_k = estimate_temperature_clamped(setup.model, freqs.tsro, dvtn, dvtp)
                errors[variant].append(kelvin_to_celsius(est_k) - temp_c)

            single = engine.run(
                freqs.psro_n, freqs.psro_p, freqs.tsro, rounds=1
            )
            errors["single round"].append(kelvin_to_celsius(single.temp_k) - temp_c)

    # Non-ZTC variant: rebuild the whole design (hardware *and* its
    # consistent sensing model) with low bias ratios, then run the full
    # scheme — isolating the ZTC design choice itself.
    nonztc_model = _NonZtcSensingModel(setup.technology, setup.config)
    nonztc_lut = ProcessLut.build(nonztc_model)
    nonztc_engine = SelfCalibrationEngine(nonztc_model, lut=nonztc_lut)
    for die in dies:
        bank = build_oscillator_bank(
            setup.technology,
            die=die,
            psro_stages=setup.config.psro_stages,
            tsro_stages=setup.config.tsro_stages,
            psro_n_stage=NONZTC_STAGE_N,
            psro_p_stage=NONZTC_STAGE_P,
        )
        for temp_c in temps:
            env = environment_for_die(
                die, (2.5e-3, 2.5e-3), celsius_to_kelvin(temp_c), setup.technology.vdd
            )
            freqs = bank.frequencies(env)
            try:
                state = nonztc_engine.run(
                    freqs.psro_n, freqs.psro_p, freqs.tsro, rounds=8
                )
                errors["non-ZTC PSRO bias"].append(
                    kelvin_to_celsius(state.temp_k) - temp_c
                )
            except SensorError:
                # Divergence under non-ZTC bias is itself the ablation's
                # finding; score it as a range-edge error.
                errors["non-ZTC PSRO bias"].append(10.0)

    variants = {name: error_stats(errs) for name, errs in errors.items()}
    return A1Result(
        variants=variants,
        newton_iters_with_lut=_newton_iterations(setup, with_lut=True),
        newton_iters_without_lut=_newton_iterations(setup, with_lut=False),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
