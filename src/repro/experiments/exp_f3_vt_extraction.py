"""R-F3: threshold-extraction accuracy over a Monte-Carlo die population.

Every die's sensor extracts (dV_tn, dV_tp); errors are measured against the
die's true systematic shift at the sensor site.  The paper's headline:
V_tn sensitivity +/-1.6 mV, V_tp sensitivity +/-0.8 mV.  We report both
the paper-style small-sample band (first 8 dies — a realistic fabricated
sample) and the honest large-population statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.bootstrap import band_interval
from repro.analysis.distribution import ascii_histogram
from repro.analysis.metrics import ErrorStats, error_stats
from repro.analysis.tables import render_table
from repro.batch import read_population
from repro.experiments.common import (
    PAPER_ANCHORS,
    population_sensors,
    population_truths,
)

PAPER_SAMPLE_DIES = 8


@dataclass(frozen=True)
class F3Result:
    """Extraction error populations (volts)."""

    vtn_errors: List[float]
    vtp_errors: List[float]
    read_temp_c: float

    @property
    def vtn_stats(self) -> ErrorStats:
        return error_stats(self.vtn_errors)

    @property
    def vtp_stats(self) -> ErrorStats:
        return error_stats(self.vtp_errors)

    def small_sample_band_mv(self) -> tuple:
        """Paper-style +/- band over the first PAPER_SAMPLE_DIES dies, mV."""
        n = min(PAPER_SAMPLE_DIES, len(self.vtn_errors))
        return (
            max(abs(e) for e in self.vtn_errors[:n]) * 1e3,
            max(abs(e) for e in self.vtp_errors[:n]) * 1e3,
        )

    def render(self) -> str:
        vtn, vtp = self.vtn_stats, self.vtp_stats
        small_n, small_p = self.small_sample_band_mv()
        rows = [
            [
                "dVtn",
                f"{vtn.sigma*1e3:.3f}",
                f"{vtn.three_sigma*1e3:.3f}",
                f"{vtn.band*1e3:.3f}",
                f"{small_n:.3f}",
                f"{PAPER_ANCHORS['vtn_band_mv']:.1f}",
            ],
            [
                "dVtp",
                f"{vtp.sigma*1e3:.3f}",
                f"{vtp.three_sigma*1e3:.3f}",
                f"{vtp.band*1e3:.3f}",
                f"{small_p:.3f}",
                f"{PAPER_ANCHORS['vtp_band_mv']:.1f}",
            ],
        ]
        table = render_table(
            [
                "quantity",
                "sigma (mV)",
                "3sigma (mV)",
                f"band n={vtn.count} (mV)",
                f"band n={min(PAPER_SAMPLE_DIES, vtn.count)} (mV)",
                "paper +/- (mV)",
            ],
            rows,
            title=f"R-F3 V_t extraction error at {self.read_temp_c:.0f} degC",
        )
        ci_n = band_interval(self.vtn_errors).describe(scale=1e3, unit="mV")
        ci_p = band_interval(self.vtp_errors).describe(scale=1e3, unit="mV")
        hist = ascii_histogram(
            self.vtn_errors,
            bins=11,
            title="dVtn error distribution (mV):",
            unit="mV",
            scale=1e3,
        )
        return (
            f"{table}\n"
            f"bootstrap 95% CI on the band: dVtn {ci_n}; dVtp {ci_p}\n"
            f"{hist}"
        )


def run(fast: bool = False, read_temp_c: float = 25.0) -> F3Result:
    """Execute the R-F3 Monte-Carlo extraction study."""
    sensors = population_sensors(60 if fast else 500)
    truths = population_truths(sensors)
    readings = read_population(sensors, [read_temp_c])
    vtn_errors: List[float] = list(readings.dvtn[:, 0, 0] - truths[:, 0])
    vtp_errors: List[float] = list(readings.dvtp[:, 0, 0] - truths[:, 1])
    return F3Result(
        vtn_errors=vtn_errors, vtp_errors=vtp_errors, read_temp_c=read_temp_c
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
