"""R-E7 (extension): closing the process loop with adaptive body bias.

The V_t read-out's classic actuator: each die measures its own process
point and programs its body-bias DACs to pull both thresholds back to
typical.  The figures of merit are population statistics before/after:

* threshold spread (should collapse to the DAC-quantisation floor),
* speed spread (a critical-path proxy ring's frequency spread), and
* leakage spread (the exponential victim of low-V_t dies).

Compensation quality is bounded by the *sensor's* extraction error — tying
the paper's ±1.6 mV/±0.8 mV claims directly to a yield metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.circuits.inverter import BalancedStage
from repro.circuits.ring_oscillator import Environment, RingOscillator
from repro.device.bodybias import BodyBiasGenerator, compensate_die
from repro.device.mosfet import drain_current
from repro.experiments.common import die_population, population_sensors, reference_setup
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class E7Result:
    """Population statistics before/after ABB compensation."""

    vtn_sigma_before_mv: float
    vtn_sigma_after_mv: float
    vtp_sigma_before_mv: float
    vtp_sigma_after_mv: float
    speed_spread_before: float
    speed_spread_after: float
    leakage_ratio_before: float
    leakage_ratio_after: float
    dac_lsb_mv: float

    def vtn_collapse_factor(self) -> float:
        return self.vtn_sigma_before_mv / self.vtn_sigma_after_mv

    def render(self) -> str:
        rows = [
            [
                "V_tn sigma (mV)",
                f"{self.vtn_sigma_before_mv:.2f}",
                f"{self.vtn_sigma_after_mv:.2f}",
            ],
            [
                "V_tp sigma (mV)",
                f"{self.vtp_sigma_before_mv:.2f}",
                f"{self.vtp_sigma_after_mv:.2f}",
            ],
            [
                "speed spread (max/min)",
                f"{self.speed_spread_before:.3f}",
                f"{self.speed_spread_after:.3f}",
            ],
            [
                "leakage spread (max/min)",
                f"{self.leakage_ratio_before:.1f}",
                f"{self.leakage_ratio_after:.1f}",
            ],
        ]
        table = render_table(
            ["population metric", "before ABB", "after ABB"],
            rows,
            title="R-E7 sensor-driven adaptive body bias across a die population",
        )
        return (
            f"{table}\n"
            f"threshold-shift DAC LSB: {self.dac_lsb_mv:.1f} mV of V_t "
            f"(bias LSB x k_body) — the compensation floor"
        )


def run(fast: bool = False, temp_c: float = 55.0) -> E7Result:
    """Execute the R-E7 compensation study."""
    setup = reference_setup()
    die_count = 20 if fast else 100
    dies = die_population(die_count)
    sensors = population_sensors(die_count)
    generator = BodyBiasGenerator()
    temp_k = celsius_to_kelvin(temp_c)

    # A critical-path proxy: a balanced ring built on each die's devices.
    proxy_stage = BalancedStage()

    before_n: List[float] = []
    before_p: List[float] = []
    after_n: List[float] = []
    after_p: List[float] = []
    speed_before: List[float] = []
    speed_after: List[float] = []
    leak_before: List[float] = []
    leak_after: List[float] = []

    for die, sensor in zip(dies, sensors):
        true_n, true_p = sensor.true_process_shifts()
        reading = sensor.read(temp_c)
        _, _, residual_n, residual_p = compensate_die(
            generator, reading.dvtn, reading.dvtp
        )
        # The actuator cancels what the sensor *measured*; the die keeps
        # the measurement error: residual truth = truth - measured + DAC q.
        actual_residual_n = true_n - reading.dvtn + residual_n
        actual_residual_p = true_p - reading.dvtp + residual_p
        before_n.append(true_n)
        before_p.append(true_p)
        after_n.append(actual_residual_n)
        after_p.append(actual_residual_p)

        def proxy_metrics(dvtn: float, dvtp: float):
            env = Environment(
                temp_k=temp_k,
                vdd=setup.technology.vdd,
                dvtn=dvtn,
                dvtp=dvtp,
                mun_scale=die.corner.mun_scale,
                mup_scale=die.corner.mup_scale,
            )
            ring = RingOscillator("proxy", proxy_stage, 13, setup.technology)
            frequency = ring.frequency(env)
            nmos = setup.technology.nmos.with_vt_shift(dvtn).with_mobility_scale(
                die.corner.mun_scale
            )
            leakage = drain_current(nmos, 0.0, setup.technology.vdd, temp_k)
            return frequency, leakage

        f_b, l_b = proxy_metrics(true_n, true_p)
        f_a, l_a = proxy_metrics(actual_residual_n, actual_residual_p)
        speed_before.append(f_b)
        speed_after.append(f_a)
        leak_before.append(l_b)
        leak_after.append(l_a)

    return E7Result(
        vtn_sigma_before_mv=float(np.std(before_n)) * 1e3,
        vtn_sigma_after_mv=float(np.std(after_n)) * 1e3,
        vtp_sigma_before_mv=float(np.std(before_p)) * 1e3,
        vtp_sigma_after_mv=float(np.std(after_p)) * 1e3,
        speed_spread_before=max(speed_before) / min(speed_before),
        speed_spread_after=max(speed_after) / min(speed_after),
        leakage_ratio_before=max(leak_before) / min(leak_before),
        leakage_ratio_after=max(leak_after) / min(leak_after),
        dac_lsb_mv=generator.dac_lsb * generator.k_body * 1e3,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
