"""R-F1: ring-oscillator frequency vs temperature across corners.

The characterisation figure every RO-sensor paper opens with: each
oscillator's frequency swept over -40..125 degC at the five process
corners.  The shapes to reproduce:

* the TSRO is strongly, monotonically temperature dependent (its whole job),
* the PSROs are first-order temperature-flat (ZTC bias) but separate
  cleanly by corner — PSRO-N tracks the first corner letter (NMOS),
  PSRO-P the second (PMOS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.sweeps import temperature_axis
from repro.analysis.tables import render_table
from repro.circuits.ring_oscillator import Environment
from repro.experiments.common import reference_setup
from repro.units import celsius_to_kelvin

CORNERS = ("TT", "FF", "SS", "FS", "SF")
OSCILLATORS = ("PSRO-N", "PSRO-P", "TSRO")


@dataclass(frozen=True)
class F1Result:
    """Frequency series per (oscillator, corner) over the sweep."""

    temps_c: np.ndarray
    series: Dict[Tuple[str, str], np.ndarray]

    def temperature_coefficient(self, oscillator: str, corner: str) -> float:
        """Mean fractional frequency slope in 1/K over the sweep."""
        freqs = self.series[(oscillator, corner)]
        span_k = (self.temps_c[-1] - self.temps_c[0])
        return float((freqs[-1] - freqs[0]) / freqs[len(freqs) // 2] / span_k)

    def corner_spread(self, oscillator: str, temp_index: int = 0) -> float:
        """Fractional corner-to-corner frequency spread at one temperature."""
        values = [self.series[(oscillator, c)][temp_index] for c in CORNERS]
        return float((max(values) - min(values)) / np.mean(values))

    def render(self) -> str:
        """Paper-style characterisation rows."""
        blocks: List[str] = []
        for osc in OSCILLATORS:
            rows = []
            for corner in CORNERS:
                freqs = self.series[(osc, corner)]
                rows.append(
                    [
                        corner,
                        f"{freqs[0]/1e6:.2f}",
                        f"{freqs[len(freqs)//2]/1e6:.2f}",
                        f"{freqs[-1]/1e6:.2f}",
                        f"{self.temperature_coefficient(osc, corner)*100:+.4f}",
                    ]
                )
            blocks.append(
                render_table(
                    ["corner", "f(-40C) MHz", "f(mid) MHz", "f(125C) MHz", "TC %/K"],
                    rows,
                    title=f"R-F1 {osc}: frequency vs temperature",
                )
            )
        return "\n\n".join(blocks)


def run(fast: bool = False) -> F1Result:
    """Execute the R-F1 characterisation sweep."""
    setup = reference_setup()
    temps_c = temperature_axis(
        setup.config.temp_min_c, setup.config.temp_max_c, points=5 if fast else 23
    )
    bank = setup.model.bank
    oscillators = {
        "PSRO-N": bank.psro_n,
        "PSRO-P": bank.psro_p,
        "TSRO": bank.tsro,
    }
    series: Dict[Tuple[str, str], np.ndarray] = {}
    for corner_name in CORNERS:
        corner = setup.technology.corner(corner_name)
        for osc_name, oscillator in oscillators.items():
            freqs = np.array(
                [
                    oscillator.frequency(
                        Environment.from_corner(
                            corner, celsius_to_kelvin(float(t)), setup.technology.vdd
                        )
                    )
                    for t in temps_c
                ]
            )
            series[(osc_name, corner_name)] = freqs
    return F1Result(temps_c=temps_c, series=series)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
