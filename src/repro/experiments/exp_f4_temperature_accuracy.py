"""R-F4: temperature inaccuracy before/after self-calibration.

The paper's money figure: temperature error across process, over the full
range.  "Before" is the identical hardware read through the typical TSRO
curve with no process correction (the uncalibrated baseline); "after" is
the full self-calibrated conversion.  The shape to reproduce: uncalibrated
error is dominated by the die's process point (several degC, different
sign per corner), self-calibrated error collapses to the +/-1.5 degC class
with no systematic corner dependence left.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.analysis.metrics import ErrorStats, error_stats
from repro.analysis.sweeps import population_temperature_sweep, temperature_axis
from repro.analysis.tables import render_table
from repro.baselines.uncalibrated import UncalibratedTsroSensor
from repro.batch import read_uncalibrated_population
from repro.experiments.common import (
    PAPER_ANCHORS,
    die_population,
    population_sensors,
    reference_setup,
)

PAPER_SAMPLE_DIES = 8


@dataclass(frozen=True)
class F4Result:
    """Error matrices of shape (dies, temps), degrees Celsius."""

    temps_c: np.ndarray
    calibrated_errors: np.ndarray
    uncalibrated_errors: np.ndarray

    @property
    def calibrated_stats(self) -> ErrorStats:
        return error_stats(self.calibrated_errors.ravel())

    @property
    def uncalibrated_stats(self) -> ErrorStats:
        return error_stats(self.uncalibrated_errors.ravel())

    def small_sample_band_c(self) -> float:
        """Paper-style +/- band over the first PAPER_SAMPLE_DIES dies."""
        n = min(PAPER_SAMPLE_DIES, self.calibrated_errors.shape[0])
        return float(np.max(np.abs(self.calibrated_errors[:n])))

    def improvement_factor(self) -> float:
        """Uncalibrated band / calibrated band."""
        return self.uncalibrated_stats.band / self.calibrated_stats.band

    def render(self) -> str:
        rows = []
        for j, temp in enumerate(self.temps_c):
            cal = self.calibrated_errors[:, j]
            unc = self.uncalibrated_errors[:, j]
            rows.append(
                [
                    f"{temp:+.0f}",
                    f"{np.max(np.abs(unc)):.2f}",
                    f"{np.std(unc):.2f}",
                    f"{np.max(np.abs(cal)):.2f}",
                    f"{np.std(cal):.2f}",
                ]
            )
        table = render_table(
            [
                "T (degC)",
                "uncal band (degC)",
                "uncal sigma",
                "self-cal band (degC)",
                "self-cal sigma",
            ],
            rows,
            title="R-F4 temperature error vs temperature (before/after self-calibration)",
        )
        cal, unc = self.calibrated_stats, self.uncalibrated_stats
        return (
            f"{table}\n"
            f"overall: uncalibrated {unc.describe(' degC')}\n"
            f"         self-calibrated {cal.describe(' degC')}\n"
            f"paper-style band (n={min(PAPER_SAMPLE_DIES, self.calibrated_errors.shape[0])} dies): "
            f"+/-{self.small_sample_band_c():.2f} degC "
            f"(paper: +/-{PAPER_ANCHORS['temperature_band_c']} degC)\n"
            f"improvement factor: {self.improvement_factor():.1f}x"
        )


def run(fast: bool = False) -> F4Result:
    """Execute the R-F4 before/after accuracy study."""
    setup = reference_setup()
    die_count = 25 if fast else 150
    temps_c = temperature_axis(
        setup.config.temp_min_c, setup.config.temp_max_c, points=5 if fast else 9
    )
    sensors = population_sensors(die_count)
    dies = die_population(die_count)

    baselines = [
        UncalibratedTsroSensor(
            setup.technology,
            config=setup.config,
            die=die,
            sensing_model=setup.model,
        )
        for die in dies
    ]
    _, calibrated = population_temperature_sweep(sensors, temps_c)
    uncalibrated = read_uncalibrated_population(baselines, temps_c) - temps_c.reshape(
        1, -1
    )

    return F4Result(
        temps_c=temps_c,
        calibrated_errors=calibrated,
        uncalibrated_errors=uncalibrated,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
