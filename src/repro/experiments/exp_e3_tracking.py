"""R-E3 (extension): tracking mode — energy of continuous monitoring.

The paper quotes energy *per conversion*; a monitoring network cares about
energy *per monitored second*.  Tracking mode (full conversion at power-on
and every N samples, TSRO-only fast reads in between) trades recalibration
staleness for energy.  This experiment sweeps N and reports the average
sample energy and the accuracy over a realistic temperature trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.core.tracking import TrackingPolicy, TrackingSensor
from repro.experiments.common import build_sensor, die_population


@dataclass(frozen=True)
class E3Row:
    """One recalibration-cadence operating point."""

    recal_interval: int
    mean_energy_pj: float
    fast_fraction: float
    temp_band_c: float


@dataclass(frozen=True)
class E3Result:
    """The cadence sweep."""

    rows: List[E3Row]
    samples: int

    def energy_saving_factor(self) -> float:
        """Always-full energy / best tracking energy."""
        always_full = next(r for r in self.rows if r.recal_interval == 1)
        best = min(r.mean_energy_pj for r in self.rows)
        return always_full.mean_energy_pj / best

    def render(self) -> str:
        rows = [
            [
                f"{r.recal_interval}",
                f"{r.mean_energy_pj:.1f}",
                f"{r.fast_fraction * 100:.0f}",
                f"{r.temp_band_c:.2f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            [
                "full conv every N",
                "mean energy/sample (pJ)",
                "fast reads (%)",
                "T band (degC)",
            ],
            rows,
            title=f"R-E3 tracking mode over a {self.samples}-sample trajectory",
        )
        return (
            f"{table}\n"
            f"energy saving vs always-full: {self.energy_saving_factor():.1f}x"
        )


def _temperature_trajectory(samples: int) -> np.ndarray:
    """A plausible workload trace: ramps, plateaus and a spike."""
    t = np.linspace(0.0, 1.0, samples)
    base = 55.0 + 20.0 * np.sin(2.0 * np.pi * t) + 10.0 * t
    spike = 18.0 * np.exp(-(((t - 0.7) / 0.05) ** 2))
    return base + spike


def run(fast: bool = False) -> E3Result:
    """Execute the R-E3 cadence sweep on a small die population."""
    samples = 60 if fast else 240
    intervals = (1, 8, 64) if fast else (1, 4, 16, 64, 256)
    dies = die_population(3 if fast else 8)
    trajectory = _temperature_trajectory(samples)

    rows: List[E3Row] = []
    for interval in intervals:
        energies, errors, fast_reads = [], [], 0
        total_reads = 0
        for die in dies:
            sensor = build_sensor(die)
            tracker = TrackingSensor(
                sensor, TrackingPolicy(recalibration_interval=interval)
            )
            for temp_c in trajectory:
                reading = tracker.read(float(temp_c))
                energies.append(reading.energy_j * 1e12)
                errors.append(reading.temperature_c - temp_c)
                total_reads += 1
                if reading.mode == "fast":
                    fast_reads += 1
        rows.append(
            E3Row(
                recal_interval=interval,
                mean_energy_pj=float(np.mean(energies)),
                fast_fraction=fast_reads / total_reads,
                temp_band_c=float(np.max(np.abs(errors))),
            )
        )
    return E3Result(rows=rows, samples=samples)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
