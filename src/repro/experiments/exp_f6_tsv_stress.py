"""R-F6: TSV stress-induced V_t scatter and what the sensor sees.

The abstract's motivation experiment.  A TSV array stresses the silicon
around it; transistors placed closer than the keep-out zone shift by
millivolts.  We (a) characterise the stress-to-shift profile vs distance,
(b) place sensor sites at several distances and show the *process read-out*
detects the stress-induced scatter, and (c) show the temperature reading
stays accurate because the self-calibration absorbs the local shift —
whereas the uncalibrated baseline converts every stress millivolt into
temperature error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.circuits.ring_oscillator import Environment
from repro.core.calibration import SelfCalibrationEngine
from repro.core.temperature import estimate_temperature_clamped
from repro.experiments.common import reference_setup
from repro.tsv.geometry import regular_tsv_array
from repro.tsv.keepout import keep_out_radius
from repro.tsv.stress import StressModel
from repro.units import celsius_to_kelvin, kelvin_to_celsius


@dataclass(frozen=True)
class StressSiteRow:
    """Sensor behaviour at one distance from the TSV array edge."""

    distance_um: float
    stress_dvtn_mv: float
    stress_dvtp_mv: float
    detected_dvtn_mv: float
    detected_dvtp_mv: float
    calibrated_temp_error_c: float
    uncalibrated_temp_error_c: float


@dataclass(frozen=True)
class F6Result:
    """Stress profile, KOZ radii, and per-site sensor behaviour."""

    profile_distance_um: np.ndarray
    profile_dvtn_mv: np.ndarray
    profile_dvtp_mv: np.ndarray
    koz_radii_um: dict
    site_rows: List[StressSiteRow]

    def detection_error_mv(self) -> float:
        """Worst gap between injected and detected stress shift."""
        worst = 0.0
        for row in self.site_rows:
            worst = max(
                worst,
                abs(row.detected_dvtn_mv - row.stress_dvtn_mv),
                abs(row.detected_dvtp_mv - row.stress_dvtp_mv),
            )
        return worst

    def render(self) -> str:
        koz = ", ".join(
            f"{int(tol*100)}%: {radius:.1f} um" for tol, radius in self.koz_radii_um.items()
        )
        rows = [
            [
                f"{r.distance_um:.0f}",
                f"{r.stress_dvtn_mv:+.2f}",
                f"{r.detected_dvtn_mv:+.2f}",
                f"{r.stress_dvtp_mv:+.2f}",
                f"{r.detected_dvtp_mv:+.2f}",
                f"{r.calibrated_temp_error_c:+.2f}",
                f"{r.uncalibrated_temp_error_c:+.2f}",
            ]
            for r in self.site_rows
        ]
        table = render_table(
            [
                "dist (um)",
                "stress dVtn (mV)",
                "detected",
                "stress dVtp (mV)",
                "detected",
                "self-cal T err (degC)",
                "uncal T err (degC)",
            ],
            rows,
            title="R-F6 sensor vs TSV stress (sites at increasing distance from a via)",
        )
        return (
            f"{table}\n"
            f"keep-out radii (mobility tolerance): {koz}\n"
            f"worst stress-detection gap: {self.detection_error_mv():.2f} mV"
        )


def run(fast: bool = False, true_temp_c: float = 65.0) -> F6Result:
    """Execute the R-F6 stress experiment on the typical die."""
    setup = reference_setup()
    stress = StressModel()
    array = regular_tsv_array(4, 4, pitch=40e-6, origin=(2.45e-3, 2.45e-3))
    reference_via = array[0]

    distances_um = np.array([8.0, 12.0, 20.0, 35.0, 60.0] if fast else
                            [6.0, 8.0, 10.0, 14.0, 20.0, 30.0, 45.0, 70.0, 100.0])
    profile_n, profile_p = [], []
    for d in distances_um:
        dvtn, dvtp = stress.effective_vt_shifts_at(
            reference_via.x - d * 1e-6, reference_via.y, [reference_via]
        )
        profile_n.append(dvtn * 1e3)
        profile_p.append(dvtp * 1e3)

    koz = {
        tol: keep_out_radius(stress, reference_via, tol) * 1e6
        for tol in (0.01, 0.02, 0.05, 0.10)
    }

    temp_k = celsius_to_kelvin(true_temp_c)
    site_rows: List[StressSiteRow] = []
    for d in distances_um:
        x = reference_via.x - d * 1e-6
        y = reference_via.y
        dvtn_s, dvtp_s = stress.effective_vt_shifts_at(x, y, array)
        env = Environment(
            temp_k=temp_k,
            vdd=setup.technology.vdd,
            dvtn=dvtn_s,
            dvtp=dvtp_s,
        )
        frequencies = setup.model.bank.frequencies(env)
        engine = SelfCalibrationEngine(setup.model, lut=setup.lut)
        state = engine.run(frequencies.psro_n, frequencies.psro_p, frequencies.tsro)
        uncal_k = estimate_temperature_clamped(setup.model, frequencies.tsro, 0.0, 0.0)

        site_rows.append(
            StressSiteRow(
                distance_um=float(d),
                stress_dvtn_mv=dvtn_s * 1e3,
                stress_dvtp_mv=dvtp_s * 1e3,
                detected_dvtn_mv=state.dvtn * 1e3,
                detected_dvtp_mv=state.dvtp * 1e3,
                calibrated_temp_error_c=kelvin_to_celsius(state.temp_k) - true_temp_c,
                uncalibrated_temp_error_c=kelvin_to_celsius(uncal_k) - true_temp_c,
            )
        )

    return F6Result(
        profile_distance_um=distances_um,
        profile_dvtn_mv=np.array(profile_n),
        profile_dvtp_mv=np.array(profile_p),
        koz_radii_um=koz,
        site_rows=site_rows,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
