"""R-E5 (extension): how many sensors per tier, where — and read how.

The paper puts PT sensors on every tier; the floorplanner must choose the
per-tier budget, the sites, and the reconstruction scheme that turns k
point readings into a die temperature map.  This experiment compares the
two reconstruction tiers on the same greedy-placed sensors:

* **nearest-sensor** — each location inherits its closest sensor's reading
  (zero model knowledge; what a bare monitor does);
* **model-based observer** — the live field is fitted as a combination of
  the design-time workload fields (thermal linearity), weights solved from
  the sensor readings.

Evaluation is held-out: a *mixture* workload inside the span of the
design-time set, and a *novel* workload (hotspot at a location the model
never saw).  The shapes to show: nearest-sensor leaves ~10 degC-class
spatial error with sharp hotspots regardless of budget; the observer
collapses in-span error to the sub-degree class once the budget reaches
the model order, and degrades gracefully (not catastrophically) on novel
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.tables import render_table
from repro.dtm.engine import PlacementEngine
from repro.network.placement import (
    candidate_grid,
    observer_error,
    reconstruction_error,
)
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import checkerboard_power_map, hotspot_power_map
from repro.thermal.solver import steady_state
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array

LAYER = "tier0.si"


@dataclass(frozen=True)
class E5Row:
    """Reconstruction errors at one sensor budget."""

    budget: int
    nearest_mix_c: float
    observer_mix_c: float
    nearest_novel_c: float
    observer_novel_c: float


@dataclass(frozen=True)
class E5Result:
    """Placement/reconstruction study results."""

    rows: List[E5Row]
    chosen_sites: List[tuple]

    def best_observer_mix(self) -> float:
        return min(row.observer_mix_c for row in self.rows)

    def render(self) -> str:
        rows = [
            [
                str(r.budget),
                f"{r.nearest_mix_c:.2f}",
                f"{r.observer_mix_c:.2f}",
                f"{r.nearest_novel_c:.2f}",
                f"{r.observer_novel_c:.2f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            [
                "sensors",
                "nearest, mixture (degC)",
                "observer, mixture (degC)",
                "nearest, novel (degC)",
                "observer, novel (degC)",
            ],
            rows,
            title="R-E5 sensor placement + reconstruction (held-out workloads)",
        )
        sites = ", ".join(
            f"({x * 1e3:.1f}, {y * 1e3:.1f})mm" for x, y in self.chosen_sites
        )
        return f"{table}\ngreedy sites (selection order): {sites}"


def _assembly(nx: int, ny: int):
    tiers = [TierSpec(f"tier{i}") for i in range(2)]
    stack = StackDescriptor(
        tiers=tiers,
        tsv_sites=regular_tsv_array(6, 6, pitch=120e-6, origin=(2.2e-3, 2.2e-3)),
    )
    grid = build_stack_grid(
        stack.thermal_layers(nx, ny), stack.die_width, stack.die_height, nx=nx, ny=ny
    )
    return stack, grid


def _training_workloads(stack, nx: int, ny: int) -> List[Dict[str, np.ndarray]]:
    w, h = stack.die_width, stack.die_height
    idle = hotspot_power_map(nx, ny, w, h, [], 0.3)
    return [
        {
            "tier0.si": hotspot_power_map(nx, ny, w, h, [(0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0)], 0.4),
            "tier1.si": idle,
        },
        {
            "tier0.si": hotspot_power_map(nx, ny, w, h, [(3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0)], 0.4),
            "tier1.si": idle,
        },
        {
            "tier0.si": checkerboard_power_map(nx, ny, 2.5, blocks=4),
            "tier1.si": idle,
        },
        {
            "tier0.si": hotspot_power_map(nx, ny, w, h, [(1.8e-3, 1.8e-3, 1.4e-3, 1.4e-3, 2.2)], 0.2),
            "tier1.si": idle,
        },
    ]


def run(fast: bool = False) -> E5Result:
    """Execute the R-E5 placement and reconstruction study."""
    nx = ny = 12 if fast else 18
    probe = 8 if fast else 12
    budgets = [2, 4, 6] if fast else [1, 2, 3, 4, 5, 6, 8]
    stack, grid = _assembly(nx, ny)
    w, h = stack.die_width, stack.die_height

    training = _training_workloads(stack, nx, ny)
    basis_fields = [steady_state(grid, workload) for workload in training]

    # Held-out mixture: a convex combination of training power maps.
    mixture_power = {
        layer: 0.5 * training[0][layer] + 0.3 * training[2][layer] + 0.2 * training[3][layer]
        for layer in training[0]
    }
    mixture_field = steady_state(grid, mixture_power)

    # Held-out novel workload: a hotspot the model never saw.
    novel_power = {
        "tier0.si": hotspot_power_map(nx, ny, w, h, [(0.9e-3, 3.1e-3, 1e-3, 1e-3, 1.8)], 0.35),
        "tier1.si": training[0]["tier1.si"],
    }
    novel_field = steady_state(grid, novel_power)

    # The batch placement engine's greedy walk is bit-identical to the
    # scalar `greedy_placement` (the parity gate in test_dtm_engine.py),
    # so the sites — and every row below — match the pre-engine numbers.
    candidates = candidate_grid(w, h, per_axis=4 if fast else 6)
    engine = PlacementEngine(basis_fields, LAYER, candidates, probe_grid=probe)
    placement = engine.greedy(max(budgets))

    rows: List[E5Row] = []
    for budget in budgets:
        sites = placement.sites[:budget]
        rows.append(
            E5Row(
                budget=budget,
                nearest_mix_c=reconstruction_error(mixture_field, LAYER, sites, probe),
                observer_mix_c=observer_error(
                    mixture_field, LAYER, sites, basis_fields, probe
                ),
                nearest_novel_c=reconstruction_error(novel_field, LAYER, sites, probe),
                observer_novel_c=observer_error(
                    novel_field, LAYER, sites, basis_fields, probe
                ),
            )
        )
    return E5Result(rows=rows, chosen_sites=placement.sites)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
