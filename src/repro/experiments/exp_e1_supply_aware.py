"""R-E1 (extension): supply-aware calibration vs the paper's engine.

Re-runs the R-F8 droop sweep with the four-ring joint estimator of
:mod:`repro.core.supply` next to the paper's nominal-supply engine.  The
shape to show: the paper engine degrades ~1 degC per % droop (R-F8), the
supply-aware engine holds the R-F4 accuracy class across the droop window
while additionally reporting the supply voltage itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.circuits.oscillator_bank import build_oscillator_bank, environment_for_die
from repro.core.calibration import SelfCalibrationEngine
from repro.core.errors import SensorError
from repro.core.supply import SupplyAwareEngine
from repro.experiments.common import die_population, reference_setup
from repro.units import celsius_to_kelvin, kelvin_to_celsius


@dataclass(frozen=True)
class E1Row:
    """Both engines' behaviour at one droop point (averaged over dies)."""

    droop_percent: float
    paper_temp_band_c: float
    aware_temp_band_c: float
    aware_vdd_band_mv: float


@dataclass(frozen=True)
class E1Result:
    """The droop sweep comparison."""

    rows: List[E1Row]
    true_temp_c: float

    def worst_aware_band(self) -> float:
        return max(row.aware_temp_band_c for row in self.rows)

    def worst_paper_band(self) -> float:
        return max(row.paper_temp_band_c for row in self.rows)

    def render(self) -> str:
        rows = [
            [
                f"{r.droop_percent:+.0f}",
                f"{r.paper_temp_band_c:.2f}",
                f"{r.aware_temp_band_c:.2f}",
                f"{r.aware_vdd_band_mv:.1f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            [
                "droop (%)",
                "paper engine T band (degC)",
                "supply-aware T band (degC)",
                "VDD read-out band (mV)",
            ],
            rows,
            title=f"R-E1 supply-aware calibration under droop at {self.true_temp_c:.0f} degC",
        )
        return (
            f"{table}\n"
            f"worst band across droop: paper {self.worst_paper_band():.2f} degC, "
            f"supply-aware {self.worst_aware_band():.2f} degC"
        )


def run(fast: bool = False, true_temp_c: float = 65.0) -> E1Result:
    """Execute the R-E1 droop comparison over a die population."""
    setup = reference_setup()
    die_count = 6 if fast else 25
    dies = die_population(die_count)
    droops = (-8.0, -4.0, 0.0, 4.0, 8.0) if fast else (-10.0, -7.5, -5.0, -2.5, 0.0, 2.5, 5.0, 7.5, 10.0)
    temp_k = celsius_to_kelvin(true_temp_c)

    paper_engine = SelfCalibrationEngine(setup.model, lut=setup.lut)
    aware_engine = SupplyAwareEngine(setup.model, lut=setup.lut)

    rows: List[E1Row] = []
    for droop in droops:
        vdd_true = setup.technology.vdd * (1.0 + droop / 100.0)
        paper_errors, aware_errors, vdd_errors = [], [], []
        for die in dies:
            bank = build_oscillator_bank(
                setup.technology,
                die=die,
                psro_stages=setup.config.psro_stages,
                tsro_stages=setup.config.tsro_stages,
            )
            env = environment_for_die(die, (2.5e-3, 2.5e-3), temp_k, vdd_true)
            freqs = bank.frequencies(env)
            try:
                paper = paper_engine.run(freqs.psro_n, freqs.psro_p, freqs.tsro)
                paper_errors.append(kelvin_to_celsius(paper.temp_k) - true_temp_c)
            except SensorError:
                paper_errors.append(15.0)  # diverged: scored at guard band
            aware = aware_engine.run_or_fallback(
                freqs.psro_n, freqs.psro_p, freqs.tsro, freqs.reference
            )
            aware_errors.append(kelvin_to_celsius(aware.temp_k) - true_temp_c)
            vdd_errors.append((aware.vdd - vdd_true) * 1e3)
        rows.append(
            E1Row(
                droop_percent=droop,
                paper_temp_band_c=float(np.max(np.abs(paper_errors))),
                aware_temp_band_c=float(np.max(np.abs(aware_errors))),
                aware_vdd_band_mv=float(np.max(np.abs(vdd_errors))),
            )
        )
    return E1Result(rows=rows, true_temp_c=true_temp_c)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
