"""R-F7: energy vs resolution — where 367.5 pJ/conversion comes from.

The counting windows are the sensor's only energy knob: a longer PSRO
window buys finer V_t quantisation linearly in energy, and more TSRO
periods buy finer temperature quantisation almost for free (the TSRO burns
microwatts).  Sweeping both maps the Pareto front and locates the reference
design point next to the paper's headline energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.tables import render_table
from repro.circuits.oscillator_bank import BankFrequencies
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.experiments.common import PAPER_ANCHORS, reference_setup
from repro.readout.energy import conversion_energy_from_frequencies
from repro.units import MICRO, celsius_to_kelvin


@dataclass(frozen=True)
class F7Row:
    """One operating point of the energy/resolution trade."""

    psro_window_us: float
    tsro_periods: int
    energy_pj: float
    conversion_time_us: float
    vtn_lsb_mv: float
    temp_lsb_c: float
    is_reference: bool


@dataclass(frozen=True)
class F7Result:
    """The swept trade-off table."""

    rows: List[F7Row]

    def reference_row(self) -> F7Row:
        for row in self.rows:
            if row.is_reference:
                return row
        raise ValueError("no reference operating point in the sweep")

    def render(self) -> str:
        rows = [
            [
                f"{r.psro_window_us:.2f}" + (" *" if r.is_reference else ""),
                f"{r.tsro_periods}",
                f"{r.energy_pj:.1f}",
                f"{r.conversion_time_us:.1f}",
                f"{r.vtn_lsb_mv:.3f}",
                f"{r.temp_lsb_c:.3f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            [
                "PSRO window (us)",
                "TSRO periods",
                "energy (pJ)",
                "t_conv (us)",
                "Vtn LSB (mV)",
                "T LSB (degC)",
            ],
            rows,
            title="R-F7 energy vs resolution (* = reference design point)",
        )
        ref = self.reference_row()
        return (
            f"{table}\n"
            f"reference point: {ref.energy_pj:.1f} pJ/conversion "
            f"(paper: {PAPER_ANCHORS['energy_per_conversion_pj']} pJ)"
        )


def _vtn_lsb_mv(f_n0: float, jac, config: SensorConfig) -> float:
    """V_tn quantisation step implied by one PSRO-N count."""
    counts = f_n0 * config.psro_window
    df = f_n0 / counts  # one-count frequency step
    return abs(df / jac[0, 0]) * 1e3


def _temp_lsb_c(f_t: float, tsro_slope: float, config: SensorConfig) -> float:
    """Temperature quantisation step implied by one reference count."""
    interval = config.tsro_periods / f_t
    counts = interval * config.ref_clock_hz
    relative_step = 1.0 / counts
    return relative_step / tsro_slope


def run(fast: bool = False, temp_c: float = 27.0) -> F7Result:
    """Execute the R-F7 window sweep on the typical die."""
    setup = reference_setup()
    temp_k = celsius_to_kelvin(temp_c)
    reference = setup.config

    windows_us = [0.3, 0.6, 1.2] if fast else [0.15, 0.3, 0.6, 1.2, 2.4, 4.8]
    periods = [48, 96] if fast else [24, 48, 96, 192, 384]

    # The operating point is fixed across the sweep: evaluate the device
    # model once and re-cost each (window, periods) point from the same
    # frequencies instead of re-walking the bank 30 times.
    env = Environment(temp_k=temp_k, vdd=setup.technology.vdd)
    frequencies = BankFrequencies(
        psro_n=setup.model.bank.psro_n.frequency(env),
        psro_p=setup.model.bank.psro_p.frequency(env),
        tsro=setup.model.bank.tsro.frequency(env),
        reference=0.0,  # not powered during a conversion
    )
    f_t = frequencies.tsro
    f_n0, _ = setup.model.process_frequencies(0.0, 0.0, temp_k)
    jac = setup.model.process_jacobian(0.0, 0.0, temp_k)
    delta = 0.5
    f_hi = setup.model.tsro_frequency(0.0, 0.0, temp_k + delta)
    f_lo = setup.model.tsro_frequency(0.0, 0.0, temp_k - delta)
    tsro_slope = (f_hi - f_lo) / (2.0 * delta) / setup.model.tsro_frequency(
        0.0, 0.0, temp_k
    )  # fractional per kelvin

    rows: List[F7Row] = []
    for window_us in windows_us:
        for n_periods in periods:
            config = reference.with_windows(
                psro_window=window_us * MICRO, tsro_periods=n_periods
            )
            energy = conversion_energy_from_frequencies(
                setup.model.bank, env, config, frequencies
            )
            rows.append(
                F7Row(
                    psro_window_us=window_us,
                    tsro_periods=n_periods,
                    energy_pj=energy.total * 1e12,
                    conversion_time_us=config.conversion_time(f_t) * 1e6,
                    vtn_lsb_mv=_vtn_lsb_mv(f_n0, jac, config),
                    temp_lsb_c=_temp_lsb_c(f_t, tsro_slope, config),
                    is_reference=(
                        abs(window_us * MICRO - reference.psro_window) < 1e-12
                        and n_periods == reference.tsro_periods
                    ),
                )
            )
    if not any(row.is_reference for row in rows):
        raise AssertionError("sweep must include the reference design point")
    return F7Result(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
