"""R-E10: resilience of the monitoring network under injected faults.

The paper's monitoring story assumes the read-out path works; this
extension asks what the network does when it does not.  A monitored
stack runs the built-in fault-plan catalogue (``repro.faults.campaign``)
— open TSVs, bit-flip bursts, resistive wear-out, dropped frames, stuck
and drifting sensors, supply droop, thermal runaway — and the campaign
scores detection latency, misdetection rate, and accuracy under fault.

The shapes to reproduce:

* the zero-fault control plan is clean — no degraded rounds, no false
  flags, and accuracy identical to an uninstrumented run;
* loud faults (open TSV, parity-visible bursts, dropped frames) are
  detected within the staleness budget and quarantined;
* quiet faults (even-weight flips, stuck/drifting sensors, droop)
  evade frame-level detection and surface only in the accuracy columns
  — the motivation for cross-tier plausibility checks (R-E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.campaign import (
    CampaignReport,
    PlanOutcome,
    builtin_plans,
    run_campaign,
)

FAST_TIERS = 4
FAST_ROUNDS = 14
FAST_PLANS = ("zero-fault", "open-tsv", "stealth-flips", "flaky-frames")

FULL_TIERS = 8
FULL_ROUNDS = 40

#: Plans whose faults corrupt data without ever touching frame delivery —
#: the monitor keeps fusing, and only the error columns betray them.
QUIET_PLANS = ("stealth-flips", "stuck-sensor", "drifting-sensor", "supply-droop")


@dataclass(frozen=True)
class E10Result:
    """The campaign report plus the shape accessors the tests assert on."""

    report: CampaignReport

    def outcome(self, name: str) -> PlanOutcome:
        for outcome in self.report.outcomes:
            if outcome.plan.name == name:
                return outcome
        raise KeyError(f"no plan named {name!r} in this campaign")

    @property
    def zero_fault(self) -> PlanOutcome:
        return self.outcome("zero-fault")

    def detected_loud_faults(self) -> bool:
        """Every frame-visible fault plan in the run got flagged."""
        return all(
            o.faults_detected == o.faults_total
            for o in self.report.outcomes
            if o.plan.specs and o.plan.name not in QUIET_PLANS
        )

    def worst_quiet_error_c(self) -> float:
        """Largest silent error among the quiet plans present in the run."""
        errors = [
            o.max_abs_error_c
            for o in self.report.outcomes
            if o.plan.name in QUIET_PLANS
        ]
        return max(errors) if errors else 0.0

    def render(self) -> str:
        return (
            f"{self.report.render()}\n\n"
            f"loud faults all detected: {self.detected_loud_faults()}\n"
            f"worst silent (quiet-plan) error: "
            f"{self.worst_quiet_error_c():.1f} degC\n"
            f"zero-fault control: "
            f"{self.zero_fault.degraded_rounds} degraded rounds, "
            f"misdetection rate {self.zero_fault.misdetection_rate:.3f}"
        )


def run(fast: bool = False, seed: Optional[int] = None) -> E10Result:
    """Run the R-E10 campaign.

    Args:
        fast: Smoke workload — a 4-tier stack, 14 rounds, and the four
            plans that exercise the loud/quiet split, instead of the
            full 8-tier catalogue sweep.
        seed: Campaign seed; ``None`` uses the suite default (2012).
    """
    seed = 2012 if seed is None else seed
    tiers = FAST_TIERS if fast else FULL_TIERS
    rounds = FAST_ROUNDS if fast else FULL_ROUNDS
    plans = builtin_plans(tiers=tiers, seed=seed)
    if fast:
        plans = [plan for plan in plans if plan.name in FAST_PLANS]
    report = run_campaign(plans=plans, tiers=tiers, rounds=rounds, seed=seed)
    return E10Result(report=report)
