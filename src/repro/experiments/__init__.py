"""Experiment harness: one module per reconstructed paper table/figure.

Every module exposes ``run(fast=False)`` returning a result object with a
``render()`` method that prints the rows/series the paper's figure or table
would contain, plus the metrics EXPERIMENTS.md records.  ``fast=True``
shrinks the workload for smoke tests; benchmarks run the full workload.

See DESIGN.md for the experiment index (R-F1 .. R-A1) and the rationale
for each reconstruction.
"""

from repro.experiments import (
    exp_a1_ablation,
    exp_e1_supply_aware,
    exp_e2_aging,
    exp_e3_tracking,
    exp_e4_dtm,
    exp_e5_placement,
    exp_e6_averaging,
    exp_e7_body_bias,
    exp_e8_runaway,
    exp_e9_fusion,
    exp_e10_fault_resilience,
    exp_f1_freq_vs_temp,
    exp_f2_process_sensitivity,
    exp_f3_vt_extraction,
    exp_f4_temperature_accuracy,
    exp_f5_stack_monitoring,
    exp_f6_tsv_stress,
    exp_f7_energy_resolution,
    exp_f8_voltage_sensitivity,
    exp_t1_summary,
    exp_t2_comparison,
)

ALL_EXPERIMENTS = {
    "R-F1": exp_f1_freq_vs_temp,
    "R-F2": exp_f2_process_sensitivity,
    "R-F3": exp_f3_vt_extraction,
    "R-F4": exp_f4_temperature_accuracy,
    "R-F5": exp_f5_stack_monitoring,
    "R-F6": exp_f6_tsv_stress,
    "R-F7": exp_f7_energy_resolution,
    "R-F8": exp_f8_voltage_sensitivity,
    "R-T1": exp_t1_summary,
    "R-T2": exp_t2_comparison,
    "R-A1": exp_a1_ablation,
    "R-E1": exp_e1_supply_aware,
    "R-E2": exp_e2_aging,
    "R-E3": exp_e3_tracking,
    "R-E4": exp_e4_dtm,
    "R-E5": exp_e5_placement,
    "R-E6": exp_e6_averaging,
    "R-E7": exp_e7_body_bias,
    "R-E8": exp_e8_runaway,
    "R-E9": exp_e9_fusion,
    "R-E10": exp_e10_fault_resilience,
}

__all__ = ["ALL_EXPERIMENTS"]
