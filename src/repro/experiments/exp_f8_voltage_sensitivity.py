"""R-F8: supply-droop sensitivity — the scheme's residual error term.

The sensor's bias voltages are resistive fractions of V_DD and its
calibration model assumes nominal supply, so a droop during conversion
leaks into both the V_t extraction and the temperature reading.  This
experiment quantifies the leakage across +/-10 % droop.  The same group's
2013 follow-up adds explicit voltage sensing to close this hole; here it is
characterised as the paper-era residual (and the ablation's motivation for
that future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.analysis.tables import render_table
from repro.core.errors import SensorError
from repro.experiments.common import build_sensor, reference_setup


@dataclass(frozen=True)
class F8Row:
    """Sensor error under one true supply voltage."""

    vdd: float
    temp_error_c: float
    vtn_error_mv: float
    vtp_error_mv: float


@dataclass(frozen=True)
class F8Result:
    """Error vs supply droop on the typical die."""

    rows: List[F8Row]
    true_temp_c: float

    def temp_sensitivity_c_per_percent(self) -> float:
        """Temperature error slope per percent of supply droop."""
        vdds = np.array([r.vdd for r in self.rows])
        errs = np.array([r.temp_error_c for r in self.rows])
        valid = ~np.isnan(errs)
        if np.count_nonzero(valid) < 2:
            raise ValueError("too few valid droop points to fit a slope")
        nominal = vdds[len(vdds) // 2]
        percent = (vdds - nominal) / nominal * 100.0
        slope = np.polyfit(percent[valid], errs[valid], 1)[0]
        return float(slope)

    def render(self) -> str:
        rows = [
            [
                f"{r.vdd:.3f}",
                f"{r.temp_error_c:+.2f}",
                f"{r.vtn_error_mv:+.2f}",
                f"{r.vtp_error_mv:+.2f}",
            ]
            for r in self.rows
        ]
        table = render_table(
            ["true VDD (V)", "T error (degC)", "Vtn error (mV)", "Vtp error (mV)"],
            rows,
            title=f"R-F8 supply-droop sensitivity at {self.true_temp_c:.0f} degC "
            "(sensor assumes nominal VDD)",
        )
        return (
            f"{table}\n"
            f"temperature sensitivity: {self.temp_sensitivity_c_per_percent():+.3f} "
            "degC per % droop"
        )


def run(fast: bool = False, true_temp_c: float = 65.0) -> F8Result:
    """Execute the R-F8 droop sweep on the typical die."""
    setup = reference_setup()
    nominal = setup.technology.vdd
    droops = np.linspace(-0.10, 0.10, 5 if fast else 11)
    sensor = build_sensor()

    rows: List[F8Row] = []
    for droop in droops:
        vdd = nominal * (1.0 + float(droop))
        try:
            reading = sensor.read(true_temp_c, vdd=vdd, deterministic=True)
        except SensorError:
            # A droop large enough to push the extraction outside the
            # characterised box is itself a finding: record it as NaN so
            # the rendered figure shows where the scheme stops working.
            rows.append(
                F8Row(
                    vdd=vdd,
                    temp_error_c=float("nan"),
                    vtn_error_mv=float("nan"),
                    vtp_error_mv=float("nan"),
                )
            )
            continue
        rows.append(
            F8Row(
                vdd=vdd,
                temp_error_c=reading.temperature_c - true_temp_c,
                vtn_error_mv=reading.dvtn * 1e3,
                vtp_error_mv=reading.dvtp * 1e3,
            )
        )
    return F8Result(rows=rows, true_temp_c=true_temp_c)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
