"""R-F2: process-ring sensitivity matrix — the decoupling figure.

Sweeps dV_tn and dV_tp independently and reports each ring's relative
frequency sensitivity.  The paper's scheme stands or falls on this matrix
being strongly diagonally dominant: PSRO-N must see V_tn and barely see
V_tp, and vice versa, or the 2x2 inversion is ill-conditioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.tables import render_table
from repro.batch import process_frequencies_batch
from repro.experiments.common import reference_setup
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class F2Result:
    """Sensitivity matrix and sweep series at the reference condition."""

    dvt_axis: np.ndarray
    psro_n_vs_dvtn: np.ndarray
    psro_n_vs_dvtp: np.ndarray
    psro_p_vs_dvtn: np.ndarray
    psro_p_vs_dvtp: np.ndarray
    sensitivity_matrix: np.ndarray  # relative, per mV
    decoupling_ratio: float
    condition_number: float

    def render(self) -> str:
        rows = [
            [
                "PSRO-N",
                f"{self.sensitivity_matrix[0, 0]*100:+.4f}",
                f"{self.sensitivity_matrix[0, 1]*100:+.4f}",
            ],
            [
                "PSRO-P",
                f"{self.sensitivity_matrix[1, 0]*100:+.4f}",
                f"{self.sensitivity_matrix[1, 1]*100:+.4f}",
            ],
        ]
        table = render_table(
            ["ring", "d f/f per mV dVtn (%)", "d f/f per mV dVtp (%)"],
            rows,
            title="R-F2 process sensitivity matrix at 25 degC",
        )
        return (
            f"{table}\n"
            f"decoupling ratio (diag/offdiag): {self.decoupling_ratio:.1f}\n"
            f"condition number of the 2x2 system: {self.condition_number:.2f}"
        )


def run(fast: bool = False) -> F2Result:
    """Execute the R-F2 sensitivity sweep."""
    setup = reference_setup()
    temp_k = celsius_to_kelvin(25.0)
    points = 5 if fast else 25
    axis = np.linspace(-0.060, 0.060, points)

    def sweep(which: str) -> Dict[str, np.ndarray]:
        shifts = {"dvtn": 0.0, "dvtp": 0.0}
        shifts[which] = axis
        f_n, f_p = process_frequencies_batch(
            setup.model, shifts["dvtn"], shifts["dvtp"], temp_k
        )
        return {"n": f_n, "p": f_p}

    by_dvtn = sweep("dvtn")
    by_dvtp = sweep("dvtp")

    f_n0, f_p0 = setup.model.process_frequencies(0.0, 0.0, temp_k)
    jac = setup.model.process_jacobian(0.0, 0.0, temp_k)
    relative = jac / np.array([[f_n0], [f_p0]]) * 1e-3  # per mV

    return F2Result(
        dvt_axis=axis,
        psro_n_vs_dvtn=by_dvtn["n"],
        psro_n_vs_dvtp=by_dvtp["n"],
        psro_p_vs_dvtn=by_dvtn["p"],
        psro_p_vs_dvtp=by_dvtp["p"],
        sensitivity_matrix=relative,
        decoupling_ratio=setup.model.decoupling_ratio(temp_k),
        condition_number=float(np.linalg.cond(jac)),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
