"""R-F5: per-tier monitoring of a TSV 3-D stack — the use-case experiment.

A four-tier stack (bottom tier farthest from the heat sink) runs a hotspot
workload; the thermal solver provides the ground-truth junction-temperature
field, one sensor per tier (two sites: die centre and inside the hotspot)
reads its local environment, and readings travel the TSV bus to the
aggregator.  The shapes to reproduce: tiers far from the sink run hotter,
intra-die gradients of several degC exist between the sites, and every
sensor tracks its *local* ground truth within the R-F4 accuracy class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.tables import render_table
from repro.core.sensor import PTSensor
from repro.experiments.common import die_population, reference_setup
from repro.readout.interface import SensorFrame, encode_frame
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state
from repro.tsv.bus import TsvSensorBus
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array
from repro.units import kelvin_to_celsius

GRID_NX = 20
GRID_NY = 20
HOTSPOT_SITE = (1.4e-3, 1.4e-3)
CENTER_SITE = (2.5e-3, 2.5e-3)


@dataclass(frozen=True)
class TierReading:
    """Ground truth vs sensor estimate at one site of one tier."""

    tier: str
    site: str
    true_c: float
    estimated_c: float

    @property
    def error_c(self) -> float:
        return self.estimated_c - self.true_c


@dataclass(frozen=True)
class F5Result:
    """All tier/site readings plus bus health."""

    readings: List[TierReading]
    tier_peaks_c: Dict[str, float]
    bus_healthy: bool

    def max_error_c(self) -> float:
        return max(abs(r.error_c) for r in self.readings)

    def inter_tier_gradient_c(self) -> float:
        """Hottest minus coolest tier peak."""
        peaks = list(self.tier_peaks_c.values())
        return max(peaks) - min(peaks)

    def render(self) -> str:
        rows = [
            [r.tier, r.site, f"{r.true_c:.2f}", f"{r.estimated_c:.2f}", f"{r.error_c:+.2f}"]
            for r in self.readings
        ]
        table = render_table(
            ["tier", "site", "true T (degC)", "sensor T (degC)", "error (degC)"],
            rows,
            title="R-F5 per-tier monitoring of a 4-tier TSV stack (hotspot workload)",
        )
        peaks = ", ".join(f"{k}={v:.1f}" for k, v in self.tier_peaks_c.items())
        return (
            f"{table}\n"
            f"tier peak temperatures (degC): {peaks}\n"
            f"inter-tier gradient: {self.inter_tier_gradient_c():.2f} degC\n"
            f"worst sensor error: {self.max_error_c():.2f} degC\n"
            f"TSV read-out chain healthy: {self.bus_healthy}"
        )


def _build_stack() -> Tuple[StackDescriptor, list]:
    tiers = [TierSpec(f"tier{i}") for i in range(4)]
    tsvs = regular_tsv_array(8, 8, pitch=100e-6, origin=(2.1e-3, 2.1e-3))
    stack = StackDescriptor(tiers=tiers, tsv_sites=tsvs)
    return stack, tiers


def _workload(stack: StackDescriptor, nx: int, ny: int) -> Dict[str, np.ndarray]:
    """Hotspot workload: compute tier hot at the bottom, lighter tiers above."""
    spots = {
        "tier0.si": ([(1.0e-3, 1.0e-3, 0.9e-3, 0.9e-3, 2.0)], 0.6),
        "tier1.si": ([], 0.35),
        "tier2.si": ([(3.0e-3, 3.0e-3, 0.8e-3, 0.8e-3, 1.2)], 0.3),
        "tier3.si": ([], 0.25),
    }
    return {
        layer: hotspot_power_map(
            nx, ny, stack.die_width, stack.die_height, hotspots, background
        )
        for layer, (hotspots, background) in spots.items()
    }


def run(fast: bool = False) -> F5Result:
    """Execute the R-F5 stack-monitoring experiment."""
    setup = reference_setup()
    stack, tiers = _build_stack()
    nx = 12 if fast else GRID_NX
    ny = 12 if fast else GRID_NY
    grid = build_stack_grid(
        stack.thermal_layers(nx, ny), stack.die_width, stack.die_height, nx=nx, ny=ny
    )
    workload = _workload(stack, nx, ny)
    field = steady_state(grid, workload)

    dies = die_population(len(tiers))
    readings: List[TierReading] = []
    frames = {}
    for tier_id, (tier, die) in enumerate(zip(tiers, dies)):
        layer = stack.transistor_layer_name(tier)
        sites = {"center": CENTER_SITE} if fast else {
            "center": CENTER_SITE,
            "hotspot": HOTSPOT_SITE,
        }
        for site_name, (x, y) in sites.items():
            true_k = field.at(layer, x, y)
            sensor_at_site = PTSensor(
                setup.technology,
                config=setup.config,
                die=die,
                location=(x, y),
                die_id=tier_id,
                sensing_model=setup.model,
                lut=setup.lut,
            )
            env = sensor_at_site.physical_environment(true_k)
            reading = sensor_at_site.read_environment(env)
            readings.append(
                TierReading(
                    tier=tier.name,
                    site=site_name,
                    true_c=kelvin_to_celsius(true_k),
                    estimated_c=reading.temperature_c,
                )
            )
            if site_name == "center":
                frames[tier_id] = encode_frame(
                    SensorFrame(
                        die_id=tier_id,
                        dvtn=reading.dvtn,
                        dvtp=reading.dvtp,
                        temperature_c=reading.temperature_c,
                    )
                )

    bus = TsvSensorBus(tiers=len(tiers))
    report = bus.collect(frames)

    tier_peaks = {
        tier.name: kelvin_to_celsius(field.peak(stack.transistor_layer_name(tier)))
        for tier in tiers
    }
    return F5Result(
        readings=readings, tier_peaks_c=tier_peaks, bus_healthy=report.healthy
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
