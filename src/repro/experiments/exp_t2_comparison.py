"""R-T2: scheme comparison on an identical die population.

The prior-art-style table: every sensor scheme reads the *same* Monte-Carlo
dies at the same temperatures, so the only difference is the calibration
scheme.  Columns carry both accuracy and the cost that accuracy was bought
with — the paper's pitch is the bottom-left cell: two-point-class accuracy
at zero factory-calibration cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.metrics import ErrorStats, error_stats
from repro.analysis.tables import render_table
from repro.baselines.diode import DIODE_SENSOR_ENERGY_J, DiodeSensor
from repro.baselines.ratio import RatioSensor
from repro.baselines.two_point import TwoPointCalibratedSensor
from repro.baselines.uncalibrated import UncalibratedTsroSensor
from repro.circuits.ring_oscillator import Environment
from repro.experiments.common import die_population, population_sensors, reference_setup
from repro.readout.energy import conversion_energy
from repro.units import celsius_to_kelvin

COMPARISON_TEMPS_C = (-20.0, 27.0, 85.0)


@dataclass(frozen=True)
class SchemeRow:
    """One comparison row."""

    scheme: str
    stats: ErrorStats
    energy_pj: float
    factory_cost: str


@dataclass(frozen=True)
class T2Result:
    """The assembled comparison."""

    rows: List[SchemeRow]

    def row(self, scheme: str) -> SchemeRow:
        for row in self.rows:
            if row.scheme == scheme:
                return row
        raise KeyError(f"unknown scheme {scheme!r}")

    def render(self) -> str:
        rows = [
            [
                r.scheme,
                f"+/-{r.stats.band:.2f}",
                f"{r.stats.three_sigma:.2f}",
                f"{r.energy_pj:.0f}",
                r.factory_cost,
            ]
            for r in self.rows
        ]
        return render_table(
            [
                "scheme",
                "T inaccuracy (degC)",
                "3sigma (degC)",
                "energy/conv (pJ)",
                "factory calibration",
            ],
            rows,
            title="R-T2 scheme comparison (same dies, same temperatures)",
        )


def run(fast: bool = False) -> T2Result:
    """Execute the R-T2 comparison."""
    setup = reference_setup()
    die_count = 20 if fast else 120
    dies = die_population(die_count)
    sensors = population_sensors(die_count)

    env_27 = Environment(temp_k=celsius_to_kelvin(27.0), vdd=setup.technology.vdd)
    full_energy_pj = conversion_energy(setup.model.bank, env_27, setup.config).total * 1e12
    # Temperature-only schemes skip the two PSRO phases.
    tsro_energy = conversion_energy(setup.model.bank, env_27, setup.config)
    tsro_only_pj = (tsro_energy.tsro + tsro_energy.counters / 3.0 + tsro_energy.digital) * 1e12

    errors: Dict[str, List[float]] = {
        "uncalibrated TSRO": [],
        "ratio-metric dual-RO": [],
        "diode (untrimmed)": [],
        "diode (1-pt trim)": [],
        "two-point factory cal": [],
        "self-calibrated (paper)": [],
    }

    for die, sensor in zip(dies, sensors):
        baselines = {
            "uncalibrated TSRO": UncalibratedTsroSensor(
                setup.technology, config=setup.config, die=die, sensing_model=setup.model
            ),
            "ratio-metric dual-RO": RatioSensor(
                setup.technology, config=setup.config, die=die, sensing_model=setup.model
            ),
            "diode (untrimmed)": DiodeSensor(die=die, trimmed=False),
            "diode (1-pt trim)": DiodeSensor(die=die, trimmed=True),
            "two-point factory cal": TwoPointCalibratedSensor(
                setup.technology, config=setup.config, die=die
            ),
        }
        for temp in COMPARISON_TEMPS_C:
            for name, baseline in baselines.items():
                errors[name].append(baseline.read_temperature(temp) - temp)
            errors["self-calibrated (paper)"].append(
                sensor.read(temp).temperature_c - temp
            )

    costs = {
        "uncalibrated TSRO": "none",
        "ratio-metric dual-RO": "none",
        "diode (untrimmed)": "none (analog area)",
        "diode (1-pt trim)": "1 chamber point/die",
        "two-point factory cal": "2 chamber points/die",
        "self-calibrated (paper)": "none (on-chip)",
    }
    energies = {
        "uncalibrated TSRO": tsro_only_pj,
        "ratio-metric dual-RO": tsro_only_pj * 1.5,
        "diode (untrimmed)": DIODE_SENSOR_ENERGY_J * 1e12,
        "diode (1-pt trim)": DIODE_SENSOR_ENERGY_J * 1e12,
        "two-point factory cal": tsro_only_pj,
        "self-calibrated (paper)": full_energy_pj,
    }

    rows = [
        SchemeRow(
            scheme=name,
            stats=error_stats(np.asarray(errs)),
            energy_pj=energies[name],
            factory_cost=costs[name],
        )
        for name, errs in errors.items()
    ]
    return T2Result(rows=rows)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
