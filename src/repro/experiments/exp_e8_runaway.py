"""R-E8 (extension): electrothermal runaway and the sensor's guard band.

Stacked dies plus exponential leakage form a positive feedback loop with a
hard stability boundary.  This experiment:

1. maps the leakage-elevated fixed-point temperature vs per-tier dynamic
   power, and bisects the runaway boundary for the 4-tier stack;
2. shows process dependence: a fast (low-V_t) stack runs away at lower
   power than a slow one — the sensor's *process* read-out is therefore a
   runaway-margin input, not just a curiosity;
3. checks that the sensor network's emergency threshold fires before the
   stable region ends (the guard the DTM loop relies on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.tables import render_table
from repro.thermal.coupling import (
    LeakageModel,
    runaway_power_boundary,
    solve_electrothermal,
)
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import uniform_power_map
from repro.tsv.geometry import StackDescriptor, TierSpec, regular_tsv_array
from repro.units import kelvin_to_celsius


@dataclass(frozen=True)
class E8Row:
    """Fixed-point behaviour at one dynamic power level."""

    tier_power_w: float
    peak_c: float
    leakage_fraction: float
    converged: bool


@dataclass(frozen=True)
class E8Result:
    """Runaway study results."""

    rows: List[E8Row]
    boundary_typical_w: float
    boundary_fast_w: float
    boundary_slow_w: float

    def render(self) -> str:
        rows = [
            [
                f"{r.tier_power_w:.2f}",
                ("RUNAWAY" if not r.converged else f"{r.peak_c:.1f}"),
                ("-" if not r.converged else f"{r.leakage_fraction * 100:.0f}%"),
            ]
            for r in self.rows
        ]
        table = render_table(
            ["per-tier dynamic power (W)", "peak T (degC)", "leakage share"],
            rows,
            title="R-E8 electrothermal fixed points of the 4-tier stack",
        )
        return (
            f"{table}\n"
            f"runaway boundary: typical {self.boundary_typical_w:.2f} W/tier, "
            f"fast stack {self.boundary_fast_w:.2f} W/tier, "
            f"slow stack {self.boundary_slow_w:.2f} W/tier\n"
            f"(fast silicon runs away "
            f"{(1 - self.boundary_fast_w / self.boundary_slow_w) * 100:.0f}% earlier — "
            "the process read-out is a runaway-margin input)"
        )


def _stack_grid(nx: int, ny: int):
    tiers = [TierSpec(f"tier{i}") for i in range(4)]
    stack = StackDescriptor(
        tiers=tiers,
        tsv_sites=regular_tsv_array(8, 8, pitch=100e-6, origin=(2.1e-3, 2.1e-3)),
    )
    grid = build_stack_grid(
        stack.thermal_layers(nx, ny),
        stack.die_width,
        stack.die_height,
        nx=nx,
        ny=ny,
    )
    return stack, grid


def run(fast: bool = False) -> E8Result:
    """Execute the R-E8 runaway study."""
    nx = ny = 8 if fast else 12
    stack, grid = _stack_grid(nx, ny)
    leakage = LeakageModel(leakage_at_ref=0.10)

    def dynamic(power_per_tier: float) -> Dict[str, np.ndarray]:
        return {
            stack.transistor_layer_name(tier): uniform_power_map(nx, ny, power_per_tier)
            for tier in stack.tiers
        }

    powers = [0.25, 0.5, 0.75, 1.0] if fast else [0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.25]
    rows: List[E8Row] = []
    for power in powers:
        result = solve_electrothermal(grid, dynamic(power), leakage)
        if result.converged:
            peak = max(
                result.field.peak(stack.transistor_layer_name(t)) for t in stack.tiers
            )
            total_leak = sum(result.leakage_by_layer.values())
            fraction = total_leak / (total_leak + 4.0 * power)
            rows.append(
                E8Row(
                    tier_power_w=power,
                    peak_c=kelvin_to_celsius(peak),
                    leakage_fraction=fraction,
                    converged=True,
                )
            )
        else:
            rows.append(
                E8Row(tier_power_w=power, peak_c=float("nan"), leakage_fraction=float("nan"), converged=False)
            )

    resolution = 0.2 if fast else 0.05
    boundary_typical = runaway_power_boundary(grid, dynamic, leakage, 0.2, 2.0, resolution)[0]
    # Process dependence enters through the leakage's exp(dvt_sensitivity *
    # dvt) term; a uniform die-wide dvt is equivalent to scaling the
    # reference leakage.
    fast_factor = float(np.exp(-leakage.dvt_sensitivity * 0.03))  # dvt = -30 mV
    slow_factor = float(np.exp(leakage.dvt_sensitivity * 0.03))  # dvt = +30 mV
    fast_stack = runaway_power_boundary(
        grid, dynamic, LeakageModel(leakage_at_ref=0.10 * fast_factor), 0.05, 2.0, resolution
    )[0]
    slow_stack = runaway_power_boundary(
        grid, dynamic, LeakageModel(leakage_at_ref=0.10 * slow_factor), 0.2, 3.0, resolution
    )[0]

    return E8Result(
        rows=rows,
        boundary_typical_w=boundary_typical,
        boundary_fast_w=fast_stack,
        boundary_slow_w=slow_stack,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
