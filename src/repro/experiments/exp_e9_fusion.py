"""R-E9 (extension): Kalman fusion — cheap conversions, full resolution.

Continuous monitoring produces a reading stream whose random error is white
between conversions while the junction temperature moves on thermal time
constants.  Filtering therefore trades *per-conversion* quality for
*stream* quality: a sensor running quarter-length windows (~3x less energy
per conversion, ~4x coarser quantisation) plus a random-walk Kalman track
recovers the reference design's tracking quality.  The experiment runs a
thermal transient, samples it with (a) the reference sensor and (b) a
cheap-window sensor, and compares the cheap sensor's raw and filtered
tracks against the reference — with the energy bill per sample alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.analysis.tables import render_table
from repro.core.sensor import PTSensor
from repro.experiments.common import build_sensor, die_population, reference_setup
from repro.network.fusion import filter_trace
from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import BEOL, SILICON
from repro.thermal.power import uniform_power_map
from repro.thermal.solver import thermal_time_constant, transient
from repro.units import kelvin_to_celsius


@dataclass(frozen=True)
class E9Result:
    """Tracking statistics of the three configurations (degC / pJ)."""

    reference_sigma: float
    cheap_raw_sigma: float
    cheap_filtered_sigma: float
    reference_energy_pj: float
    cheap_energy_pj: float
    samples: int
    dies: int

    def noise_suppression(self) -> float:
        if self.cheap_filtered_sigma == 0.0:
            return float("inf")
        return self.cheap_raw_sigma / self.cheap_filtered_sigma

    def energy_saving(self) -> float:
        return self.reference_energy_pj / self.cheap_energy_pj

    def render(self) -> str:
        rows = [
            [
                "reference sensor, raw",
                f"{self.reference_sigma:.3f}",
                f"{self.reference_energy_pj:.0f}",
            ],
            [
                "cheap-window sensor, raw",
                f"{self.cheap_raw_sigma:.3f}",
                f"{self.cheap_energy_pj:.0f}",
            ],
            [
                "cheap-window sensor, Kalman",
                f"{self.cheap_filtered_sigma:.3f}",
                f"{self.cheap_energy_pj:.0f}",
            ],
        ]
        table = render_table(
            ["configuration", "tracking sigma (degC)", "energy/sample (pJ)"],
            rows,
            title=f"R-E9 Kalman fusion: cheap conversions + filtering "
            f"({self.dies} dies x {self.samples} samples)",
        )
        return (
            f"{table}\n"
            f"filtering suppresses the cheap sensor's noise "
            f"{self.noise_suppression():.1f}x at {self.energy_saving():.1f}x "
            "lower energy per sample than the reference design"
        )


SAMPLE_DT_S = 1e-3
"""Monitoring interval: kHz-class sampling (the tracking mode's regime)."""

SLEW_TUNING_C_PER_S = 30.0
"""Filter process-noise tuning: the typical (not worst-case) slew."""


def _transient_truth(samples: int):
    """Ground-truth site temperature over a step-up/step-down transient.

    Sampled at kHz rate — much faster than the stack's thermal time
    constant, which is exactly when fusing consecutive readings pays.
    """
    layers = [
        ThermalLayer("die.si", 150e-6, SILICON, heat_source=True),
        ThermalLayer("die.beol", 8e-6, BEOL),
    ]
    nx = ny = 8
    grid = build_stack_grid(layers, 5e-3, 5e-3, nx=nx, ny=ny, top_htc=500.0)
    tau = thermal_time_constant(grid)
    step_time = 0.4 * samples * SAMPLE_DT_S

    def schedule(t):
        watts = 0.5 if t < step_time else 0.15
        return {"die.si": uniform_power_map(nx, ny, watts)}

    assert tau > 10.0 * SAMPLE_DT_S  # fast-sampling regime, by construction
    fields = transient(grid, schedule, dt=SAMPLE_DT_S, steps=samples)
    truth = [kelvin_to_celsius(f.at("die.si", 2.5e-3, 2.5e-3)) for f in fields]
    times = [SAMPLE_DT_S * (k + 1) for k in range(samples)]
    return times, truth


def run(fast: bool = False) -> E9Result:
    """Execute the R-E9 fusion study."""
    samples = 80 if fast else 300
    die_count = 3 if fast else 10
    times, truth = _transient_truth(samples)
    dies = die_population(die_count)
    setup = reference_setup()
    cheap_config = setup.config.with_windows(
        psro_window=setup.config.psro_window / 4.0, tsro_periods=24
    )

    ref_random, cheap_random, filt_random = [], [], []
    ref_energy = cheap_energy = None
    for die in dies:
        ref_sensor = build_sensor(die)
        cheap_sensor = PTSensor(
            setup.technology,
            config=cheap_config,
            die=die,
            sensing_model=setup.model,
            lut=setup.lut,
        )
        ref_readings, cheap_readings = [], []
        for t in truth:
            ref_reading = ref_sensor.read(float(t))
            cheap_reading = cheap_sensor.read(float(t))
            ref_readings.append(ref_reading.temperature_c)
            cheap_readings.append(cheap_reading.temperature_c)
            ref_energy = ref_reading.energy.total * 1e12
            cheap_energy = cheap_reading.energy.total * 1e12
        cheap_sigma_est = max(0.05, float(np.std(np.diff(cheap_readings))) / np.sqrt(2.0))
        filtered = filter_trace(
            times,
            cheap_readings,
            measurement_sigma_c=cheap_sigma_est,
            slew_limit_c_per_s=SLEW_TUNING_C_PER_S,
        )
        for series, sink in (
            (ref_readings, ref_random),
            (cheap_readings, cheap_random),
            (filtered, filt_random),
        ):
            err = np.asarray(series) - np.asarray(truth)
            sink.extend(err - err.mean())

    return E9Result(
        reference_sigma=float(np.std(ref_random)),
        cheap_raw_sigma=float(np.std(cheap_random)),
        cheap_filtered_sigma=float(np.std(filt_random)),
        reference_energy_pj=ref_energy,
        cheap_energy_pj=cheap_energy,
        samples=samples,
        dies=die_count,
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
