"""TSV thermo-mechanical stress and its effect on nearby transistors.

Copper expands ~4x more per kelvin than silicon.  After the post-plating
anneal cools down, each TSV squeezes the surrounding silicon with a
classic Lame (thick-wall cylinder) residual field:

    sigma_r(r)     = +sigma_edge * (R / r)^2
    sigma_theta(r) = -sigma_edge * (R / r)^2

with ``sigma_edge`` of order 100-200 MPa at the via wall.  Through silicon's
piezoresistive response this shifts carrier mobility (strongly, and with
opposite sign for electrons and holes) and weakly shifts the thresholds —
the "V_t scatter" the paper's sensor is built to observe.

Coefficients are the standard bulk-silicon piezoresistive values reduced to
a scalar worst-channel-orientation model; the keep-out-zone radii this
produces (a few micrometres to tens of micrometres at 5 % mobility
threshold) match the published TSV KOZ literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.tsv.geometry import TsvSite


@dataclass(frozen=True)
class StressModel:
    """Stress field and device-shift coefficients.

    Attributes:
        sigma_edge_pa: Radial stress magnitude at the via wall, pascals.
        pi_mu_n: NMOS mobility sensitivity, fractional change per pascal
            (electrons gain mobility under the dominant tensile component).
        pi_mu_p: PMOS mobility sensitivity, fractional change per pascal
            (holes lose mobility; larger magnitude).
        k_vt_n: NMOS threshold sensitivity, volts per pascal.
        k_vt_p: PMOS threshold-magnitude sensitivity, volts per pascal.
    """

    sigma_edge_pa: float = 1.5e8
    pi_mu_n: float = 2.0e-10
    pi_mu_p: float = -7.0e-10
    k_vt_n: float = -2.0e-11
    k_vt_p: float = 3.0e-11

    def radial_stress(self, distance: float, site: TsvSite) -> float:
        """Radial stress magnitude at ``distance`` from a via centre, Pa.

        Inside the via wall the field is clamped to the wall value (the
        Lame solution only holds outside the inclusion).
        """
        if distance < 0.0:
            raise ValueError("distance must be non-negative")
        r = max(distance, site.radius)
        return self.sigma_edge_pa * (site.radius / r) ** 2

    def _total_stress(self, x: float, y: float, sites: Sequence[TsvSite]) -> float:
        total = 0.0
        for site in sites:
            distance = float(np.hypot(x - site.x, y - site.y))
            total += self.radial_stress(distance, site)
        return total

    def mobility_shifts_at(
        self, x: float, y: float, sites: Sequence[TsvSite]
    ) -> Tuple[float, float]:
        """Fractional (d_mu_n/mu, d_mu_p/mu) at a die location.

        Stress from multiple vias superposes linearly (valid at the small
        strains involved).
        """
        sigma = self._total_stress(x, y, sites)
        return self.pi_mu_n * sigma, self.pi_mu_p * sigma

    def vt_shifts_at(
        self, x: float, y: float, sites: Sequence[TsvSite]
    ) -> Tuple[float, float]:
        """Stress-induced (dV_tn, dV_tp) at a die location, volts."""
        sigma = self._total_stress(x, y, sites)
        return self.k_vt_n * sigma, self.k_vt_p * sigma

    def effective_vt_shifts_at(
        self, x: float, y: float, sites: Sequence[TsvSite]
    ) -> Tuple[float, float]:
        """Threshold-equivalent total device shift, volts.

        Folds the mobility change into an equivalent threshold shift (a
        1 % drive change looks like roughly a 3 mV threshold move for the
        sensor's near-threshold sensing devices) so stress can be injected
        into circuit environments that only expose threshold knobs.
        """
        dvt_n, dvt_p = self.vt_shifts_at(x, y, sites)
        dmu_n, dmu_p = self.mobility_shifts_at(x, y, sites)
        mu_to_vt = -0.3  # volts of equivalent V_t per unit fractional mobility
        return dvt_n + mu_to_vt * dmu_n, dvt_p + mu_to_vt * dmu_p
