"""TSV 3-D integration substrate.

The sensor exists because of this package's physics: stacked dies connected
by through-silicon vias develop inter-tier thermal gradients (``geometry``
feeds the thermal solver) and TSV thermo-mechanical stress perturbs nearby
transistor thresholds and mobilities (``stress``, ``keepout``) — the
"thermal stress and V_t scatter" the paper's abstract opens with.  Sensor
readings travel between tiers over a TSV daisy chain (``bus``) with
realistic corruption modes.
"""

from repro.tsv.bus import BusReport, TsvSensorBus
from repro.tsv.electrical import TsvElectricalModel
from repro.tsv.geometry import StackDescriptor, TierSpec, TsvSite, regular_tsv_array
from repro.tsv.keepout import keep_out_radius
from repro.tsv.stress import StressModel

__all__ = [
    "BusReport",
    "StackDescriptor",
    "StressModel",
    "TierSpec",
    "TsvElectricalModel",
    "TsvSensorBus",
    "TsvSite",
    "keep_out_radius",
    "regular_tsv_array",
]
