"""The inter-tier sensor read-out chain over TSVs.

Every tier's sensor publishes one 40-bit frame per conversion; frames hop
tier-to-tier down a TSV daisy chain to the aggregator on the controller
tier.  The chain models the two failure modes that matter for a monitoring
network:

* **bit errors** on the TSV links (coupling noise, marginal bonds) — caught
  by frame parity with probability 1 for odd-weight corruption;
* **stuck tiers** — a tier whose sensor or link is dead contributes no
  frame, and the aggregator must report the hole rather than hide it.

When a fault plan is active (:func:`repro.faults.inject`), the injector
additionally filters every frame through the plan's link faults — open
TSVs, resistive drift, bit-flip bursts, frame drops — before the bus's
own corruption model runs (see docs/faults.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro import telemetry
from repro.faults.runtime import active_injector
from repro.readout.interface import FRAME_BITS, FrameError, SensorFrame, decode_frame

_FRAMES_DELIVERED = telemetry.counter(
    "network.bus.frames_delivered",
    unit="frames",
    help="Frames decoded cleanly off the TSV chain",
)
_PARITY_ERRORS = telemetry.counter(
    "network.bus.parity_errors",
    unit="frames",
    help="Frames dropped by the parity check (corruption in transit)",
)
_MISSING_FRAMES = telemetry.counter(
    "network.bus.missing_frames",
    unit="frames",
    help="Chain positions that produced no frame (stuck/dead tier)",
)
_BITS_FLIPPED = telemetry.counter(
    "network.bus.bits_flipped",
    unit="bits",
    help="Injected TSV link bit flips",
)


@dataclass(frozen=True)
class BusReport:
    """Result of collecting one conversion round from every tier.

    Attributes:
        frames: Successfully decoded frames keyed by tier index.
        parity_errors: Tiers whose frame failed the parity check.
        missing: Tiers that produced no frame at all (stuck/dead).
    """

    frames: Dict[int, SensorFrame]
    parity_errors: List[int]
    missing: List[int]

    @property
    def healthy(self) -> bool:
        """True when every tier delivered a clean frame."""
        return not self.parity_errors and not self.missing


@dataclass
class TsvSensorBus:
    """A TSV daisy chain collecting sensor frames from all tiers.

    Attributes:
        tiers: Number of tiers on the chain.
        bit_error_rate: Per-bit flip probability per hop.
        stuck_tiers: Tiers that never deliver a frame.
    """

    tiers: int
    bit_error_rate: float = 0.0
    stuck_tiers: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.tiers < 1:
            raise ValueError("the bus needs at least one tier")
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise ValueError("bit_error_rate must lie in [0, 1)")
        for tier in self.stuck_tiers:
            if not 0 <= tier < self.tiers:
                raise ValueError(f"stuck tier {tier} out of range")

    def _corrupt(self, word: int, hops: int, rng: Optional[np.random.Generator]) -> int:
        if rng is None or self.bit_error_rate == 0.0 or hops == 0:
            return word
        # Each bit survives `hops` link traversals.
        flip_probability = 1.0 - (1.0 - self.bit_error_rate) ** hops
        flips = rng.random(FRAME_BITS) < flip_probability
        flipped_bits = 0
        for bit, flipped in enumerate(flips):
            if flipped:
                word ^= 1 << bit
                flipped_bits += 1
        _BITS_FLIPPED.inc(flipped_bits)
        return word

    def collect(
        self,
        frames_by_tier: Dict[int, int],
        rng: Optional[np.random.Generator] = None,
    ) -> BusReport:
        """Shift every tier's encoded frame down the chain and decode.

        Args:
            frames_by_tier: Tier index -> encoded 40-bit frame word.  A
                tier absent from the dict (or marked stuck) is reported
                missing.
            rng: Randomness for bit-error injection; ``None`` disables
                corruption regardless of the configured rate.

        Returns:
            The :class:`BusReport` for this round.
        """
        frames: Dict[int, SensorFrame] = {}
        parity_errors: List[int] = []
        missing: List[int] = []
        injector = active_injector()

        for tier in range(self.tiers):
            if tier in self.stuck_tiers or tier not in frames_by_tier:
                missing.append(tier)
                continue
            word = frames_by_tier[tier]
            if injector is not None:
                # Injected link faults apply before the bus's own noise: a
                # frame from tier t crosses t inter-tier links to tier 0.
                word = injector.filter_frame(tier, word, hops=tier)
                if word is None:  # open TSV / dropped frame
                    missing.append(tier)
                    continue
            word = self._corrupt(word, hops=tier, rng=rng)
            try:
                frames[tier] = decode_frame(word)
            except FrameError:
                parity_errors.append(tier)
        _FRAMES_DELIVERED.inc(len(frames))
        _PARITY_ERRORS.inc(len(parity_errors))
        _MISSING_FRAMES.inc(len(missing))
        return BusReport(frames=frames, parity_errors=parity_errors, missing=missing)
