"""Stack/die/TSV geometry and its translation into thermal layers.

A :class:`StackDescriptor` is the single source of truth for the 3-D
assembly: tier order (bottom tier farthest from the heat sink), layer
thicknesses, and TSV placement.  Its :meth:`StackDescriptor.thermal_layers`
method compiles the assembly into the finite-volume layer list consumed by
:func:`repro.thermal.build_stack_grid`, with TSV copper locally boosting
vertical conductivity — the thermal-via effect.

Geometry follows the group's own fabricated vehicles: 5 x 5 mm dies,
~10 um TSV diameter, 100-200 um TSV depth (thinned silicon).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.thermal.grid import ThermalLayer
from repro.thermal.materials import (
    BEOL,
    BONDING,
    HEAT_SPREADER,
    SILICON,
    tsv_effective_conductivity,
)


@dataclass(frozen=True)
class TsvSite:
    """One through-silicon via.

    Attributes:
        x: Via-centre x coordinate on the die, metres.
        y: Via-centre y coordinate, metres.
        radius: Via radius in metres (5 um default class).
    """

    x: float
    y: float
    radius: float = 5e-6

    def __post_init__(self) -> None:
        if self.radius <= 0.0:
            raise ValueError("TSV radius must be positive")


@dataclass(frozen=True)
class TierSpec:
    """One die tier of the stack.

    Attributes:
        name: Tier label, used as layer-name prefix and sensor die_id key.
        si_thickness: Thinned-silicon thickness, metres.
        beol_thickness: Back-end-of-line thickness, metres.
    """

    name: str
    si_thickness: float = 100e-6
    beol_thickness: float = 8e-6


def regular_tsv_array(
    rows: int,
    cols: int,
    pitch: float,
    origin: Tuple[float, float] = (1.0e-3, 1.0e-3),
    radius: float = 5e-6,
) -> List[TsvSite]:
    """A rows x cols TSV array on a regular pitch."""
    if rows < 1 or cols < 1:
        raise ValueError("array needs at least one row and one column")
    if pitch <= 0.0:
        raise ValueError("pitch must be positive")
    x0, y0 = origin
    return [
        TsvSite(x=x0 + c * pitch, y=y0 + r * pitch, radius=radius)
        for r in range(rows)
        for c in range(cols)
    ]


@dataclass(frozen=True)
class StackDescriptor:
    """A complete 3-D stack assembly.

    Attributes:
        tiers: Die tiers from bottom (index 0, farthest from the sink) to
            top (closest to the sink).
        die_width: Lateral x extent, metres.
        die_height: Lateral y extent, metres.
        bond_thickness: Die-to-die bonding-layer thickness, metres.
        tsv_sites: TSV positions; the same array runs through every tier
            (a standard via-aligned stack).
        spreader_thickness: Heat-spreader slab on top, metres.
    """

    tiers: Sequence[TierSpec]
    die_width: float = 5e-3
    die_height: float = 5e-3
    bond_thickness: float = 20e-6
    tsv_sites: Sequence[TsvSite] = field(default_factory=list)
    spreader_thickness: float = 500e-6

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("the stack needs at least one tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError("tier names must be unique")

    def transistor_layer_name(self, tier: TierSpec) -> str:
        """The heat-source layer name of a tier."""
        return f"{tier.name}.si"

    def tsv_fill_map(self, nx: int, ny: int) -> np.ndarray:
        """Per-cell copper area fraction of the TSV array, shape (ny, nx)."""
        fill = np.zeros((ny, nx))
        if not self.tsv_sites:
            return fill
        dx = self.die_width / nx
        dy = self.die_height / ny
        cell_area = dx * dy
        for site in self.tsv_sites:
            ix = int(np.clip(site.x / dx, 0, nx - 1))
            iy = int(np.clip(site.y / dy, 0, ny - 1))
            fill[iy, ix] += np.pi * site.radius**2 / cell_area
        return np.clip(fill, 0.0, 0.6)

    def thermal_layers(self, nx: int, ny: int) -> List[ThermalLayer]:
        """Compile the assembly into finite-volume layers, bottom to top.

        Each tier contributes silicon (heat source) and BEOL slabs; tiers
        are separated by bonding layers.  TSV copper boosts the vertical
        conductivity of the silicon and bonding cells it crosses, and a
        heat spreader caps the stack.
        """
        fill = self.tsv_fill_map(nx, ny)
        kz_si = (
            None
            if not self.tsv_sites
            else _kz_scale(fill, SILICON.conductivity, SILICON)
        )
        kz_bond = (
            None
            if not self.tsv_sites
            else _kz_scale(fill, BONDING.conductivity, BONDING)
        )

        layers: List[ThermalLayer] = []
        for index, tier in enumerate(self.tiers):
            layers.append(
                ThermalLayer(
                    name=self.transistor_layer_name(tier),
                    thickness=tier.si_thickness,
                    material=SILICON,
                    kz_scale=kz_si,
                    heat_source=True,
                )
            )
            layers.append(
                ThermalLayer(
                    name=f"{tier.name}.beol",
                    thickness=tier.beol_thickness,
                    material=BEOL,
                )
            )
            if index + 1 < len(self.tiers):
                layers.append(
                    ThermalLayer(
                        name=f"bond{index}",
                        thickness=self.bond_thickness,
                        material=BONDING,
                        kz_scale=kz_bond,
                    )
                )
        layers.append(
            ThermalLayer(
                name="spreader",
                thickness=self.spreader_thickness,
                material=HEAT_SPREADER,
            )
        )
        return layers


def _kz_scale(fill: np.ndarray, base_k: float, material) -> np.ndarray:
    effective = np.vectorize(lambda f: tsv_effective_conductivity(material, f))(fill)
    return effective / base_k
