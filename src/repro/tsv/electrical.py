"""TSV electrical model: the read-out chain's physical link budget.

A through-silicon via is electrically a short, fat wire through a lossy
dielectric: series resistance from the copper column, capacitance from the
coaxial oxide liner to the substrate.  Those two numbers set the bus's RC
delay per hop, its switching energy per bit, and (with the driver) the
maximum chain clock — the quantities behind the bus substrate's frame
timing and the group's own "GHz high-frequency TSV" characterisation work.

Standard closed forms:

    R = rho_cu * depth / (pi * r^2)
    C = 2 * pi * eps_ox * depth / ln((r + t_ox) / r)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tsv.geometry import TsvSite

RHO_COPPER = 1.72e-8
"""Copper resistivity in ohm-metres (slightly elevated for plated films)."""

EPS_OXIDE = 3.9 * 8.854e-12
"""SiO2 liner permittivity in F/m."""

# Delay constant of an RC-limited link charged through a driver: ~0.69 RC
# for the wire itself plus the driver's own RC, lumped as a factor.
_RC_DELAY_FACTOR = 0.69


@dataclass(frozen=True)
class TsvElectricalModel:
    """Electrical parameters of one TSV.

    Attributes:
        depth: Via depth (thinned-silicon + bond thickness), metres.
        liner_thickness: Oxide liner thickness, metres.
        driver_resistance: On-resistance of the bus driver, ohms.
        load_capacitance: Receiver gate + ESD load at the far end, farads.
    """

    depth: float = 120e-6
    liner_thickness: float = 0.5e-6
    driver_resistance: float = 500.0
    load_capacitance: float = 5e-15

    def __post_init__(self) -> None:
        if self.depth <= 0.0 or self.liner_thickness <= 0.0:
            raise ValueError("depth and liner_thickness must be positive")
        if self.driver_resistance <= 0.0 or self.load_capacitance <= 0.0:
            raise ValueError("driver and load parameters must be positive")

    def resistance(self, site: TsvSite) -> float:
        """Series resistance of the copper column, ohms."""
        return RHO_COPPER * self.depth / (np.pi * site.radius**2)

    def capacitance(self, site: TsvSite) -> float:
        """Coaxial liner capacitance to the substrate, farads."""
        ratio = (site.radius + self.liner_thickness) / site.radius
        return 2.0 * np.pi * EPS_OXIDE * self.depth / np.log(ratio)

    def hop_delay(self, site: TsvSite) -> float:
        """Driver-to-receiver delay of one inter-tier hop, seconds."""
        c_total = self.capacitance(site) + self.load_capacitance
        r_total = self.resistance(site) + self.driver_resistance
        return _RC_DELAY_FACTOR * r_total * c_total

    def max_bus_clock(self, site: TsvSite, hops: int = 1, margin: float = 2.0) -> float:
        """Highest safe bus clock for a chain of ``hops`` links, hertz.

        The chain is registered per tier, so timing closes per hop; the
        margin covers clock skew and setup.
        """
        if hops < 1:
            raise ValueError("hops must be >= 1")
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        return 1.0 / (margin * self.hop_delay(site))

    def bit_energy(self, site: TsvSite, vdd: float) -> float:
        """Switching energy of one bit transition over one hop, joules."""
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        c_total = self.capacitance(site) + self.load_capacitance
        return c_total * vdd * vdd

    def frame_energy(self, site: TsvSite, vdd: float, frame_bits: int = 40, activity: float = 0.5) -> float:
        """Energy to ship one frame over one hop, joules.

        ``activity`` is the fraction of bits that actually transition.
        """
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must lie in [0, 1]")
        return frame_bits * activity * self.bit_energy(site, vdd)
