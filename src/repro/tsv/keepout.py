"""Keep-out-zone (KOZ) analysis around TSVs.

Design rules forbid placing matching-critical transistors where TSV stress
shifts their behaviour beyond a tolerance.  The KOZ radius for a tolerance
``eta`` on fractional mobility shift follows directly from the Lame field:

    |pi * sigma_edge| (R / r)^2 = eta   =>   r_koz = R sqrt(|pi| sigma_edge / eta)

This module computes that radius and checks sensor placements against it —
the design guidance experiment R-F6 reports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tsv.geometry import TsvSite
from repro.tsv.stress import StressModel


def keep_out_radius(
    model: StressModel, site: TsvSite, mobility_tolerance: float = 0.05
) -> float:
    """KOZ radius (from the via centre) for a mobility tolerance, metres.

    Uses the worse of the NMOS/PMOS sensitivities; never smaller than the
    via radius itself.
    """
    if mobility_tolerance <= 0.0:
        raise ValueError("mobility_tolerance must be positive")
    pi_worst = max(abs(model.pi_mu_n), abs(model.pi_mu_p))
    ratio = pi_worst * model.sigma_edge_pa / mobility_tolerance
    return site.radius * max(1.0, float(np.sqrt(ratio)))


def placement_is_clear(
    model: StressModel,
    x: float,
    y: float,
    sites: Sequence[TsvSite],
    mobility_tolerance: float = 0.05,
) -> bool:
    """Whether a die location is outside every TSV's keep-out zone."""
    for site in sites:
        distance = float(np.hypot(x - site.x, y - site.y))
        if distance < keep_out_radius(model, site, mobility_tolerance):
            return False
    return True


def minimum_clear_distance(
    model: StressModel,
    sites: Sequence[TsvSite],
    mobility_tolerance: float = 0.05,
) -> float:
    """Largest KOZ radius across an array — the array's placement margin."""
    if not sites:
        return 0.0
    return max(keep_out_radius(model, site, mobility_tolerance) for site in sites)
