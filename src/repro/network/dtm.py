"""Dynamic thermal management (DTM) closed loop on sensor readings.

The end-to-end use case the paper's introduction promises: per-tier sensors
feed a throttling policy that scales tier power to hold the stack under a
thermal limit.  The loop here is the classic multiplicative-decrease /
additive-increase controller:

* a tier reading at or above ``throttle_c`` gets its power multiplied by
  ``decrease_factor`` (fast back-off);
* a tier reading below ``release_c`` recovers ``increase_step`` of its
  budget per round (slow recovery), creating hysteresis so the loop does
  not chatter.

``run_closed_loop`` wires the controller to the transient thermal solver
and the stack monitor, producing the trajectory experiment R-E4 reports.
The interesting system property: the controller only ever sees *sensor*
temperatures, so the sensor's +/-1.5 degC class directly becomes guard-band
the designer does not have to add.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.network.aggregator import StackMonitor
from repro.thermal.grid import StackThermalGrid
from repro.thermal.solver import transient
from repro.tsv.geometry import StackDescriptor
from repro.units import kelvin_to_celsius


@dataclass(frozen=True)
class DtmPolicy:
    """Throttling policy parameters.

    Attributes:
        throttle_c: Reading at/above this throttles the tier.
        release_c: Reading below this lets the tier recover budget.
        decrease_factor: Multiplicative power back-off on throttle.
        increase_step: Additive budget recovery per cool round (fraction
            of full power).
        floor: Minimum power fraction (a tier is never fully gated —
            caches/uncore keep leaking).
    """

    throttle_c: float = 85.0
    release_c: float = 78.0
    decrease_factor: float = 0.7
    increase_step: float = 0.05
    floor: float = 0.2

    def __post_init__(self) -> None:
        if self.release_c >= self.throttle_c:
            raise ValueError("release threshold must sit below throttle")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must lie in (0, 1)")
        if not 0.0 < self.floor < 1.0:
            raise ValueError("floor must lie in (0, 1)")

    def update(self, scale: float, reading_c: float) -> float:
        """Next power fraction for one tier given its sensor reading."""
        return decide(self, scale, reading_c)[1]


#: The two decision verbs of the live control plane (wire values).
THROTTLE = "throttle"
RELEASE = "release"
DTM_ACTIONS = (THROTTLE, RELEASE)


def apply_action(policy: DtmPolicy, scale: float, action: str) -> float:
    """The scale one decision verb produces from the standing scale.

    This is the single source of the controller arithmetic: the offline
    loop below, the live :class:`repro.dtm.table.DtmTable` on the server
    and the :class:`repro.dtm.service.DtmService` mirror all call it, so
    a decision computed on one side replays to the same scale on the
    other (exact float equality, no re-derivation drift).
    """
    if action == THROTTLE:
        return max(policy.floor, scale * policy.decrease_factor)
    if action == RELEASE:
        return min(1.0, scale + policy.increase_step)
    raise ValueError(f"unknown DTM action {action!r}; known: {DTM_ACTIONS}")


def decide(
    policy: DtmPolicy, scale: float, reading_c: float
) -> Tuple[Optional[str], float]:
    """One hysteresis step: ``(action, next_scale)`` for a tier reading.

    ``action`` is ``"throttle"`` / ``"release"`` when the scale moves and
    ``None`` when the reading sits in the hysteresis band — or when the
    verb would be a no-op (already at the floor, already at full power),
    so a live controller issues no wire traffic for standing state.
    ``next_scale`` is always exactly :meth:`DtmPolicy.update`'s value.
    """
    if reading_c >= policy.throttle_c:
        next_scale = apply_action(policy, scale, THROTTLE)
        return (THROTTLE if next_scale != scale else None), next_scale
    if reading_c < policy.release_c:
        next_scale = apply_action(policy, scale, RELEASE)
        return (RELEASE if next_scale != scale else None), next_scale
    return None, scale


@dataclass(frozen=True)
class DtmTrace:
    """Trajectory of one closed-loop run (lists indexed by step).

    Attributes:
        times_s: Simulation time at each step.
        true_peak_c: Hottest true junction temperature in the stack.
        sensed_peak_c: Hottest sensor reading.
        power_scales: Per-tier power fraction applied at each step.
        throttled_steps: Steps where any tier was below full power.
    """

    times_s: List[float]
    true_peak_c: List[float]
    sensed_peak_c: List[float]
    power_scales: List[Dict[int, float]]

    @property
    def throttled_steps(self) -> int:
        return sum(
            1 for scales in self.power_scales if any(s < 1.0 for s in scales.values())
        )

    def max_true_peak(self) -> float:
        return max(self.true_peak_c)

    def worst_sensing_gap(self) -> float:
        """Largest |true peak - sensed peak| along the trajectory."""
        return max(
            abs(t - s) for t, s in zip(self.true_peak_c, self.sensed_peak_c)
        )


def run_closed_loop(
    stack: StackDescriptor,
    grid: StackThermalGrid,
    monitor: StackMonitor,
    base_power: Dict[str, np.ndarray],
    policy: DtmPolicy,
    dt: float,
    steps: int,
    sensor_sites: Dict[int, tuple],
    decision_sink: Optional[Callable[[int, int, str], None]] = None,
) -> DtmTrace:
    """Run the sensor-driven throttling loop on the transient solver.

    Args:
        stack: The 3-D assembly (maps tiers to solver layers).
        grid: Pre-built thermal grid of the assembly.
        monitor: Stack monitor owning one sensor per tier.
        base_power: Unthrottled per-layer power maps.
        policy: Throttling policy.
        dt: Control period in seconds (one solver step per control step).
        steps: Control steps to simulate.
        sensor_sites: Tier index -> (x, y) sensor location, metres.
        decision_sink: Optional ``(tier, round, action)`` callback fired
            for every emitted verb — the same typed decision stream the
            live control plane carries, so a caller can record the run
            into a :class:`repro.dtm.table.DtmTable` (experiment R-E4
            does).  The trace itself is unaffected.

    Returns:
        The closed-loop :class:`DtmTrace`.
    """
    tiers = list(stack.tiers)
    scales: Dict[int, float] = {tier_id: 1.0 for tier_id in range(len(tiers))}
    times, true_peaks, sensed_peaks, scale_log = [], [], [], []

    state_field = None
    for step in range(1, steps + 1):
        scaled_power = {}
        for tier_id, tier in enumerate(tiers):
            layer = stack.transistor_layer_name(tier)
            scaled_power[layer] = base_power[layer] * scales[tier_id]

        state_field = transient(
            grid, lambda t: scaled_power, dt=dt, steps=1, initial=state_field
        )[0]

        true_temps = {}
        for tier_id, tier in enumerate(tiers):
            layer = stack.transistor_layer_name(tier)
            x, y = sensor_sites[tier_id]
            true_temps[tier_id] = kelvin_to_celsius(state_field.at(layer, x, y))

        snapshot = monitor.poll(true_temps)
        for tier_id, reading in snapshot.temperatures_c.items():
            action, scales[tier_id] = decide(policy, scales[tier_id], reading)
            if action is not None and decision_sink is not None:
                decision_sink(tier_id, step - 1, action)

        times.append(step * dt)
        true_peaks.append(
            max(
                kelvin_to_celsius(state_field.peak(stack.transistor_layer_name(t)))
                for t in tiers
            )
        )
        sensed_peaks.append(
            max(snapshot.temperatures_c.values()) if snapshot.temperatures_c else float("nan")
        )
        scale_log.append(dict(scales))

    return DtmTrace(
        times_s=times,
        true_peak_c=true_peaks,
        sensed_peak_c=sensed_peaks,
        power_scales=scale_log,
    )
