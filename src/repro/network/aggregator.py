"""The stack monitor: polling every tier's sensor over the TSV chain.

One conversion round = every alive tier senses, frames its reading, and the
frames traverse the TSV daisy chain.  The aggregator's job is the
unglamorous part a real monitoring network lives or dies by:

* **parity errors** — re-poll the affected tier (bounded retries);
* **missing tiers** — count consecutive misses and declare the tier dead
  after a threshold instead of silently reporting stale data;
* **revival probes** — a dead tier is still probed each round, so a tier
  that recovers (re-seated link, cleared fault) rejoins the network
  instead of being ignored forever;
* **alarms** — classify each tier against warning/emergency thresholds so
  the DTM layer gets actionable state, not raw frames.

The monitor distinguishes *why* a tier missed a round: a parity-failed
re-poll that never delivered a clean frame is **corruption** (the tier is
alive, the link is noisy), while silence is **possible death**.  Both
count toward the dead-tier threshold, but they are tracked — and reported
through telemetry — separately, so a noisy link and a dead tier look
different on a dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.core.sensor import PTSensor
from repro.tsv.bus import TsvSensorBus

DEAD_AFTER_CONSECUTIVE_MISSES = 3

_POLLS = telemetry.counter(
    "network.monitor.polls", unit="rounds", help="Polling rounds executed"
)
_RETRIES = telemetry.counter(
    "network.monitor.retries",
    unit="rounds",
    help="Bus re-poll rounds triggered by parity failures",
)
_PARITY_MISSES = telemetry.counter(
    "network.monitor.parity_misses",
    unit="misses",
    help="Tier-rounds lost to corruption after exhausting retries",
)
_SILENT_MISSES = telemetry.counter(
    "network.monitor.silent_misses",
    unit="misses",
    help="Tier-rounds lost to silence (no frame at all)",
)
_DEAD_TIER_EVENTS = telemetry.counter(
    "network.monitor.dead_tier_events",
    unit="events",
    help="Alive -> dead transitions",
)
_TIER_REVIVALS = telemetry.counter(
    "network.monitor.tier_revivals",
    unit="events",
    help="Dead -> alive transitions (a probed tier answered cleanly)",
)
_ALARM_TRANSITIONS = telemetry.counter(
    "network.monitor.alarm_transitions",
    unit="events",
    help="Tiers newly entering the warning or emergency band",
)


@dataclass
class TierState:
    """Aggregator-side state of one tier.

    Attributes:
        tier: Tier index.
        temperature_c: Last good temperature reading.
        dvtn: Last good NMOS threshold shift, volts.
        dvtp: Last good PMOS threshold-magnitude shift, volts.
        consecutive_misses: Polls in a row with no clean frame (either
            cause); the dead-tier threshold applies to this total.
        consecutive_parity_misses: The corruption share of the streak —
            rounds lost to parity failures that survived every retry.
        consecutive_silent_misses: The silence share of the streak —
            rounds where the tier produced no frame at all.
        alive: False while the tier is declared dead (it is still probed
            and revives on the next clean frame).
    """

    tier: int
    temperature_c: Optional[float] = None
    dvtn: Optional[float] = None
    dvtp: Optional[float] = None
    consecutive_misses: int = 0
    consecutive_parity_misses: int = 0
    consecutive_silent_misses: int = 0
    alive: bool = True

    def _register_good_frame(self) -> None:
        self.consecutive_misses = 0
        self.consecutive_parity_misses = 0
        self.consecutive_silent_misses = 0


@dataclass(frozen=True)
class MonitorSnapshot:
    """Result of one polling round.

    Attributes:
        temperatures_c: Fresh readings by tier (only tiers that answered).
        hottest_tier: Tier with the highest fresh reading, or None.
        warnings: Tiers at or above the warning threshold.
        emergencies: Tiers at or above the emergency threshold.
        dead_tiers: Tiers currently declared dead.
        retries_used: Bus re-polls needed this round.
        parity_faults: Parity-failed frame receptions this round (across
            all attempts, before retries resolved them).
        revived_tiers: Tiers that came back from the dead this round.
    """

    temperatures_c: Dict[int, float]
    hottest_tier: Optional[int]
    warnings: List[int]
    emergencies: List[int]
    dead_tiers: List[int]
    retries_used: int
    parity_faults: int = 0
    revived_tiers: List[int] = field(default_factory=list)


class StackMonitor:
    """Polls a stack of PT sensors over the TSV chain.

    Args:
        sensors: Tier index -> sensor macro.
        bus: The TSV read-out chain (its failure modes apply).
        warning_c: Warning threshold in Celsius.
        emergency_c: Emergency threshold in Celsius.
        retry_limit: Bus re-polls per round for parity-failed tiers.
        rng: Randomness for bus corruption; ``None`` = clean bus.
    """

    def __init__(
        self,
        sensors: Dict[int, PTSensor],
        bus: TsvSensorBus,
        warning_c: float = 95.0,
        emergency_c: float = 110.0,
        retry_limit: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if warning_c >= emergency_c:
            raise ValueError("warning threshold must sit below emergency")
        if retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        self.sensors = dict(sensors)
        self.bus = bus
        self.warning_c = warning_c
        self.emergency_c = emergency_c
        self.retry_limit = retry_limit
        self.rng = rng
        self.states: Dict[int, TierState] = {
            tier: TierState(tier=tier) for tier in self.sensors
        }
        self.history: List[MonitorSnapshot] = []
        self._alarmed: Dict[int, str] = {}

    def _sense_tier(self, tier: int, temp_c: float, vdd: Optional[float]) -> int:
        sensor = self.sensors[tier]
        reading = sensor.read(temp_c, vdd=vdd)
        return sensor.frame(reading)

    def poll(
        self, true_temps_c: Dict[int, float], vdd: Optional[float] = None
    ) -> MonitorSnapshot:
        """One polling round against the true per-tier temperatures.

        Args:
            true_temps_c: Physical junction temperature at each tier's
                sensor site (from the thermal solver or a test harness).
            vdd: True supply voltage (``None`` = nominal).

        Returns:
            The round's :class:`MonitorSnapshot`; tier states update as a
            side effect.
        """
        # Dead tiers are probed too: polling them costs one conversion
        # attempt, and it is the only way a revived tier can rejoin.
        pending = [tier for tier in self.states if tier in true_temps_c]
        fresh: Dict[int, float] = {}
        revived: List[int] = []
        retries_used = 0
        parity_faults = 0

        with telemetry.span(
            "network.poll_round", tiers=len(pending), retry_limit=self.retry_limit
        ) as trace:
            attempts = 0
            while pending and attempts <= self.retry_limit:
                polled = set(pending)
                frames = {
                    tier: self._sense_tier(tier, true_temps_c[tier], vdd)
                    for tier in pending
                }
                with telemetry.span(
                    "network.bus_collect", attempt=attempts, tiers=len(frames)
                ) as bus_trace:
                    report = self.bus.collect(frames, rng=self.rng)
                    bus_trace.set(
                        delivered=len(report.frames),
                        parity_errors=len(report.parity_errors),
                        missing=len(report.missing),
                    )
                parity_faults += len(report.parity_errors)
                for tier, frame in report.frames.items():
                    state = self.states[tier]
                    if not state.alive:
                        state.alive = True
                        revived.append(tier)
                        _TIER_REVIVALS.inc()
                    state.temperature_c = frame.temperature_c
                    state.dvtn = frame.dvtn
                    state.dvtp = frame.dvtp
                    state._register_good_frame()
                    fresh[tier] = frame.temperature_c
                # Parity-failed tiers get re-polled; missing tiers do not (a
                # stuck tier will not answer a retry either).  The bus reports
                # every chain position absent from the shift-in as missing, so
                # only tiers we actually polled this round count.
                for tier in report.missing:
                    if tier in polled:
                        self._register_miss(tier, silent=True)
                pending = list(report.parity_errors)
                if pending:
                    retries_used += 1
                    _RETRIES.inc()
                attempts += 1
            for tier in pending:  # parity failures that survived all retries
                self._register_miss(tier, silent=False)

            warnings = sorted(
                t
                for t, temp in fresh.items()
                if self.warning_c <= temp < self.emergency_c
            )
            emergencies = sorted(
                t for t, temp in fresh.items() if temp >= self.emergency_c
            )
            self._track_alarm_transitions(warnings, emergencies)
            snapshot = MonitorSnapshot(
                temperatures_c=fresh,
                hottest_tier=max(fresh, key=fresh.get) if fresh else None,
                warnings=warnings,
                emergencies=emergencies,
                dead_tiers=sorted(t for t, s in self.states.items() if not s.alive),
                retries_used=retries_used,
                parity_faults=parity_faults,
                revived_tiers=sorted(revived),
            )
            _POLLS.inc()
            trace.set(
                fresh=len(fresh),
                retries_used=retries_used,
                parity_faults=parity_faults,
                dead_tiers=len(snapshot.dead_tiers),
                revived=len(revived),
            )
        self.history.append(snapshot)
        return snapshot

    def _register_miss(self, tier: int, silent: bool) -> None:
        state = self.states[tier]
        state.consecutive_misses += 1
        if silent:
            state.consecutive_silent_misses += 1
            _SILENT_MISSES.inc()
        else:
            state.consecutive_parity_misses += 1
            _PARITY_MISSES.inc()
        if state.alive and state.consecutive_misses >= DEAD_AFTER_CONSECUTIVE_MISSES:
            state.alive = False
            _DEAD_TIER_EVENTS.inc()

    def _track_alarm_transitions(
        self, warnings: List[int], emergencies: List[int]
    ) -> None:
        """Count tiers whose alarm band changed upward or sideways."""
        current = {tier: "warning" for tier in warnings}
        current.update({tier: "emergency" for tier in emergencies})
        for tier, band in current.items():
            if self._alarmed.get(tier) != band:
                _ALARM_TRANSITIONS.inc()
        self._alarmed = current

    def process_map(self) -> Dict[int, tuple]:
        """Last known (dV_tn, dV_tp) per tier — the stack's process map."""
        return {
            tier: (state.dvtn, state.dvtp)
            for tier, state in self.states.items()
            if state.dvtn is not None
        }
