"""The stack monitor: polling every tier's sensor over the TSV chain.

One conversion round = every alive tier senses, frames its reading, and the
frames traverse the TSV daisy chain.  The aggregator's job is the
unglamorous part a real monitoring network lives or dies by:

* **parity errors** — re-poll the affected tier (bounded retries);
* **missing tiers** — count consecutive misses and declare the tier dead
  after a threshold instead of silently reporting stale data;
* **alarms** — classify each tier against warning/emergency thresholds so
  the DTM layer gets actionable state, not raw frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.sensor import PTSensor
from repro.tsv.bus import TsvSensorBus

DEAD_AFTER_CONSECUTIVE_MISSES = 3


@dataclass
class TierState:
    """Aggregator-side state of one tier.

    Attributes:
        tier: Tier index.
        temperature_c: Last good temperature reading.
        dvtn: Last good NMOS threshold shift, volts.
        dvtp: Last good PMOS threshold-magnitude shift, volts.
        consecutive_misses: Polls in a row with no clean frame.
        alive: False once the tier is declared dead.
    """

    tier: int
    temperature_c: Optional[float] = None
    dvtn: Optional[float] = None
    dvtp: Optional[float] = None
    consecutive_misses: int = 0
    alive: bool = True


@dataclass(frozen=True)
class MonitorSnapshot:
    """Result of one polling round.

    Attributes:
        temperatures_c: Fresh readings by tier (only tiers that answered).
        hottest_tier: Tier with the highest fresh reading, or None.
        warnings: Tiers at or above the warning threshold.
        emergencies: Tiers at or above the emergency threshold.
        dead_tiers: Tiers declared dead so far.
        retries_used: Bus re-polls needed this round.
    """

    temperatures_c: Dict[int, float]
    hottest_tier: Optional[int]
    warnings: List[int]
    emergencies: List[int]
    dead_tiers: List[int]
    retries_used: int


class StackMonitor:
    """Polls a stack of PT sensors over the TSV chain.

    Args:
        sensors: Tier index -> sensor macro.
        bus: The TSV read-out chain (its failure modes apply).
        warning_c: Warning threshold in Celsius.
        emergency_c: Emergency threshold in Celsius.
        retry_limit: Bus re-polls per round for parity-failed tiers.
        rng: Randomness for bus corruption; ``None`` = clean bus.
    """

    def __init__(
        self,
        sensors: Dict[int, PTSensor],
        bus: TsvSensorBus,
        warning_c: float = 95.0,
        emergency_c: float = 110.0,
        retry_limit: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if warning_c >= emergency_c:
            raise ValueError("warning threshold must sit below emergency")
        if retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        self.sensors = dict(sensors)
        self.bus = bus
        self.warning_c = warning_c
        self.emergency_c = emergency_c
        self.retry_limit = retry_limit
        self.rng = rng
        self.states: Dict[int, TierState] = {
            tier: TierState(tier=tier) for tier in self.sensors
        }
        self.history: List[MonitorSnapshot] = []

    def _sense_tier(self, tier: int, temp_c: float, vdd: Optional[float]) -> int:
        sensor = self.sensors[tier]
        reading = sensor.read(temp_c, vdd=vdd)
        return sensor.frame(reading)

    def poll(
        self, true_temps_c: Dict[int, float], vdd: Optional[float] = None
    ) -> MonitorSnapshot:
        """One polling round against the true per-tier temperatures.

        Args:
            true_temps_c: Physical junction temperature at each tier's
                sensor site (from the thermal solver or a test harness).
            vdd: True supply voltage (``None`` = nominal).

        Returns:
            The round's :class:`MonitorSnapshot`; tier states update as a
            side effect.
        """
        pending = [
            tier
            for tier, state in self.states.items()
            if state.alive and tier in true_temps_c
        ]
        fresh: Dict[int, float] = {}
        retries_used = 0

        attempts = 0
        while pending and attempts <= self.retry_limit:
            polled = set(pending)
            frames = {
                tier: self._sense_tier(tier, true_temps_c[tier], vdd)
                for tier in pending
            }
            report = self.bus.collect(frames, rng=self.rng)
            for tier, frame in report.frames.items():
                state = self.states[tier]
                state.temperature_c = frame.temperature_c
                state.dvtn = frame.vtn_shift
                state.dvtp = frame.vtp_shift
                state.consecutive_misses = 0
                fresh[tier] = frame.temperature_c
            # Parity-failed tiers get re-polled; missing tiers do not (a
            # stuck tier will not answer a retry either).  The bus reports
            # every chain position absent from the shift-in as missing, so
            # only tiers we actually polled this round count.
            for tier in report.missing:
                if tier in polled:
                    self._register_miss(tier)
            pending = list(report.parity_errors)
            if pending:
                retries_used += 1
            attempts += 1
        for tier in pending:  # parity failures that survived all retries
            self._register_miss(tier)

        warnings = sorted(
            t for t, temp in fresh.items() if self.warning_c <= temp < self.emergency_c
        )
        emergencies = sorted(t for t, temp in fresh.items() if temp >= self.emergency_c)
        snapshot = MonitorSnapshot(
            temperatures_c=fresh,
            hottest_tier=max(fresh, key=fresh.get) if fresh else None,
            warnings=warnings,
            emergencies=emergencies,
            dead_tiers=sorted(t for t, s in self.states.items() if not s.alive),
            retries_used=retries_used,
        )
        self.history.append(snapshot)
        return snapshot

    def _register_miss(self, tier: int) -> None:
        state = self.states[tier]
        state.consecutive_misses += 1
        if state.consecutive_misses >= DEAD_AFTER_CONSECUTIVE_MISSES:
            state.alive = False

    def process_map(self) -> Dict[int, tuple]:
        """Last known (dV_tn, dV_tp) per tier — the stack's process map."""
        return {
            tier: (state.dvtn, state.dvtp)
            for tier, state in self.states.items()
            if state.dvtn is not None
        }
