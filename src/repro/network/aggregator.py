"""The stack monitor: polling every tier's sensor over the TSV chain.

One conversion round = every alive tier senses, frames its reading, and the
frames traverse the TSV daisy chain.  The aggregator's job is the
unglamorous part a real monitoring network lives or dies by:

* **parity errors** — re-poll the affected tier (bounded retries with
  exponential backoff, budgeted by the :class:`ResiliencePolicy`);
* **missing tiers** — count consecutive misses and quarantine the tier
  after a threshold instead of silently reporting stale data;
* **revival probes** — a quarantined tier is still probed each round; it
  rejoins after the policy's required number of consecutive clean
  probes, so a flapping link cannot oscillate the network per-round;
* **graceful degradation** — while every tier answers, the monitor
  publishes a fused stack estimate; once any tier goes stale or dark it
  falls back to per-tier readings carrying explicit quality flags
  (``fresh`` / ``stale`` / ``lost``) so consumers know what they hold;
* **alarms** — classify each tier against warning/emergency thresholds so
  the DTM layer gets actionable state, not raw frames.

The monitor distinguishes *why* a tier missed a round: a parity-failed
re-poll that never delivered a clean frame is **corruption** (the tier is
alive, the link is noisy), while silence is **possible death**.  Both
count toward the quarantine threshold, but they are tracked — and
reported through telemetry — separately, so a noisy link and a dead tier
look different on a dashboard.

Under an active fault plan (:func:`repro.faults.inject`), each ``poll``
is one fault-clock round: the monitor advances the active injector when
the round completes, so plans' onset/duration windows line up with
polling rounds without any experiment-side bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.core.errors import SensorError
from repro.core.sensor import PTSensor
from repro.faults.runtime import active_injector
from repro.tsv.bus import TsvSensorBus

DEAD_AFTER_CONSECUTIVE_MISSES = 3

_POLLS = telemetry.counter(
    "network.monitor.polls", unit="rounds", help="Polling rounds executed"
)
_RETRIES = telemetry.counter(
    "network.monitor.retries",
    unit="rounds",
    help="Bus re-poll rounds triggered by parity failures",
)
_PARITY_MISSES = telemetry.counter(
    "network.monitor.parity_misses",
    unit="misses",
    help="Tier-rounds lost to corruption after exhausting retries",
)
_SILENT_MISSES = telemetry.counter(
    "network.monitor.silent_misses",
    unit="misses",
    help="Tier-rounds lost to silence (no frame at all)",
)
_DEAD_TIER_EVENTS = telemetry.counter(
    "network.monitor.dead_tier_events",
    unit="events",
    help="Alive -> dead transitions",
)
_TIER_REVIVALS = telemetry.counter(
    "network.monitor.tier_revivals",
    unit="events",
    help="Dead -> alive transitions (a probed tier answered cleanly)",
)
_ALARM_TRANSITIONS = telemetry.counter(
    "network.monitor.alarm_transitions",
    unit="events",
    help="Tiers newly entering the warning or emergency band",
)
_BACKOFF = telemetry.histogram(
    "network.monitor.backoff_s",
    unit="s",
    help="Simulated backoff delay per bus re-poll",
)
_DEGRADED_ROUNDS = telemetry.counter(
    "network.monitor.degraded_rounds",
    unit="rounds",
    help="Rounds that fell back from fused to per-tier readings",
)
_STALE_SERVED = telemetry.counter(
    "network.monitor.stale_served",
    unit="tier-rounds",
    help="Tier-rounds answered from the last good reading (stale)",
)
_READ_FAILURES = telemetry.counter(
    "network.monitor.read_failures",
    unit="reads",
    help="Tier conversions that raised (e.g. out-of-range) during a poll",
)
_PROBATION_FRAMES = telemetry.counter(
    "network.monitor.probation_frames",
    unit="frames",
    help="Clean frames from quarantined tiers still counting toward revival",
)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the aggregator rides through bus and sensor faults.

    The default policy reproduces the monitor's historical behaviour
    exactly (two retries, quarantine after three consecutive misses,
    revival on the first clean probe), so constructing a
    :class:`StackMonitor` without a policy changes nothing.

    Attributes:
        retry_limit: Bus re-polls per round for parity-failed tiers.
        backoff_base_s: Simulated delay before the first re-poll; real
            aggregator firmware backs off so a noise burst can pass.
        backoff_factor: Multiplier per further re-poll (exponential).
        dead_after: Consecutive missed rounds before quarantine.
        revive_after: Consecutive clean probes a quarantined tier must
            answer before it is trusted again.  1 = historical
            behaviour; higher values damp flapping links.
        max_stale_rounds: How many rounds a missed tier's last good
            reading may still be served as ``stale`` before the tier is
            reported ``lost`` with no temperature at all.

    >>> ResiliencePolicy().retry_limit
    2
    >>> ResiliencePolicy(backoff_base_s=1e-6).backoff_s(attempt=2)
    4e-06
    """

    retry_limit: int = 2
    backoff_base_s: float = 2e-6
    backoff_factor: float = 2.0
    dead_after: int = DEAD_AFTER_CONSECUTIVE_MISSES
    revive_after: int = 1
    max_stale_rounds: int = 5

    def __post_init__(self) -> None:
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        if self.backoff_base_s < 0.0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.dead_after < 1:
            raise ValueError("dead_after must be >= 1")
        if self.revive_after < 1:
            raise ValueError("revive_after must be >= 1")
        if self.max_stale_rounds < 0:
            raise ValueError("max_stale_rounds must be non-negative")

    def backoff_s(self, attempt: int) -> float:
        """Simulated delay before re-poll number ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**attempt


@dataclass
class TierState:
    """Aggregator-side state of one tier.

    Attributes:
        tier: Tier index.
        temperature_c: Last good temperature reading.
        dvtn: Last good NMOS threshold shift, volts.
        dvtp: Last good PMOS threshold-magnitude shift, volts.
        consecutive_misses: Polls in a row with no clean frame (either
            cause); the dead-tier threshold applies to this total.
        consecutive_parity_misses: The corruption share of the streak —
            rounds lost to parity failures that survived every retry.
        consecutive_silent_misses: The silence share of the streak —
            rounds where the tier produced no frame at all.
        alive: False while the tier is quarantined (it is still probed
            and revives after the policy's clean-probe count).
        clean_probes: Consecutive clean probe answers while quarantined;
            reaching ``ResiliencePolicy.revive_after`` revives the tier.
    """

    tier: int
    temperature_c: Optional[float] = None
    dvtn: Optional[float] = None
    dvtp: Optional[float] = None
    consecutive_misses: int = 0
    consecutive_parity_misses: int = 0
    consecutive_silent_misses: int = 0
    alive: bool = True
    clean_probes: int = 0

    def _register_good_frame(self) -> None:
        self.consecutive_misses = 0
        self.consecutive_parity_misses = 0
        self.consecutive_silent_misses = 0


@dataclass(frozen=True)
class MonitorSnapshot:
    """Result of one polling round.

    Attributes:
        temperatures_c: Fresh readings by tier (only tiers that answered).
        hottest_tier: Tier with the highest fresh reading, or None.
        warnings: Tiers at or above the warning threshold.
        emergencies: Tiers at or above the emergency threshold.
        dead_tiers: Tiers currently quarantined.
        retries_used: Bus re-polls needed this round.
        parity_faults: Parity-failed frame receptions this round (across
            all attempts, before retries resolved them).
        revived_tiers: Tiers that came back from the dead this round.
        quality: ``"fused"`` while every polled tier answered fresh this
            round, else ``"degraded"`` — the graceful-degradation flag.
        fused_temperature_c: The fused stack estimate (mean of the fresh
            per-tier readings); ``None`` while degraded, when consumers
            must fall back to :attr:`effective_temperatures_c` and judge
            each tier by its :attr:`tier_quality` flag.
        tier_quality: Per polled tier: ``"fresh"`` (clean frame this
            round), ``"stale"`` (served from the last good reading,
            within the policy's staleness budget) or ``"lost"`` (nothing
            trustworthy to serve).
        effective_temperatures_c: Best-effort reading per tier — fresh
            values plus stale last-known values; ``lost`` tiers absent.
        backoff_s: Total simulated retry backoff spent this round.
    """

    temperatures_c: Dict[int, float]
    hottest_tier: Optional[int]
    warnings: List[int]
    emergencies: List[int]
    dead_tiers: List[int]
    retries_used: int
    parity_faults: int = 0
    revived_tiers: List[int] = field(default_factory=list)
    quality: str = "fused"
    fused_temperature_c: Optional[float] = None
    tier_quality: Dict[int, str] = field(default_factory=dict)
    effective_temperatures_c: Dict[int, float] = field(default_factory=dict)
    backoff_s: float = 0.0


class StackMonitor:
    """Polls a stack of PT sensors over the TSV chain.

    Args:
        sensors: Tier index -> sensor macro.
        bus: The TSV read-out chain (its failure modes apply).
        warning_c: Warning threshold in Celsius.
        emergency_c: Emergency threshold in Celsius.
        retry_limit: Bus re-polls per round for parity-failed tiers
            (back-compat shorthand; ignored when ``policy`` is given).
        rng: Randomness for bus corruption; ``None`` = clean bus.
        policy: The resilience policy (retry budget, backoff shape,
            quarantine/revival thresholds, staleness budget); ``None``
            builds the historical-default policy from ``retry_limit``.
    """

    def __init__(
        self,
        sensors: Dict[int, PTSensor],
        bus: TsvSensorBus,
        warning_c: float = 95.0,
        emergency_c: float = 110.0,
        retry_limit: int = 2,
        rng: Optional[np.random.Generator] = None,
        policy: Optional[ResiliencePolicy] = None,
    ) -> None:
        if warning_c >= emergency_c:
            raise ValueError("warning threshold must sit below emergency")
        if retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        self.sensors = dict(sensors)
        self.bus = bus
        self.warning_c = warning_c
        self.emergency_c = emergency_c
        self.policy = (
            policy if policy is not None else ResiliencePolicy(retry_limit=retry_limit)
        )
        self.retry_limit = self.policy.retry_limit
        self.rng = rng
        self.states: Dict[int, TierState] = {
            tier: TierState(tier=tier) for tier in self.sensors
        }
        self.history: List[MonitorSnapshot] = []
        self._alarmed: Dict[int, str] = {}

    def _sense_tier(
        self, tier: int, temp_c: float, vdd: Optional[float]
    ) -> Optional[int]:
        """One conversion, encoded — or ``None`` when the read fails.

        A sensor driven outside its valid range (thermal runaway, severe
        supply droop) raises instead of publishing garbage; the monitor
        treats that tier exactly like one that went silent — no frame
        this attempt — rather than letting one tier abort the round.
        """
        sensor = self.sensors[tier]
        try:
            reading = sensor.read(temp_c, vdd=vdd)
        except SensorError:
            _READ_FAILURES.inc()
            return None
        return sensor.frame(reading)

    def poll(
        self, true_temps_c: Dict[int, float], vdd: Optional[float] = None
    ) -> MonitorSnapshot:
        """One polling round against the true per-tier temperatures.

        Args:
            true_temps_c: Physical junction temperature at each tier's
                sensor site (from the thermal solver or a test harness).
            vdd: True supply voltage (``None`` = nominal).

        Returns:
            The round's :class:`MonitorSnapshot`; tier states update as a
            side effect.
        """
        # Quarantined tiers are probed too: polling them costs one
        # conversion attempt, and it is the only way a tier can rejoin.
        pending = [tier for tier in self.states if tier in true_temps_c]
        requested = list(pending)
        fresh: Dict[int, float] = {}
        revived: List[int] = []
        retries_used = 0
        parity_faults = 0
        backoff_s = 0.0

        with telemetry.span(
            "network.poll_round", tiers=len(pending), retry_limit=self.retry_limit
        ) as trace:
            attempts = 0
            while pending and attempts <= self.policy.retry_limit:
                polled = set(pending)
                frames = {}
                for tier in pending:
                    word = self._sense_tier(tier, true_temps_c[tier], vdd)
                    if word is not None:
                        frames[tier] = word
                with telemetry.span(
                    "network.bus_collect", attempt=attempts, tiers=len(frames)
                ) as bus_trace:
                    report = self.bus.collect(frames, rng=self.rng)
                    bus_trace.set(
                        delivered=len(report.frames),
                        parity_errors=len(report.parity_errors),
                        missing=len(report.missing),
                    )
                parity_faults += len(report.parity_errors)
                for tier, frame in report.frames.items():
                    if self._register_clean_frame(tier, frame):
                        revived.append(tier)
                    if self.states[tier].alive:
                        fresh[tier] = frame.temperature_c
                # Parity-failed tiers get re-polled; missing tiers do not (a
                # stuck tier will not answer a retry either).  The bus reports
                # every chain position absent from the shift-in as missing, so
                # only tiers we actually polled this round count.
                for tier in report.missing:
                    if tier in polled:
                        self._register_miss(tier, silent=True)
                pending = list(report.parity_errors)
                # Count the backoff/retry only when the budget actually
                # allows another attempt; failures that merely exhaust it
                # fall through to the miss accounting below.
                if pending and attempts < self.policy.retry_limit:
                    # Exponential backoff before the re-poll: a coupling
                    # burst on the chain is time-correlated, so waiting
                    # beats hammering.  Time is simulated (accounted, not
                    # slept) — the monitor is a model, not firmware.
                    delay = self.policy.backoff_s(attempts)
                    backoff_s += delay
                    _BACKOFF.observe(delay)
                    retries_used += 1
                    _RETRIES.inc()
                attempts += 1
            for tier in pending:  # parity failures that survived all retries
                self._register_miss(tier, silent=False)

            warnings = sorted(
                t
                for t, temp in fresh.items()
                if self.warning_c <= temp < self.emergency_c
            )
            emergencies = sorted(
                t for t, temp in fresh.items() if temp >= self.emergency_c
            )
            self._track_alarm_transitions(warnings, emergencies)
            tier_quality, effective = self._degradation_view(requested, fresh)
            quality = (
                "fused"
                if tier_quality and all(q == "fresh" for q in tier_quality.values())
                else "degraded"
            )
            if quality == "degraded":
                _DEGRADED_ROUNDS.inc()
            snapshot = MonitorSnapshot(
                temperatures_c=fresh,
                hottest_tier=max(fresh, key=fresh.get) if fresh else None,
                warnings=warnings,
                emergencies=emergencies,
                dead_tiers=sorted(t for t, s in self.states.items() if not s.alive),
                retries_used=retries_used,
                parity_faults=parity_faults,
                revived_tiers=sorted(revived),
                quality=quality,
                fused_temperature_c=(
                    sum(fresh.values()) / len(fresh)
                    if quality == "fused" and fresh
                    else None
                ),
                tier_quality=tier_quality,
                effective_temperatures_c=effective,
                backoff_s=backoff_s,
            )
            _POLLS.inc()
            trace.set(
                fresh=len(fresh),
                retries_used=retries_used,
                parity_faults=parity_faults,
                dead_tiers=len(snapshot.dead_tiers),
                revived=len(revived),
                quality=quality,
            )
        self.history.append(snapshot)
        injector = active_injector()
        if injector is not None:
            # One poll = one fault-clock round; advancing here keeps fault
            # onset/duration windows aligned with polling rounds for any
            # caller, with no experiment-side bookkeeping.
            injector.advance()
        return snapshot

    def _register_clean_frame(self, tier: int, frame) -> bool:
        """Fold one clean frame into tier state; True on revival.

        A quarantined tier must answer ``policy.revive_after``
        consecutive clean probes before it is trusted again; probation
        answers update the stored reading (it is genuine data) but the
        tier stays quarantined — and excluded from the fresh set —
        until the streak completes.
        """
        state = self.states[tier]
        revived = False
        if not state.alive:
            state.clean_probes += 1
            if state.clean_probes >= self.policy.revive_after:
                state.alive = True
                revived = True
                _TIER_REVIVALS.inc()
            else:
                _PROBATION_FRAMES.inc()
        state.temperature_c = frame.temperature_c
        state.dvtn = frame.dvtn
        state.dvtp = frame.dvtp
        state._register_good_frame()
        if state.alive:
            state.clean_probes = 0
        return revived

    def _register_miss(self, tier: int, silent: bool) -> None:
        state = self.states[tier]
        state.consecutive_misses += 1
        state.clean_probes = 0  # a miss breaks a quarantine probation streak
        if silent:
            state.consecutive_silent_misses += 1
            _SILENT_MISSES.inc()
        else:
            state.consecutive_parity_misses += 1
            _PARITY_MISSES.inc()
        if state.alive and state.consecutive_misses >= self.policy.dead_after:
            state.alive = False
            _DEAD_TIER_EVENTS.inc()

    def _degradation_view(self, requested, fresh):
        """Quality flag and best-effort reading per polled tier.

        ``fresh`` beats ``stale`` beats ``lost``: a tier that missed
        this round is served from its last good reading for up to
        ``policy.max_stale_rounds`` rounds, with the flag making the
        substitution explicit; past the budget (or with no good reading
        stored) the tier is ``lost`` and reports nothing.
        """
        tier_quality: Dict[int, str] = {}
        effective: Dict[int, float] = {}
        for tier in requested:
            state = self.states[tier]
            if tier in fresh:
                tier_quality[tier] = "fresh"
                effective[tier] = fresh[tier]
            elif (
                state.temperature_c is not None
                and 0 < state.consecutive_misses <= self.policy.max_stale_rounds
            ):
                tier_quality[tier] = "stale"
                effective[tier] = state.temperature_c
                _STALE_SERVED.inc()
            else:
                tier_quality[tier] = "lost"
        return tier_quality, effective

    def _track_alarm_transitions(
        self, warnings: List[int], emergencies: List[int]
    ) -> None:
        """Count tiers whose alarm band changed upward or sideways."""
        current = {tier: "warning" for tier in warnings}
        current.update({tier: "emergency" for tier in emergencies})
        for tier, band in current.items():
            if self._alarmed.get(tier) != band:
                _ALARM_TRANSITIONS.inc()
        self._alarmed = current

    def process_map(self) -> Dict[int, tuple]:
        """Last known (dV_tn, dV_tp) per tier — the stack's process map."""
        return {
            tier: (state.dvtn, state.dvtp)
            for tier, state in self.states.items()
            if state.dvtn is not None
        }
