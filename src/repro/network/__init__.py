"""Stack-level sensor-network management.

The paper delivers one sensor macro; a deployed 3-D stack runs one per
tier and needs the layer above: an aggregator that polls tiers over the
TSV chain and survives failures (``aggregator``), a dynamic thermal
management policy that acts on the readings (``dtm``), and a sampling
scheduler that spends conversion energy where the thermal action is
(``scheduler``).  All three are reconstruction extensions (flagged in
DESIGN.md) built strictly on the reproduced sensor.
"""

from repro.network.aggregator import MonitorSnapshot, StackMonitor, TierState
from repro.network.consensus import ConsensusReport, check_consensus
from repro.network.dtm import DtmPolicy, DtmTrace, run_closed_loop
from repro.network.fusion import TemperatureKalman, filter_trace
from repro.network.placement import (
    PlacementResult,
    candidate_grid,
    greedy_placement,
    observer_error,
    reconstruction_error,
)
from repro.network.scheduler import AdaptiveSampler

__all__ = [
    "AdaptiveSampler",
    "ConsensusReport",
    "DtmPolicy",
    "DtmTrace",
    "MonitorSnapshot",
    "PlacementResult",
    "StackMonitor",
    "TemperatureKalman",
    "TierState",
    "candidate_grid",
    "check_consensus",
    "filter_trace",
    "greedy_placement",
    "observer_error",
    "reconstruction_error",
    "run_closed_loop",
]
