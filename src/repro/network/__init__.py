"""Stack-level sensor-network management.

The paper delivers one sensor macro; a deployed 3-D stack runs one per
tier and needs the layer above: an aggregator that polls tiers over the
TSV chain and survives failures (``aggregator``), a dynamic thermal
management policy that acts on the readings (``dtm``), and a sampling
scheduler that spends conversion energy where the thermal action is
(``scheduler``).  All three are reconstruction extensions (flagged in
DESIGN.md) built strictly on the reproduced sensor.
"""

from repro.network.aggregator import MonitorSnapshot, StackMonitor, TierState
from repro.network.consensus import ConsensusReport, check_consensus
from repro.network.dtm import (
    DTM_ACTIONS,
    RELEASE,
    THROTTLE,
    DtmPolicy,
    DtmTrace,
    apply_action,
    decide,
    run_closed_loop,
)
from repro.network.fusion import TemperatureKalman, filter_trace
from repro.network.placement import (
    PlacementResult,
    candidate_grid,
    greedy_placement,
    observer_error,
    observer_error_scalar,
    probe_points,
    reconstruction_error,
    reconstruction_error_scalar,
    sample_field,
)
from repro.network.scheduler import AdaptiveSampler

__all__ = [
    "AdaptiveSampler",
    "ConsensusReport",
    "DTM_ACTIONS",
    "DtmPolicy",
    "DtmTrace",
    "MonitorSnapshot",
    "PlacementResult",
    "RELEASE",
    "StackMonitor",
    "THROTTLE",
    "TemperatureKalman",
    "TierState",
    "apply_action",
    "candidate_grid",
    "check_consensus",
    "decide",
    "filter_trace",
    "greedy_placement",
    "observer_error",
    "observer_error_scalar",
    "probe_points",
    "reconstruction_error",
    "reconstruction_error_scalar",
    "run_closed_loop",
    "sample_field",
]
