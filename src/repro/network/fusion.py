"""Temperature-tracking fusion: a Kalman filter on the sensor stream.

A single conversion's random error (counter phase, jitter) is white between
conversions while the junction temperature moves smoothly on thermal time
constants — textbook Kalman territory.  The filter here is the deployable
minimum: a scalar random-walk state per site,

    predict:  T_k|k-1 = T_k-1,     P += Q     (Q from the expected slew)
    update:   K = P / (P + R),     T += K (z - T),   P *= (1 - K)

with the measurement variance R taken from the sensor's characterised
random error and the process variance Q from the control period times the
worst expected slew.  The filter's job is *noise* suppression; it cannot
remove the per-die systematic error (R-E6's floor), and the experiment
machinery keeps the two separated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TemperatureKalman:
    """Scalar random-walk Kalman filter for one sensor site.

    Attributes:
        measurement_sigma_c: Random error sigma of one conversion, degC.
        slew_limit_c_per_s: Worst expected temperature slew; together with
            the sample interval this sets the process noise.
        state_c: Current temperature estimate (``None`` until the first
            update).
    """

    measurement_sigma_c: float = 0.12
    slew_limit_c_per_s: float = 200.0
    state_c: Optional[float] = None
    _variance: float = field(default=0.0, repr=False)
    _last_time_s: Optional[float] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.measurement_sigma_c <= 0.0:
            raise ValueError("measurement_sigma_c must be positive")
        if self.slew_limit_c_per_s <= 0.0:
            raise ValueError("slew_limit_c_per_s must be positive")

    def update(self, time_s: float, measurement_c: float) -> float:
        """Fuse one reading; returns the filtered temperature estimate."""
        r = self.measurement_sigma_c**2
        if self.state_c is None:
            self.state_c = measurement_c
            self._variance = r
            self._last_time_s = time_s
            return self.state_c
        if time_s <= self._last_time_s:
            raise ValueError("readings must arrive in increasing time order")

        dt = time_s - self._last_time_s
        q = (self.slew_limit_c_per_s * dt) ** 2
        self._variance += q

        gain = self._variance / (self._variance + r)
        self.state_c += gain * (measurement_c - self.state_c)
        self._variance *= 1.0 - gain
        self._last_time_s = time_s
        return self.state_c

    @property
    def sigma_c(self) -> float:
        """Current estimate's standard deviation in degC."""
        return self._variance**0.5

    def reset(self) -> None:
        """Forget the track (e.g. after a power-state discontinuity)."""
        self.state_c = None
        self._variance = 0.0
        self._last_time_s = None


def filter_trace(
    times_s: List[float],
    readings_c: List[float],
    measurement_sigma_c: float = 0.12,
    slew_limit_c_per_s: float = 200.0,
) -> List[float]:
    """Convenience: run one filter over a whole reading trace."""
    if len(times_s) != len(readings_c):
        raise ValueError("times and readings must have equal length")
    kalman = TemperatureKalman(
        measurement_sigma_c=measurement_sigma_c,
        slew_limit_c_per_s=slew_limit_c_per_s,
    )
    return [kalman.update(t, z) for t, z in zip(times_s, readings_c)]
