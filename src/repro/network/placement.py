"""Sensor placement: where on the die the PT-sensor macros should sit.

A tier gets a handful of sensor macros, not a grid of them; the monitoring
error then has two parts — the sensor's own accuracy (the paper's
±1.5 degC) and the *spatial* error of reconstructing the die's temperature
field from k point samples.  Placement determines the second part.

This module implements the standard greedy worst-case-coverage approach:

1. solve the thermal field for a set of representative workloads;
2. reconstruct each field from candidate sensor subsets by
   nearest-sensor-with-gradient-weighting interpolation;
3. greedily add the site that most reduces the worst reconstruction error
   across all workloads.

Greedy placement is within (1 - 1/e) of optimal for this class of
coverage objective, and in practice lands within tenths of a degree of
exhaustive search for the k <= 6 budgets a tier can afford.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.thermal.grid import TemperatureField

Site = Tuple[float, float]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement optimisation.

    Attributes:
        sites: Chosen sensor locations in metres, in selection order.
        worst_error_c: Worst-case reconstruction error over all workloads
            with the chosen sites, kelvin == Celsius (it is a difference).
        error_trace: Worst error after each greedy addition (shows the
            diminishing returns that justify a small k).
    """

    sites: List[Site]
    worst_error_c: float
    error_trace: List[float]


def _field_samples(field: TemperatureField, layer: str, sites: Sequence[Site]) -> np.ndarray:
    return np.array([field.at(layer, x, y) for x, y in sites])


def reconstruction_error(
    field: TemperatureField,
    layer: str,
    sites: Sequence[Site],
    probe_grid: int = 12,
) -> float:
    """Worst absolute error reconstructing ``field`` from ``sites``.

    Reconstruction is nearest-sensor (Voronoi) assignment — each die
    location is attributed its closest sensor's reading, the scheme a
    lightweight on-die monitor actually runs.  It also makes placement
    well-behaved: adding a sensor only refines the cells around it, so the
    worst error is non-increasing in the sensor budget.  Error is probed on
    a uniform grid over the layer.
    """
    if not sites:
        raise ValueError("need at least one sensor site")
    samples = _field_samples(field, layer, sites)
    xs = np.linspace(0.0, field.grid.width, probe_grid)
    ys = np.linspace(0.0, field.grid.height, probe_grid)
    worst = 0.0
    site_arr = np.asarray(sites)
    for y in ys:
        for x in xs:
            truth = field.at(layer, float(x), float(y))
            d2 = (site_arr[:, 0] - x) ** 2 + (site_arr[:, 1] - y) ** 2
            estimate = samples[int(np.argmin(d2))]
            worst = max(worst, abs(estimate - truth))
    return worst


def observer_error(
    field: TemperatureField,
    layer: str,
    sites: Sequence[Site],
    basis_fields: Sequence[TemperatureField],
    probe_grid: int = 12,
    ridge: float = 1e-3,
) -> float:
    """Worst error of a model-based observer reconstructing ``field``.

    The observer knows the *shapes* of the design-time workload fields
    (``basis_fields``, from the thermal sign-off runs) and models the live
    field as a linear combination of them — valid because the thermal
    system is linear in power.  The combination weights are least-squares
    fitted to the sensor readings, then the full field is synthesised.

    This is the cheap end of thermal-observer practice (no Kalman update,
    no model reduction) and shows what placement must really provide:
    sensor sites that make the basis responses *distinguishable* (a
    well-conditioned sensing matrix), not merely spread out.

    Args:
        field: The live field to reconstruct.
        layer: Observed layer.
        sites: Sensor sites.
        basis_fields: Design-time workload fields spanning the model.
        probe_grid: Error-probe resolution per axis.
        ridge: Relative Tikhonov damping on the weight solve (scaled by
            the sensing matrix's mean diagonal).  Keeps the weights bounded
            when an out-of-span field would otherwise be chased with huge
            basis coefficients.

    Returns:
        Worst absolute reconstruction error over the probe grid, kelvin.
    """
    if not sites:
        raise ValueError("need at least one sensor site")
    if not basis_fields:
        raise ValueError("need at least one basis field")
    ambient = field.grid.ambient_k
    sensing = np.array(
        [
            [basis.at(layer, x, y) - ambient for basis in basis_fields]
            for x, y in sites
        ]
    )
    readings = _field_samples(field, layer, sites) - ambient
    gram = sensing.T @ sensing
    damping = ridge * float(np.trace(gram)) / len(basis_fields)
    gram = gram + damping * np.eye(len(basis_fields))
    weights = np.linalg.solve(gram, sensing.T @ readings)

    xs = np.linspace(0.0, field.grid.width, probe_grid)
    ys = np.linspace(0.0, field.grid.height, probe_grid)
    worst = 0.0
    for y in ys:
        for x in xs:
            truth = field.at(layer, float(x), float(y))
            estimate = ambient + float(
                np.dot(
                    weights,
                    [basis.at(layer, float(x), float(y)) - ambient for basis in basis_fields],
                )
            )
            worst = max(worst, abs(estimate - truth))
    return worst


def candidate_grid(width: float, height: float, per_axis: int = 5, margin: float = 0.1) -> List[Site]:
    """A uniform grid of candidate sensor sites with an edge margin."""
    if per_axis < 2:
        raise ValueError("need at least a 2x2 candidate grid")
    xs = np.linspace(margin * width, (1.0 - margin) * width, per_axis)
    ys = np.linspace(margin * height, (1.0 - margin) * height, per_axis)
    return [(float(x), float(y)) for y in ys for x in xs]


def greedy_placement(
    fields: Sequence[TemperatureField],
    layer: str,
    candidates: Sequence[Site],
    sensor_budget: int,
    probe_grid: int = 12,
) -> PlacementResult:
    """Greedily choose ``sensor_budget`` sites minimising worst-case error.

    Args:
        fields: Representative workload temperature fields (the training
            set; generalisation is the caller's test responsibility).
        layer: Layer name the sensors live in.
        candidates: Allowed sensor sites (keep-out-zone filtered upstream).
        sensor_budget: Number of sensors to place.
        probe_grid: Reconstruction-error probe resolution per axis.

    Returns:
        The greedy :class:`PlacementResult`.
    """
    if sensor_budget < 1:
        raise ValueError("sensor_budget must be >= 1")
    if sensor_budget > len(candidates):
        raise ValueError("sensor_budget exceeds the candidate count")
    if not fields:
        raise ValueError("need at least one workload field")

    chosen: List[Site] = []
    remaining = list(candidates)
    trace: List[float] = []
    worst = float("inf")
    for _ in range(sensor_budget):
        best_site = None
        best_error = float("inf")
        for site in remaining:
            trial = chosen + [site]
            error = max(
                reconstruction_error(field, layer, trial, probe_grid)
                for field in fields
            )
            if error < best_error:
                best_error = error
                best_site = site
        chosen.append(best_site)
        remaining.remove(best_site)
        worst = best_error
        trace.append(worst)
    return PlacementResult(sites=chosen, worst_error_c=worst, error_trace=trace)
