"""Sensor placement: where on the die the PT-sensor macros should sit.

A tier gets a handful of sensor macros, not a grid of them; the monitoring
error then has two parts — the sensor's own accuracy (the paper's
±1.5 degC) and the *spatial* error of reconstructing the die's temperature
field from k point samples.  Placement determines the second part.

This module implements the standard greedy worst-case-coverage approach:

1. solve the thermal field for a set of representative workloads;
2. reconstruct each field from candidate sensor subsets by
   nearest-sensor-with-gradient-weighting interpolation;
3. greedily add the site that most reduces the worst reconstruction error
   across all workloads.

Greedy placement is within (1 - 1/e) of optimal for this class of
coverage objective, and in practice lands within tenths of a degree of
exhaustive search for the k <= 6 budgets a tier can afford.

Two implementations coexist.  The *scalar* path
(:func:`reconstruction_error_scalar`, :func:`observer_error_scalar`) is
the original definition — one :meth:`TemperatureField.at` call per probe
point — and stays as the golden reference.  The public functions run the
*vectorized* fast path: the probe grid and every candidate site are
sampled in one bilinear gather off the layer array
(:func:`sample_field`), so the error of a whole placement is a handful of
numpy reductions.  The fast path reproduces the scalar math operation for
operation, so results agree bit-for-bit (the parity test pins this); the
batch engine in :mod:`repro.dtm.engine` builds on the same primitives to
score millions of placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.thermal.grid import TemperatureField

Site = Tuple[float, float]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement optimisation.

    Attributes:
        sites: Chosen sensor locations in metres, in selection order.
        worst_error_c: Worst-case reconstruction error over all workloads
            with the chosen sites, kelvin == Celsius (it is a difference).
        error_trace: Worst error after each greedy addition (shows the
            diminishing returns that justify a small k).
    """

    sites: List[Site]
    worst_error_c: float
    error_trace: List[float]


# ------------------------------------------------------------ sampling

def sample_field(
    field: TemperatureField, layer: str, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Bilinear temperature samples at many points in one gather.

    The vectorized twin of :meth:`TemperatureField.at`: identical
    clipping, index truncation and lerp ordering, applied to whole
    coordinate arrays — so each element matches the scalar call bit for
    bit.
    """
    plane = field.layer(layer)
    ny, nx = plane.shape
    fx = np.clip(np.asarray(xs, dtype=float) / field.grid.width, 0.0, 1.0) * (nx - 1)
    fy = np.clip(np.asarray(ys, dtype=float) / field.grid.height, 0.0, 1.0) * (ny - 1)
    ix0 = fx.astype(np.intp)
    iy0 = fy.astype(np.intp)
    ix1 = np.minimum(ix0 + 1, nx - 1)
    iy1 = np.minimum(iy0 + 1, ny - 1)
    tx = fx - ix0
    ty = fy - iy0
    top = (1 - tx) * plane[iy0, ix0] + tx * plane[iy0, ix1]
    bottom = (1 - tx) * plane[iy1, ix0] + tx * plane[iy1, ix1]
    return (1 - ty) * top + ty * bottom


def probe_points(
    field: TemperatureField, probe_grid: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The uniform error-probe lattice as flat (xs, ys) arrays.

    Row-major in y then x — the same visit order as the scalar loops, so
    per-probe arrays line up with the reference implementation.
    """
    xs = np.linspace(0.0, field.grid.width, probe_grid)
    ys = np.linspace(0.0, field.grid.height, probe_grid)
    gx, gy = np.meshgrid(xs, ys)
    return gx.ravel(), gy.ravel()


def _site_arrays(sites: Sequence[Site]) -> Tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(sites, dtype=float).reshape(len(sites), 2)
    return arr[:, 0], arr[:, 1]


def _field_samples(field: TemperatureField, layer: str, sites: Sequence[Site]) -> np.ndarray:
    return np.array([field.at(layer, x, y) for x, y in sites])


# ------------------------------------------------- reconstruction error

def reconstruction_error_scalar(
    field: TemperatureField,
    layer: str,
    sites: Sequence[Site],
    probe_grid: int = 12,
) -> float:
    """The original point-at-a-time reconstruction error (golden path)."""
    if not sites:
        raise ValueError("need at least one sensor site")
    samples = _field_samples(field, layer, sites)
    xs = np.linspace(0.0, field.grid.width, probe_grid)
    ys = np.linspace(0.0, field.grid.height, probe_grid)
    worst = 0.0
    site_arr = np.asarray(sites)
    for y in ys:
        for x in xs:
            truth = field.at(layer, float(x), float(y))
            d2 = (site_arr[:, 0] - x) ** 2 + (site_arr[:, 1] - y) ** 2
            estimate = samples[int(np.argmin(d2))]
            worst = max(worst, abs(estimate - truth))
    return worst


def reconstruction_error(
    field: TemperatureField,
    layer: str,
    sites: Sequence[Site],
    probe_grid: int = 12,
) -> float:
    """Worst absolute error reconstructing ``field`` from ``sites``.

    Reconstruction is nearest-sensor (Voronoi) assignment — each die
    location is attributed its closest sensor's reading, the scheme a
    lightweight on-die monitor actually runs.  It also makes placement
    well-behaved: adding a sensor only refines the cells around it, so the
    worst error is non-increasing in the sensor budget.  Error is probed on
    a uniform grid over the layer.

    Vectorized: all probe points and all site samples are gathered in
    one shot, bit-identical to :func:`reconstruction_error_scalar`.
    """
    if not sites:
        raise ValueError("need at least one sensor site")
    sx, sy = _site_arrays(sites)
    px, py = probe_points(field, probe_grid)
    samples = sample_field(field, layer, sx, sy)
    truth = sample_field(field, layer, px, py)
    d2 = (sx[None, :] - px[:, None]) ** 2 + (sy[None, :] - py[:, None]) ** 2
    nearest = np.argmin(d2, axis=1)
    return float(np.max(np.abs(samples[nearest] - truth), initial=0.0))


def observer_error_scalar(
    field: TemperatureField,
    layer: str,
    sites: Sequence[Site],
    basis_fields: Sequence[TemperatureField],
    probe_grid: int = 12,
    ridge: float = 1e-3,
) -> float:
    """The original point-at-a-time observer error (golden path)."""
    if not sites:
        raise ValueError("need at least one sensor site")
    if not basis_fields:
        raise ValueError("need at least one basis field")
    ambient = field.grid.ambient_k
    sensing = np.array(
        [
            [basis.at(layer, x, y) - ambient for basis in basis_fields]
            for x, y in sites
        ]
    )
    readings = _field_samples(field, layer, sites) - ambient
    gram = sensing.T @ sensing
    damping = ridge * float(np.trace(gram)) / len(basis_fields)
    gram = gram + damping * np.eye(len(basis_fields))
    weights = np.linalg.solve(gram, sensing.T @ readings)

    xs = np.linspace(0.0, field.grid.width, probe_grid)
    ys = np.linspace(0.0, field.grid.height, probe_grid)
    worst = 0.0
    for y in ys:
        for x in xs:
            truth = field.at(layer, float(x), float(y))
            estimate = ambient + float(
                np.dot(
                    weights,
                    [basis.at(layer, float(x), float(y)) - ambient for basis in basis_fields],
                )
            )
            worst = max(worst, abs(estimate - truth))
    return worst


def observer_error(
    field: TemperatureField,
    layer: str,
    sites: Sequence[Site],
    basis_fields: Sequence[TemperatureField],
    probe_grid: int = 12,
    ridge: float = 1e-3,
) -> float:
    """Worst error of a model-based observer reconstructing ``field``.

    The observer knows the *shapes* of the design-time workload fields
    (``basis_fields``, from the thermal sign-off runs) and models the live
    field as a linear combination of them — valid because the thermal
    system is linear in power.  The combination weights are least-squares
    fitted to the sensor readings, then the full field is synthesised.

    This is the cheap end of thermal-observer practice (no Kalman update,
    no model reduction) and shows what placement must really provide:
    sensor sites that make the basis responses *distinguishable* (a
    well-conditioned sensing matrix), not merely spread out.

    Vectorized fast path of :func:`observer_error_scalar` (same math;
    the matrix products may differ from the scalar loop only by BLAS
    reduction order, i.e. last-ulp float noise).

    Args:
        field: The live field to reconstruct.
        layer: Observed layer.
        sites: Sensor sites.
        basis_fields: Design-time workload fields spanning the model.
        probe_grid: Error-probe resolution per axis.
        ridge: Relative Tikhonov damping on the weight solve (scaled by
            the sensing matrix's mean diagonal).  Keeps the weights bounded
            when an out-of-span field would otherwise be chased with huge
            basis coefficients.

    Returns:
        Worst absolute reconstruction error over the probe grid, kelvin.
    """
    if not sites:
        raise ValueError("need at least one sensor site")
    if not basis_fields:
        raise ValueError("need at least one basis field")
    ambient = field.grid.ambient_k
    sx, sy = _site_arrays(sites)
    sensing = (
        np.stack(
            [sample_field(basis, layer, sx, sy) for basis in basis_fields], axis=1
        )
        - ambient
    )
    readings = sample_field(field, layer, sx, sy) - ambient
    gram = sensing.T @ sensing
    damping = ridge * float(np.trace(gram)) / len(basis_fields)
    gram = gram + damping * np.eye(len(basis_fields))
    weights = np.linalg.solve(gram, sensing.T @ readings)

    px, py = probe_points(field, probe_grid)
    truth = sample_field(field, layer, px, py)
    basis_probe = (
        np.stack(
            [sample_field(basis, layer, px, py) for basis in basis_fields], axis=0
        )
        - ambient
    )
    estimate = ambient + weights @ basis_probe
    return float(np.max(np.abs(estimate - truth), initial=0.0))


def candidate_grid(width: float, height: float, per_axis: int = 5, margin: float = 0.1) -> List[Site]:
    """A uniform grid of candidate sensor sites with an edge margin."""
    if per_axis < 2:
        raise ValueError("need at least a 2x2 candidate grid")
    xs = np.linspace(margin * width, (1.0 - margin) * width, per_axis)
    ys = np.linspace(margin * height, (1.0 - margin) * height, per_axis)
    return [(float(x), float(y)) for y in ys for x in xs]


def greedy_placement(
    fields: Sequence[TemperatureField],
    layer: str,
    candidates: Sequence[Site],
    sensor_budget: int,
    probe_grid: int = 12,
) -> PlacementResult:
    """Greedily choose ``sensor_budget`` sites minimising worst-case error.

    Runs the vectorized incremental greedy: the per-probe
    nearest-chosen-site state is maintained as arrays, so evaluating
    every remaining candidate for the next slot is one masked reduction
    instead of a fresh scalar error sweep per candidate.  Site choices
    and the error trace match the original
    per-:func:`reconstruction_error_scalar` greedy exactly (ties break
    to the earliest candidate in both).

    Args:
        fields: Representative workload temperature fields (the training
            set; generalisation is the caller's test responsibility).
        layer: Layer name the sensors live in.
        candidates: Allowed sensor sites (keep-out-zone filtered upstream).
        sensor_budget: Number of sensors to place.
        probe_grid: Reconstruction-error probe resolution per axis.

    Returns:
        The greedy :class:`PlacementResult`.
    """
    if sensor_budget < 1:
        raise ValueError("sensor_budget must be >= 1")
    if sensor_budget > len(candidates):
        raise ValueError("sensor_budget exceeds the candidate count")
    if not fields:
        raise ValueError("need at least one workload field")

    cx, cy = _site_arrays(candidates)
    px, py = probe_points(fields[0], probe_grid)
    # S: per-field candidate samples (n_fields, n_candidates); T: truths
    # (n_fields, n_probes); D2: candidate-to-probe squared distances.
    samples = np.stack([sample_field(f, layer, cx, cy) for f in fields], axis=0)
    truth = np.stack([sample_field(f, layer, px, py) for f in fields], axis=0)
    d2 = (cx[:, None] - px[None, :]) ** 2 + (cy[:, None] - py[None, :]) ** 2
    # |candidate reading - truth| for every (field, candidate, probe):
    # the error a probe would take if this candidate became its nearest.
    cand_err = np.abs(samples[:, :, None] - truth[:, None, :])

    n_candidates = len(candidates)
    chosen_idx: List[int] = []
    trace: List[float] = []
    best_d2 = np.full(px.shape, np.inf)
    best_site = np.zeros(px.shape, dtype=np.intp)
    taken = np.zeros(n_candidates, dtype=bool)
    worst = float("inf")
    for _ in range(sensor_budget):
        if chosen_idx:
            cur_err = np.abs(samples[:, best_site] - truth)
        else:
            cur_err = np.full(truth.shape, np.inf)
        closer = d2 < best_d2[None, :]
        trial_err = np.where(closer[None, :, :], cand_err, cur_err[:, None, :])
        scores = trial_err.max(axis=(0, 2))
        scores[taken] = np.inf
        pick = int(np.argmin(scores))
        worst = float(scores[pick])
        chosen_idx.append(pick)
        taken[pick] = True
        trace.append(worst)
        improved = d2[pick] < best_d2
        best_d2 = np.where(improved, d2[pick], best_d2)
        best_site = np.where(improved, pick, best_site)

    chosen = [(float(cx[i]), float(cy[i])) for i in chosen_idx]
    return PlacementResult(sites=chosen, worst_error_c=worst, error_trace=trace)
