"""Cross-sensor consensus: catching the sensor that lies plausibly.

BIST (:mod:`repro.readout.selftest`) catches structural faults — dead
rings, stuck counters.  It cannot catch a sensor that is *plausibly
wrong*: in-window, repeatable, but biased (a cracked TSV changed its local
stress, a latent defect shifted a sensing device).  The network layer can:
neighbouring sensors sample a smooth temperature field, so a reading that
deviates from the value its neighbours imply — by more than the field's
physical roughness plus the sensor accuracy class — is suspect.

The detector uses median-based robust statistics (a faulty sensor must not
poison its own consensus) and distance-weighted neighbour prediction, and
flags rather than drops: policy about suspects belongs to the operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

Site = Tuple[float, float]

# Scale factor turning the median absolute deviation into a robust sigma.
_MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class ConsensusReport:
    """Outcome of one consensus check over co-located sensors.

    Attributes:
        suspects: Sensor indices whose readings deviate beyond the
            threshold from their neighbour-implied value.
        residuals_c: Per-sensor residual (reading minus neighbour
            prediction), degC.
        threshold_c: The deviation threshold actually applied.
    """

    suspects: List[int]
    residuals_c: Dict[int, float]
    threshold_c: float

    @property
    def healthy(self) -> bool:
        return not self.suspects


def neighbour_prediction(
    sites: Sequence[Site], readings_c: Sequence[float], index: int
) -> float:
    """Robust prediction of one sensor from all the others.

    The prediction is the **median** of the other sensors' readings, not a
    distance-weighted mean: a weighted mean lets a single large-bias liar
    contaminate every neighbour's prediction (and thereby hide behind the
    inflated residuals it causes), while the median tolerates any single
    fault among >= 3 neighbours.  The price — ignoring the spatial
    gradient between sites — is carried by the ``field_roughness_c`` floor
    of :func:`check_consensus`.
    """
    if len(sites) != len(readings_c):
        raise ValueError("sites and readings must have equal length")
    if len(sites) < 3:
        raise ValueError("consensus needs at least three sensors")
    if not 0 <= index < len(sites):
        raise ValueError("index out of range")
    others = [value for j, value in enumerate(readings_c) if j != index]
    return float(np.median(others))


def check_consensus(
    sites: Sequence[Site],
    readings_c: Sequence[float],
    sensor_accuracy_c: float = 1.5,
    field_roughness_c: float = 2.0,
    mad_multiplier: float = 4.0,
) -> ConsensusReport:
    """Flag sensors inconsistent with their neighbours.

    The threshold is the larger of (a) a physical floor — sensor accuracy
    plus expected field roughness between sites — and (b) a robust
    statistical bound (``mad_multiplier`` robust sigmas of the residual
    population), so neither a quiet die nor a steep gradient produces
    false alarms.

    Args:
        sites: Sensor locations (metres).
        readings_c: Their simultaneous readings, degC.
        sensor_accuracy_c: The sensor's accuracy class.
        field_roughness_c: Expected |T difference| between a sensor and
            its neighbour-implied value on a healthy die (workload
            dependent; derive from the thermal sign-off runs).
        mad_multiplier: Robust-sigma multiplier for the statistical bound.

    Returns:
        The :class:`ConsensusReport`.
    """
    if sensor_accuracy_c <= 0.0 or field_roughness_c < 0.0:
        raise ValueError("accuracy must be positive and roughness non-negative")
    residuals = {
        i: float(readings_c[i] - neighbour_prediction(sites, readings_c, i))
        for i in range(len(sites))
    }
    values = np.asarray(list(residuals.values()))
    mad = float(np.median(np.abs(values - np.median(values))))
    robust_sigma = _MAD_TO_SIGMA * mad
    threshold = max(
        sensor_accuracy_c + field_roughness_c, mad_multiplier * robust_sigma
    )
    suspects = sorted(
        index for index, residual in residuals.items() if abs(residual) > threshold
    )
    return ConsensusReport(
        suspects=suspects, residuals_c=residuals, threshold_c=threshold
    )
