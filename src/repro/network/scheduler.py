"""Adaptive sampling: spend conversion energy where the thermal action is.

A monitoring network sampling every tier at the rate the worst transient
demands wastes energy during thermal quiet.  The adaptive sampler sets the
next sampling interval from the observed temperature slew:

    interval = clamp(resolution_margin / |dT/dt|, min_interval, max_interval)

so a tier heating at 1 degC/ms is sampled every few hundred microseconds
while an idle tier is sampled at the floor rate.  Combined with the
tracking mode (fast TSRO-only reads), this is how the 367.5 pJ conversion
turns into a microwatt-class monitoring budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class AdaptiveSampler:
    """Per-tier sampling-interval controller.

    Attributes:
        resolution_margin_c: Temperature change per interval the scheduler
            is willing to miss (tie this to the sensor's accuracy class —
            sampling finer than +/-1.5 degC accuracy buys nothing).
        min_interval_s: Fastest allowed sampling (bounded by conversion
            time).
        max_interval_s: Idle-rate floor (liveness: every tier is observed
            at least this often).
    """

    resolution_margin_c: float = 1.0
    min_interval_s: float = 100e-6
    max_interval_s: float = 100e-3

    def __post_init__(self) -> None:
        if self.resolution_margin_c <= 0.0:
            raise ValueError("resolution_margin_c must be positive")
        if not 0.0 < self.min_interval_s < self.max_interval_s:
            raise ValueError("need 0 < min_interval_s < max_interval_s")
        self._last_temp_c: Optional[float] = None
        self._last_time_s: Optional[float] = None

    def next_interval(self, time_s: float, temperature_c: float) -> float:
        """Record a sample and return the interval until the next one.

        The first sample always returns ``min_interval_s`` (no slew
        estimate yet — be cautious, not optimistic).
        """
        if self._last_time_s is not None and time_s <= self._last_time_s:
            raise ValueError("samples must arrive in increasing time order")
        if self._last_temp_c is None:
            interval = self.min_interval_s
        else:
            dt = time_s - self._last_time_s
            slew = abs(temperature_c - self._last_temp_c) / dt
            if slew <= 0.0:
                interval = self.max_interval_s
            else:
                interval = self.resolution_margin_c / slew
        self._last_temp_c = temperature_c
        self._last_time_s = time_s
        return float(min(self.max_interval_s, max(self.min_interval_s, interval)))

    def reset(self) -> None:
        """Forget the slew history (e.g. after a power-state change)."""
        self._last_temp_c = None
        self._last_time_s = None
