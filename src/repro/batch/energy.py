"""Array twin of the per-conversion energy accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.bank import BankFrequenciesBatch, oscillator_power_batch
from repro.batch.grid import EnvironmentGrid
from repro.circuits.digital import FLIPFLOP_CAP
from repro.circuits.oscillator_bank import OscillatorBank
from repro.config import SensorConfig
from repro.readout.energy import ConversionEnergy


@dataclass(frozen=True)
class ConversionEnergyBatch:
    """Per-block conversion energies over a grid, all fields in joules."""

    psro_n: np.ndarray
    psro_p: np.ndarray
    tsro: np.ndarray
    counters: np.ndarray
    digital: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Total energy of each conversion."""
        return self.psro_n + self.psro_p + self.tsro + self.counters + self.digital

    @property
    def shape(self):
        return np.broadcast_shapes(
            np.shape(self.psro_n),
            np.shape(self.psro_p),
            np.shape(self.tsro),
            np.shape(self.counters),
            np.shape(self.digital),
        )

    def at(self, index) -> ConversionEnergy:
        """The scalar :class:`ConversionEnergy` at a grid index."""
        shape = self.shape

        def pick(field: np.ndarray) -> float:
            return float(np.broadcast_to(field, shape)[index])

        return ConversionEnergy(
            psro_n=pick(self.psro_n),
            psro_p=pick(self.psro_p),
            tsro=pick(self.tsro),
            counters=pick(self.counters),
            digital=pick(self.digital),
        )


def _ripple_energy_batch(counts: np.ndarray, vdd) -> np.ndarray:
    """Array twin of :func:`repro.circuits.digital.ripple_counter_energy`
    (counts already integer-truncated)."""
    return (2.0 * counts) * FLIPFLOP_CAP * vdd * vdd


def conversion_energy_batch(
    bank: OscillatorBank,
    grid: EnvironmentGrid,
    config: SensorConfig,
    frequencies: BankFrequenciesBatch,
) -> ConversionEnergyBatch:
    """Array twin of
    :func:`repro.readout.energy.conversion_energy_from_frequencies`.

    ``frequencies`` must already hold the evaluated ring frequencies (the
    batch pipeline always has them in hand by the time it costs energy).
    """
    f_n = frequencies.psro_n
    f_p = frequencies.psro_p
    f_t = frequencies.tsro

    window = config.psro_window
    tsro_time = config.tsro_periods / f_t

    e_psro_n = oscillator_power_batch(bank.psro_n, grid, frequency=f_n) * window
    e_psro_p = oscillator_power_batch(bank.psro_p, grid, frequency=f_p) * window
    e_tsro = oscillator_power_batch(bank.tsro, grid, frequency=f_t) * tsro_time

    counts_n = np.floor(f_n * window)
    counts_p = np.floor(f_p * window)
    counts_ref = np.floor(tsro_time * config.ref_clock_hz)
    e_counters = (
        _ripple_energy_batch(counts_n, grid.vdd)
        + _ripple_energy_batch(counts_p, grid.vdd)
        + _ripple_energy_batch(counts_ref, grid.vdd)
    )

    shape = np.broadcast_shapes(
        np.shape(e_psro_n), np.shape(e_psro_p), np.shape(e_tsro), np.shape(e_counters)
    )
    return ConversionEnergyBatch(
        psro_n=np.broadcast_to(e_psro_n, shape),
        psro_p=np.broadcast_to(e_psro_p, shape),
        tsro=np.broadcast_to(e_tsro, shape),
        counters=np.broadcast_to(e_counters, shape),
        digital=np.full(shape, config.digital_overhead_energy),
    )


def conversion_time_batch(config: SensorConfig, tsro_frequency) -> np.ndarray:
    """Array twin of :meth:`SensorConfig.conversion_time`."""
    f_t = np.asarray(tsro_frequency, dtype=float)
    if np.any(f_t <= 0.0):
        raise ValueError("tsro_frequency must be positive")
    return 2.0 * config.psro_window + config.tsro_periods / f_t
