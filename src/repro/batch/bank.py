"""Batch evaluation of ring oscillators and whole oscillator banks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.grid import EnvironmentGrid
from repro.batch.stages import stage_delays_batch
from repro.circuits.inverter import StageModel, load_capacitance_cached
from repro.circuits.oscillator_bank import BankFrequencies, OscillatorBank
from repro.circuits.ring_oscillator import _SHORT_CIRCUIT_FACTOR, RingOscillator
from repro.device.technology import Technology


def ring_period_batch(
    stage: StageModel,
    stages: int,
    technology: Technology,
    grid: EnvironmentGrid,
    vtn_offset=0.0,
    vtp_offset=0.0,
) -> np.ndarray:
    """Oscillation periods of a ring design over a grid.

    ``vtn_offset`` / ``vtp_offset`` may be arrays — this is how a whole
    *population* of rings (one frozen mismatch offset per die) evaluates in
    a single call.
    """
    load = load_capacitance_cached(stage, technology)
    dvtn = grid.dvtn + vtn_offset
    dvtp = grid.dvtp + vtp_offset
    t_rise, t_fall = stage_delays_batch(
        stage, technology.nmos, technology.pmos, grid, dvtn, dvtp, load
    )
    return stages * (t_rise + t_fall)


def ring_frequency_batch(
    stage: StageModel,
    stages: int,
    technology: Technology,
    grid: EnvironmentGrid,
    vtn_offset=0.0,
    vtp_offset=0.0,
) -> np.ndarray:
    """Oscillation frequencies of a ring design over a grid, hertz."""
    return 1.0 / ring_period_batch(
        stage, stages, technology, grid, vtn_offset, vtp_offset
    )


def oscillator_period_batch(osc: RingOscillator, grid: EnvironmentGrid) -> np.ndarray:
    """Array twin of :meth:`RingOscillator.period` over a grid."""
    return ring_period_batch(
        osc.stage, osc.stages, osc.technology, grid, osc.vtn_offset, osc.vtp_offset
    )


def oscillator_frequency_batch(osc: RingOscillator, grid: EnvironmentGrid) -> np.ndarray:
    """Array twin of :meth:`RingOscillator.frequency` over a grid."""
    return 1.0 / oscillator_period_batch(osc, grid)


def oscillator_power_batch(
    osc: RingOscillator, grid: EnvironmentGrid, frequency=None
) -> np.ndarray:
    """Array twin of :meth:`RingOscillator.power` over a grid."""
    if frequency is None:
        frequency = oscillator_frequency_batch(osc, grid)
    load = load_capacitance_cached(osc.stage, osc.technology)
    return (
        _SHORT_CIRCUIT_FACTOR * osc.stages * load * grid.vdd * grid.vdd * frequency
    )


@dataclass(frozen=True)
class BankFrequenciesBatch:
    """Frequencies of the four oscillators over a grid, in hertz."""

    psro_n: np.ndarray
    psro_p: np.ndarray
    tsro: np.ndarray
    reference: np.ndarray

    @property
    def shape(self):
        return np.broadcast_shapes(
            np.shape(self.psro_n),
            np.shape(self.psro_p),
            np.shape(self.tsro),
            np.shape(self.reference),
        )

    def at(self, index) -> BankFrequencies:
        """The scalar :class:`BankFrequencies` at a grid index."""
        shape = self.shape
        return BankFrequencies(
            psro_n=float(np.broadcast_to(self.psro_n, shape)[index]),
            psro_p=float(np.broadcast_to(self.psro_p, shape)[index]),
            tsro=float(np.broadcast_to(self.tsro, shape)[index]),
            reference=float(np.broadcast_to(self.reference, shape)[index]),
        )


def bank_frequencies_batch(
    bank: OscillatorBank, grid: EnvironmentGrid
) -> BankFrequenciesBatch:
    """Array twin of :meth:`OscillatorBank.frequencies` over a grid."""
    return BankFrequenciesBatch(
        psro_n=oscillator_frequency_batch(bank.psro_n, grid),
        psro_p=oscillator_frequency_batch(bank.psro_p, grid),
        tsro=oscillator_frequency_batch(bank.tsro, grid),
        reference=oscillator_frequency_batch(bank.reference, grid),
    )
