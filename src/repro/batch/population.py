"""Whole-population sensor conversions in one vectorised pass.

:func:`read_population` is the batch front-end of the engine: it takes a
list of already-manufactured :class:`~repro.core.sensor.PTSensor` instances
(one per die) and a temperature sweep, and produces every reading the
scalar ``sensor.read(temp_c)`` double loop would — same frequencies, same
quantised counts, same calibration fixes, same energy books — as arrays of
shape ``(n_sensors, n_temps, repeats)``.

Reproducibility is preserved draw-for-draw: each sensor's private phase
stream is consumed in exactly the order the scalar loop would consume it
(temperatures outer, repeats inner, then the N/P/T counters of one
conversion), so mixing batch and scalar reads on the same sensors yields
identical sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import telemetry
from repro.batch.bank import BankFrequenciesBatch, ring_frequency_batch
from repro.batch.energy import (
    ConversionEnergyBatch,
    conversion_energy_batch,
    conversion_time_batch,
)
from repro.batch.grid import EnvironmentGrid
from repro.batch.model import calibrate_batch, estimate_temperature_batch
from repro.circuits.ring_oscillator import Environment
from repro.core.sensor import PTSensor
from repro.units import ZERO_CELSIUS_IN_KELVIN

_BATCH_CONVERSIONS = telemetry.counter(
    "batch.population_conversions",
    unit="conversions",
    help="Conversions evaluated through the vectorised engine",
)
_BATCH_CALLS = telemetry.counter(
    "batch.read_population_calls", unit="calls", help="read_population invocations"
)
_BATCH_CONVERGENCE_FAILURES = telemetry.counter(
    "batch.convergence_failures",
    unit="conversions",
    help="Batch conversions whose self-calibration did not converge",
)
_BATCH_ROUNDS = telemetry.histogram(
    "batch.calibration_rounds",
    unit="rounds",
    help="Self-calibration rounds per batch conversion",
)


@dataclass(frozen=True)
class PopulationReadings:
    """Every conversion of a population sweep, as arrays.

    All per-reading arrays are shaped ``(n_sensors, n_temps, repeats)``;
    index ``[i, j, r]`` is the ``r``-th repeated conversion of sensor ``i``
    at the ``j``-th requested temperature — field-for-field the
    :class:`~repro.core.sensor.SensorReading` the scalar loop would return.
    """

    temperature_c: np.ndarray
    dvtn: np.ndarray
    dvtp: np.ndarray
    counts_n: np.ndarray
    counts_p: np.ndarray
    counts_ref: np.ndarray
    energy: ConversionEnergyBatch
    conversion_time: np.ndarray
    rounds_used: np.ndarray
    converged: np.ndarray

    @property
    def temperature_k(self) -> np.ndarray:
        """Estimated junction temperatures in kelvin."""
        return self.temperature_c + ZERO_CELSIUS_IN_KELVIN

    @property
    def energy_total(self) -> np.ndarray:
        """Total conversion energies in joules."""
        return self.energy.total

    def temperature_errors(self, true_temps_c) -> np.ndarray:
        """Signed reading errors against the true sweep temperatures."""
        truths = np.asarray(true_temps_c, dtype=float).reshape(1, -1, 1)
        return self.temperature_c - truths


def _require_uniform_design(sensors: Sequence[PTSensor]) -> PTSensor:
    """The batch engine evaluates one *design*; mixed populations must fall
    back to the scalar path."""
    reference = sensors[0]
    reference_key = reference.design_key()
    for sensor in sensors[1:]:
        if sensor.design_key() != reference_key:
            raise ValueError(
                "read_population requires sensors of a single design "
                "(same config, technology and stage models)"
            )
    return reference


def population_grid(
    sensors: Sequence[PTSensor], temps_k: np.ndarray, vdd: float
) -> EnvironmentGrid:
    """Physical operating grid of a population, shape ``(n_sensors, n_temps)``."""
    dvtn = np.empty(len(sensors))
    dvtp = np.empty(len(sensors))
    mun = np.ones(len(sensors))
    mup = np.ones(len(sensors))
    for i, sensor in enumerate(sensors):
        dvtn[i], dvtp[i] = sensor.true_process_shifts()
        if sensor.die is not None:
            mun[i] = sensor.die.corner.mun_scale
            mup[i] = sensor.die.corner.mup_scale
    return EnvironmentGrid.of(
        temp_k=temps_k.reshape(1, -1),
        vdd=vdd,
        dvtn=dvtn.reshape(-1, 1),
        dvtp=dvtp.reshape(-1, 1),
        mun_scale=mun.reshape(-1, 1),
        mup_scale=mup.reshape(-1, 1),
    )


def population_bank_frequencies(
    sensors: Sequence[PTSensor], grid: EnvironmentGrid
) -> BankFrequenciesBatch:
    """True ring frequencies of every sensor at every grid point.

    One kernel call per oscillator role covers the whole population: the
    per-sensor frozen mismatch offsets ride along as arrays on the sensor
    axis.  The reference ring is not powered during a conversion, so its
    lane is zero (matching the scalar energy path).
    """
    reference = sensors[0]

    def role_frequencies(role: str) -> np.ndarray:
        oscillators = [getattr(s.bank, role) for s in sensors]
        template = getattr(reference.bank, role)
        vtn = np.array([o.vtn_offset for o in oscillators]).reshape(-1, 1)
        vtp = np.array([o.vtp_offset for o in oscillators]).reshape(-1, 1)
        return ring_frequency_batch(
            template.stage,
            template.stages,
            reference.technology,
            grid,
            vtn_offset=vtn,
            vtp_offset=vtp,
        )

    return BankFrequenciesBatch(
        psro_n=role_frequencies("psro_n"),
        psro_p=role_frequencies("psro_p"),
        tsro=role_frequencies("tsro"),
        reference=np.zeros(grid.shape),
    )


def _environment_axis(envs: Sequence[Environment], vdd: Optional[float]):
    """Convert an Environment sweep into the (temps_c, vdd) the engine uses.

    The batch engine derives each sensor's process point from its die, so
    the environments may only carry temperature and supply; one that sets
    process fields would silently disagree with the per-sensor grid and is
    rejected instead.
    """
    vdds = {env.vdd for env in envs}
    if len(vdds) != 1:
        raise ValueError("environment sweep must share a single vdd")
    env_vdd = vdds.pop()
    if vdd is not None and vdd != env_vdd:
        raise ValueError("pass vdd inside the environments, not alongside them")
    for env in envs:
        if (env.dvtn, env.dvtp, env.mun_scale, env.mup_scale) != (0.0, 0.0, 1.0, 1.0):
            raise ValueError(
                "environment sweeps must leave process fields at their "
                "defaults; the population's process points come from the dies"
            )
    temps_c = np.array([env.temp_k for env in envs]) - ZERO_CELSIUS_IN_KELVIN
    return temps_c, env_vdd


def read_population(
    sensors: Sequence[PTSensor],
    temps_c,
    vdd: Optional[float] = None,
    deterministic: bool = False,
    assume_vdd: Optional[float] = None,
    repeats: int = 1,
) -> PopulationReadings:
    """Run full conversions for every (sensor, temperature, repeat) tuple.

    Array twin of the nested loop ``for sensor: for temp: for repeat:
    sensor.read(temp, ...)`` — see :meth:`PTSensor.read` for the argument
    semantics.  ``temps_c`` accepts the same environment-style call form
    as the scalar paths: a single
    :class:`~repro.circuits.ring_oscillator.Environment` or a sequence of
    them stands in for the Celsius axis (their shared ``vdd`` replaces the
    ``vdd`` argument).  Raises ``ValueError`` on an empty population,
    mixed sensor designs, or ``repeats < 1``.
    """
    sensors = list(sensors)
    if not sensors:
        raise ValueError("need at least one sensor")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    reference = _require_uniform_design(sensors)
    config = reference.config

    if isinstance(temps_c, Environment):
        temps_c = [temps_c]
    if (
        isinstance(temps_c, (list, tuple))
        and temps_c
        and isinstance(temps_c[0], Environment)
    ):
        temps_c, vdd = _environment_axis(temps_c, vdd)

    temps_c = np.atleast_1d(np.asarray(temps_c, dtype=float))
    temps_k = temps_c + ZERO_CELSIUS_IN_KELVIN
    if np.any(temps_k <= 0.0):
        raise ValueError("temperatures must be above absolute zero")
    vdd = reference.technology.vdd if vdd is None else vdd

    n_sensors = len(sensors)
    n_temps = temps_c.size
    shape = (n_sensors, n_temps, repeats)

    with telemetry.span(
        "batch.read_population",
        sensors=n_sensors,
        temps=n_temps,
        repeats=repeats,
    ) as trace:
        readings = _read_population_grid(
            sensors, reference, config, temps_k, vdd, shape, deterministic, assume_vdd
        )
        _BATCH_CALLS.inc()
        _BATCH_CONVERSIONS.inc(int(np.prod(shape)))
        failures = int(np.size(readings.converged) - np.count_nonzero(readings.converged))
        _BATCH_CONVERGENCE_FAILURES.inc(failures)
        _BATCH_ROUNDS.observe_many(np.asarray(readings.rounds_used).ravel().tolist())
        trace.set(
            conversions=int(np.prod(shape)),
            convergence_failures=failures,
            rounds_mean=float(np.mean(readings.rounds_used)),
        )
        return readings


def _read_population_grid(
    sensors: Sequence[PTSensor],
    reference: PTSensor,
    config,
    temps_k: np.ndarray,
    vdd: float,
    shape,
    deterministic: bool,
    assume_vdd: Optional[float],
) -> PopulationReadings:
    """The vectorised conversion pipeline behind :func:`read_population`."""
    n_sensors, n_temps, repeats = shape

    grid = population_grid(sensors, temps_k, vdd)
    frequencies = population_bank_frequencies(sensors, grid)

    # Counter phases: one (temps, repeats, N/P/T) block per sensor, filled
    # in the scalar loop's consumption order so the private streams stay
    # aligned with any interleaved scalar reads.
    if deterministic:
        phases = np.full(shape + (3,), 0.5)
    else:
        phases = np.empty(shape + (3,))
        for i, sensor in enumerate(sensors):
            phases[i] = sensor._rng.uniform(0.0, 1.0, size=(n_temps, repeats, 3))

    window = config.psro_window
    max_psro = (1 << config.psro_counter_bits) - 1
    max_tsro = (1 << config.tsro_counter_bits) - 1

    f_n = frequencies.psro_n[:, :, None]
    f_p = frequencies.psro_p[:, :, None]
    f_t = frequencies.tsro[:, :, None]

    counts_n = np.floor(f_n * window + phases[..., 0]).astype(np.int64) & max_psro
    counts_p = np.floor(f_p * window + phases[..., 1]).astype(np.int64) & max_psro
    counts_ref = np.minimum(
        np.floor((config.tsro_periods / f_t) * config.ref_clock_hz + phases[..., 2]).astype(
            np.int64
        ),
        max_tsro,
    )
    if np.any(counts_ref < 1):
        raise ValueError("TSRO period timer returned a zero count")

    f_n_hat = counts_n / window
    f_p_hat = counts_p / window
    f_t_hat = config.tsro_periods * config.ref_clock_hz / counts_ref

    calibration = calibrate_batch(
        reference.model,
        f_n_hat,
        f_p_hat,
        f_t_hat,
        vdd=assume_vdd,
        lut=reference.lut,
    )

    full_frequencies = BankFrequenciesBatch(
        psro_n=np.broadcast_to(f_n, shape),
        psro_p=np.broadcast_to(f_p, shape),
        tsro=np.broadcast_to(f_t, shape),
        reference=np.zeros(shape),
    )
    energy = conversion_energy_batch(reference.bank, grid, config, full_frequencies)
    conversion_time = np.broadcast_to(
        conversion_time_batch(config, f_t), shape
    ).copy()

    return PopulationReadings(
        temperature_c=calibration.temp_k - ZERO_CELSIUS_IN_KELVIN,
        dvtn=calibration.dvtn,
        dvtp=calibration.dvtp,
        counts_n=counts_n,
        counts_p=counts_p,
        counts_ref=counts_ref,
        energy=energy,
        conversion_time=conversion_time,
        rounds_used=calibration.rounds_used,
        converged=calibration.converged,
    )


def read_uncalibrated_population(
    baselines: Sequence,
    temps_c,
    vdd: Optional[float] = None,
    deterministic: bool = False,
) -> np.ndarray:
    """Temperature sweep of uncalibrated-baseline sensors, in one pass.

    Array twin of looping
    :meth:`repro.baselines.uncalibrated.UncalibratedTsroSensor.read_temperature`
    over ``(baseline, temperature)``: true TSRO frequencies per die, one
    phase draw per conversion from each baseline's private stream, and the
    typical-curve inversion clamped at the range edges.  Returns estimated
    temperatures in Celsius, shape ``(n_baselines, n_temps)``.
    """
    baselines = list(baselines)
    if not baselines:
        raise ValueError("need at least one baseline sensor")
    reference = baselines[0]
    config = reference.config

    temps_c = np.atleast_1d(np.asarray(temps_c, dtype=float))
    temps_k = temps_c + ZERO_CELSIUS_IN_KELVIN
    if np.any(temps_k <= 0.0):
        raise ValueError("temperatures must be above absolute zero")
    vdd = reference.technology.vdd if vdd is None else vdd

    dvtn = np.empty(len(baselines))
    dvtp = np.empty(len(baselines))
    mun = np.ones(len(baselines))
    mup = np.ones(len(baselines))
    vtn_off = np.empty(len(baselines))
    vtp_off = np.empty(len(baselines))
    for i, baseline in enumerate(baselines):
        if baseline.die is None:
            dvtn[i] = dvtp[i] = 0.0
        else:
            dvtn[i], dvtp[i] = baseline.die.vt_shifts_at(*baseline.location)
            mun[i] = baseline.die.corner.mun_scale
            mup[i] = baseline.die.corner.mup_scale
        vtn_off[i] = baseline.bank.tsro.vtn_offset
        vtp_off[i] = baseline.bank.tsro.vtp_offset

    grid = EnvironmentGrid.of(
        temp_k=temps_k.reshape(1, -1),
        vdd=vdd,
        dvtn=dvtn.reshape(-1, 1),
        dvtp=dvtp.reshape(-1, 1),
        mun_scale=mun.reshape(-1, 1),
        mup_scale=mup.reshape(-1, 1),
    )
    tsro = reference.bank.tsro
    f_t = ring_frequency_batch(
        tsro.stage,
        tsro.stages,
        reference.technology,
        grid,
        vtn_offset=vtn_off.reshape(-1, 1),
        vtp_offset=vtp_off.reshape(-1, 1),
    )

    shape = (len(baselines), temps_c.size)
    if deterministic:
        phases = np.full(shape, 0.5)
    else:
        phases = np.empty(shape)
        for i, baseline in enumerate(baselines):
            phases[i] = baseline._rng.uniform(0.0, 1.0, size=temps_c.size)

    max_count = (1 << config.tsro_counter_bits) - 1
    counts = np.minimum(
        np.floor((config.tsro_periods / f_t) * config.ref_clock_hz + phases).astype(
            np.int64
        ),
        max_count,
    )
    if np.any(counts < 1):
        raise ValueError("TSRO period timer returned a zero count")
    f_t_hat = config.tsro_periods * config.ref_clock_hz / counts

    temp_k = estimate_temperature_batch(
        reference.model, f_t_hat, 0.0, 0.0, clamp=True
    )
    return temp_k - ZERO_CELSIUS_IN_KELVIN
