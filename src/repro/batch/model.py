"""Array twins of the sensing-model / calibration stack.

The scalar pipeline (``repro.core``) runs, per die and per conversion,
a LUT-seeded 2-D Newton extraction followed by a bracketed temperature
inversion, alternated until the temperature fix stops moving.  Population
studies repeat that thousands of times on identical control flow, so this
module runs the *same* algorithms with every die as one lane of a NumPy
array: converged lanes freeze behind an active-point mask (mirroring the
scalar early exits), the 2x2 Newton systems solve in closed form, and the
monotone TSRO curve inverts by vectorised bisection at the same 1e-4 K
tolerance ``brentq`` uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.batch.bank import oscillator_frequency_batch
from repro.batch.grid import EnvironmentGrid
from repro.core.decoupler import ProcessLut
from repro.core.errors import (
    CalibrationError,
    ExtractionDivergedError,
    TemperatureRangeError,
)
from repro.core.sensing_model import SensingModel
from repro.core.temperature import _RANGE_GUARD_K
from repro.units import celsius_to_kelvin
from repro.variation.corners import mobility_scales


def _first_lane(mask) -> tuple:
    """Index of the first True lane of a (possibly 0-d) boolean mask."""
    return tuple(int(k[0]) for k in np.atleast_1d(mask).nonzero())


def _model_grid(
    model: SensingModel, dvtn, dvtp, temp_k, vdd: Optional[float]
) -> EnvironmentGrid:
    """Typical-die grid at hypothetical process points (array twin of
    :meth:`SensingModel.environment`, including the threshold-mobility
    coupling)."""
    mun, mup = mobility_scales(dvtn, dvtp)
    return EnvironmentGrid.of(
        temp_k=temp_k,
        vdd=model.technology.vdd if vdd is None else vdd,
        dvtn=dvtn,
        dvtp=dvtp,
        mun_scale=mun,
        mup_scale=mup,
    )


def process_frequencies_batch(
    model: SensingModel, dvtn, dvtp, temp_k, vdd: Optional[float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Model (f_PSRO-N, f_PSRO-P) arrays at process-point arrays."""
    grid = _model_grid(model, dvtn, dvtp, temp_k, vdd)
    return (
        oscillator_frequency_batch(model.bank.psro_n, grid),
        oscillator_frequency_batch(model.bank.psro_p, grid),
    )


def tsro_frequency_batch(
    model: SensingModel, dvtn, dvtp, temp_k, vdd: Optional[float] = None
) -> np.ndarray:
    """Model TSRO frequency array at process-point arrays."""
    grid = _model_grid(model, dvtn, dvtp, temp_k, vdd)
    return oscillator_frequency_batch(model.bank.tsro, grid)


def process_jacobian_batch(
    model: SensingModel,
    dvtn,
    dvtp,
    temp_k,
    vdd: Optional[float] = None,
    delta: float = 0.5e-3,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-point 2x2 Jacobians ``d(f_N, f_P)/d(dV_tn, dV_tp)``.

    Returns the four entries ``(j_nn, j_np, j_pn, j_pp)`` as arrays, using
    the same 0.5 mV central differences as the scalar
    :meth:`SensingModel.process_jacobian`.
    """
    dvtn = np.asarray(dvtn, dtype=float)
    dvtp = np.asarray(dvtp, dtype=float)
    fn_hi_n, fp_hi_n = process_frequencies_batch(model, dvtn + delta, dvtp, temp_k, vdd)
    fn_lo_n, fp_lo_n = process_frequencies_batch(model, dvtn - delta, dvtp, temp_k, vdd)
    fn_hi_p, fp_hi_p = process_frequencies_batch(model, dvtn, dvtp + delta, temp_k, vdd)
    fn_lo_p, fp_lo_p = process_frequencies_batch(model, dvtn, dvtp - delta, temp_k, vdd)
    scale = 1.0 / (2.0 * delta)
    return (
        (fn_hi_n - fn_lo_n) * scale,
        (fn_hi_p - fn_lo_p) * scale,
        (fp_hi_n - fp_lo_n) * scale,
        (fp_hi_p - fp_lo_p) * scale,
    )


def _lut_seed_batch(
    lut: ProcessLut, f_n: np.ndarray, f_p: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :meth:`ProcessLut.seed`: nearest grid point per lane."""
    shape = f_n.shape
    err_n = (lut.f_n_grid[None, :, :] - f_n.reshape(-1, 1, 1)) / lut.f_n_grid
    err_p = (lut.f_p_grid[None, :, :] - f_p.reshape(-1, 1, 1)) / lut.f_p_grid
    cost = err_n**2 + err_p**2
    flat = np.argmin(cost.reshape(cost.shape[0], -1), axis=1)
    i, j = np.unravel_index(flat, lut.f_n_grid.shape)
    return lut.dvtn_axis[i].reshape(shape), lut.dvtp_axis[j].reshape(shape)


def extract_process_batch(
    model: SensingModel,
    f_n_measured,
    f_p_measured,
    temp_k,
    vdd: Optional[float] = None,
    lut: Optional[ProcessLut] = None,
    iterations: Optional[int] = None,
    tolerance_hz: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Array twin of :func:`repro.core.decoupler.extract_process`.

    All lanes Newton-iterate together; a lane that meets the residual
    tolerance freezes (exactly like the scalar early ``break``) while the
    rest continue.  Any lane diverging — singular sensitivity, or an
    iterate leaving the inflated characterised box — raises
    :class:`ExtractionDivergedError`, as every scalar call in a loop would.
    """
    f_n = np.asarray(f_n_measured, dtype=float)
    f_p = np.asarray(f_p_measured, dtype=float)
    if np.any(f_n <= 0.0) or np.any(f_p <= 0.0):
        raise ValueError("measured frequencies must be positive")
    iterations = model.config.newton_iterations if iterations is None else iterations

    shape = np.broadcast_shapes(f_n.shape, f_p.shape, np.shape(temp_k))
    f_n = np.broadcast_to(f_n, shape)
    f_p = np.broadcast_to(f_p, shape)
    temp_k = np.broadcast_to(np.asarray(temp_k, dtype=float), shape)

    if lut is not None:
        dvtn, dvtp = _lut_seed_batch(lut, f_n, f_p)
        dvtn = dvtn.copy()
        dvtp = dvtp.copy()
    else:
        dvtn = np.zeros(shape)
        dvtp = np.zeros(shape)

    active = np.ones(shape, dtype=bool)
    margin = 1.5 * model.vt_box
    for _ in range(iterations):
        fm_n, fm_p = process_frequencies_batch(model, dvtn, dvtp, temp_k, vdd)
        res_n = fm_n - f_n
        res_p = fm_p - f_p
        active &= np.maximum(np.abs(res_n), np.abs(res_p)) >= tolerance_hz
        if not active.any():
            break
        j_nn, j_np, j_pn, j_pp = process_jacobian_batch(
            model, dvtn, dvtp, temp_k, vdd
        )
        det = j_nn * j_pp - j_np * j_pn
        if np.any(active & (det == 0.0)):
            raise ExtractionDivergedError("singular sensitivity matrix in batch")
        safe_det = np.where(det == 0.0, 1.0, det)
        step_n = (j_pp * res_n - j_np * res_p) / safe_det
        step_p = (j_nn * res_p - j_pn * res_n) / safe_det
        dvtn = np.where(active, dvtn - step_n, dvtn)
        dvtp = np.where(active, dvtp - step_p, dvtp)
        left = active & (
            (np.abs(dvtn) > margin) | (np.abs(dvtp) > margin)
        )
        if left.any():
            index = _first_lane(left)
            raise ExtractionDivergedError(
                f"iterate left the characterised box at lane {index}: "
                f"dvtn={float(np.atleast_1d(dvtn)[index]):.4f}, "
                f"dvtp={float(np.atleast_1d(dvtp)[index]):.4f}"
            )

    outside = (np.abs(dvtn) > model.vt_box) | (np.abs(dvtp) > model.vt_box)
    if outside.any():
        index = _first_lane(outside)
        raise ExtractionDivergedError(
            f"extraction settled outside the characterised box at lane "
            f"{index}: dvtn={float(np.atleast_1d(dvtn)[index]):.4f}, "
            f"dvtp={float(np.atleast_1d(dvtp)[index]):.4f}"
        )
    return dvtn, dvtp


def estimate_temperature_batch(
    model: SensingModel,
    f_t_measured,
    dvtn,
    dvtp,
    vdd: Optional[float] = None,
    tolerance_k: float = 1e-4,
    clamp: bool = False,
) -> np.ndarray:
    """Array twin of :func:`repro.core.temperature.estimate_temperature`.

    The die-corrected TSRO curve is strictly monotone in temperature, so
    every lane inverts by bisection down to ``tolerance_k``.  With
    ``clamp=True`` out-of-range lanes peg at the guard-banded range edges
    (the hardware behaviour of
    :func:`~repro.core.temperature.estimate_temperature_clamped`);
    otherwise any out-of-range lane raises :class:`TemperatureRangeError`.
    """
    f_t = np.asarray(f_t_measured, dtype=float)
    if np.any(f_t <= 0.0):
        raise ValueError("measured TSRO frequency must be positive")

    shape = np.broadcast_shapes(f_t.shape, np.shape(dvtn), np.shape(dvtp))
    f_t = np.broadcast_to(f_t, shape)
    dvtn = np.broadcast_to(np.asarray(dvtn, dtype=float), shape)
    dvtp = np.broadcast_to(np.asarray(dvtp, dtype=float), shape)

    lo_k = celsius_to_kelvin(model.config.temp_min_c) - _RANGE_GUARD_K
    hi_k = celsius_to_kelvin(model.config.temp_max_c) + _RANGE_GUARD_K

    f_lo = tsro_frequency_batch(model, dvtn, dvtp, np.full(shape, lo_k), vdd)
    f_hi = tsro_frequency_batch(model, dvtn, dvtp, np.full(shape, hi_k), vdd)
    below = f_t < f_lo
    above = f_t > f_hi
    if not clamp and (below.any() or above.any()):
        index = _first_lane(below | above)
        raise TemperatureRangeError(
            f"TSRO frequency {float(np.atleast_1d(f_t)[index])/1e6:.3f} MHz "
            f"at lane {index} "
            f"maps outside [{model.config.temp_min_c}, "
            f"{model.config.temp_max_c}] degC"
        )
    # Clip pegged lanes into the bracket so bisection stays well defined;
    # their results are overwritten with the pegged edge below.
    target = np.clip(f_t, f_lo, f_hi)

    lo = np.full(shape, lo_k)
    hi = np.full(shape, hi_k)
    # ceil(log2(range / tol)) halvings reach the tolerance everywhere.
    steps = int(np.ceil(np.log2((hi_k - lo_k) / tolerance_k))) + 1
    for _ in range(steps):
        mid = 0.5 * (lo + hi)
        res = tsro_frequency_batch(model, dvtn, dvtp, mid, vdd) - target
        hi = np.where(res >= 0.0, mid, hi)
        lo = np.where(res >= 0.0, lo, mid)
        if float(np.max(hi - lo)) <= tolerance_k:
            break
    temp = 0.5 * (lo + hi)
    if clamp:
        temp = np.where(below, lo_k, np.where(above, hi_k, temp))
    return temp


@dataclass(frozen=True)
class BatchCalibration:
    """Converged self-calibration state for every lane of a population.

    Array twin of :class:`repro.core.calibration.CalibrationState`.
    """

    dvtn: np.ndarray
    dvtp: np.ndarray
    temp_k: np.ndarray
    rounds_used: np.ndarray
    converged: np.ndarray


def calibrate_batch(
    model: SensingModel,
    f_n_measured,
    f_p_measured,
    f_t_measured,
    vdd: Optional[float] = None,
    initial_temp_k: float = 300.0,
    rounds: Optional[int] = None,
    lut: Optional[ProcessLut] = None,
    convergence_k: float = 0.05,
) -> BatchCalibration:
    """Array twin of :meth:`SelfCalibrationEngine.run`.

    All lanes alternate process extraction and temperature estimation
    together; a lane whose temperature fix moves less than
    ``convergence_k`` freezes, exactly like the scalar per-reading loop.

    Raises:
        CalibrationError: If any lane exhausts the round budget while its
            temperature iterate is still moving (and ``rounds >= 2``, the
            same ablation escape hatch the scalar engine has).
    """
    f_n = np.asarray(f_n_measured, dtype=float)
    f_p = np.asarray(f_p_measured, dtype=float)
    f_t = np.asarray(f_t_measured, dtype=float)
    rounds = model.config.calibration_rounds if rounds is None else rounds

    shape = np.broadcast_shapes(f_n.shape, f_p.shape, f_t.shape)
    f_n = np.broadcast_to(f_n, shape)
    f_p = np.broadcast_to(f_p, shape)
    f_t = np.broadcast_to(f_t, shape)

    temp_k = np.full(shape, float(initial_temp_k))
    dvtn = np.zeros(shape)
    dvtp = np.zeros(shape)
    converged = np.zeros(shape, dtype=bool)
    rounds_used = np.zeros(shape, dtype=int)
    moved = np.full(shape, np.inf)

    for round_index in range(1, rounds + 1):
        active = ~converged
        if not active.any():
            break
        new_dvtn, new_dvtp = extract_process_batch(
            model, f_n, f_p, temp_k, vdd, lut=lut
        )
        new_temp = estimate_temperature_batch(model, f_t, new_dvtn, new_dvtp, vdd)
        step = np.abs(new_temp - temp_k)
        dvtn = np.where(active, new_dvtn, dvtn)
        dvtp = np.where(active, new_dvtp, dvtp)
        temp_k = np.where(active, new_temp, temp_k)
        moved = np.where(active, step, moved)
        rounds_used = np.where(active, round_index, rounds_used)
        converged |= active & (step < convergence_k)

    if not converged.all() and rounds >= 2:
        worst = float(np.max(np.where(converged, 0.0, moved)))
        count = int(np.count_nonzero(~converged))
        raise CalibrationError(
            f"self-calibration still moving {worst:.3f} K on {count} lanes "
            f"after {rounds} rounds"
        )
    return BatchCalibration(
        dvtn=dvtn,
        dvtp=dvtp,
        temp_k=temp_k,
        rounds_used=rounds_used,
        converged=converged,
    )
