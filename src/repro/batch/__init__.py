"""Vectorised batch-evaluation engine.

The scalar model stack (``device`` → ``circuits`` → ``core``) evaluates one
operating point per call, which is the right shape for understanding one
conversion and exactly the wrong shape for population studies: a 200-die
accuracy histogram at 9 temperatures re-enters the Python device model
tens of thousands of times.  This package provides *array twins* of each
layer — same formulas, NumPy semantics — so whole populations evaluate in
a handful of ufunc passes:

* :class:`EnvironmentGrid` — broadcastable grids of operating points;
* :mod:`~repro.batch.device` — EKV drain currents over grids;
* :mod:`~repro.batch.stages` — the four stage-delay kernels (extensible
  via :func:`register_delay_kernel`);
* :mod:`~repro.batch.bank` — ring/bank frequencies over grids;
* :mod:`~repro.batch.model` — vectorised Newton extraction, temperature
  inversion and the full self-calibration loop;
* :func:`read_population` — whole-die-population conversions, bit-faithful
  to the scalar ``PTSensor.read`` loops (same rng streams, same
  quantisation);
* :func:`read_paired` — flat one-lane-per-request conversions for
  coalesced request batches (the :mod:`repro.serve` hot path), equally
  bit-faithful to the sequential scalar request loop.

Golden equivalence against the scalar path is pinned by
``tests/test_batch_engine.py``.
"""

from repro.batch.bank import (
    BankFrequenciesBatch,
    bank_frequencies_batch,
    oscillator_frequency_batch,
    oscillator_period_batch,
    oscillator_power_batch,
    ring_frequency_batch,
    ring_period_batch,
)
from repro.batch.device import (
    drain_current_batch,
    series_stack_current_batch,
    specific_current_batch,
    thermal_voltage_batch,
    threshold_voltage_batch,
)
from repro.batch.energy import (
    ConversionEnergyBatch,
    conversion_energy_batch,
    conversion_time_batch,
)
from repro.batch.grid import EnvironmentGrid
from repro.batch.paired import PairedReadings, paired_grid, read_paired
from repro.batch.model import (
    BatchCalibration,
    calibrate_batch,
    estimate_temperature_batch,
    extract_process_batch,
    process_frequencies_batch,
    process_jacobian_batch,
    tsro_frequency_batch,
)
from repro.batch.population import (
    PopulationReadings,
    population_bank_frequencies,
    population_grid,
    read_population,
    read_uncalibrated_population,
)
from repro.batch.stages import register_delay_kernel, stage_delays_batch

__all__ = [
    "BankFrequenciesBatch",
    "BatchCalibration",
    "ConversionEnergyBatch",
    "EnvironmentGrid",
    "PairedReadings",
    "PopulationReadings",
    "bank_frequencies_batch",
    "calibrate_batch",
    "conversion_energy_batch",
    "conversion_time_batch",
    "drain_current_batch",
    "estimate_temperature_batch",
    "extract_process_batch",
    "oscillator_frequency_batch",
    "oscillator_period_batch",
    "oscillator_power_batch",
    "paired_grid",
    "population_bank_frequencies",
    "population_grid",
    "process_frequencies_batch",
    "process_jacobian_batch",
    "read_paired",
    "read_population",
    "read_uncalibrated_population",
    "register_delay_kernel",
    "ring_frequency_batch",
    "ring_period_batch",
    "series_stack_current_batch",
    "specific_current_batch",
    "stage_delays_batch",
    "thermal_voltage_batch",
    "threshold_voltage_batch",
    "tsro_frequency_batch",
]
