"""Broadcastable operating-point grids for the batch evaluation engine.

An :class:`EnvironmentGrid` is the array twin of
:class:`repro.circuits.ring_oscillator.Environment`: each field holds a
NumPy array (or scalar) of operating-point coordinates, and the fields only
have to be *broadcastable* against each other.  A 200-die x 9-temperature
sweep is therefore six tiny arrays — per-die threshold shifts shaped
``(200, 1)`` against a temperature axis shaped ``(9,)`` — not 1800
``Environment`` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.ring_oscillator import Environment
from repro.variation.montecarlo import DieSample


def _as_float_array(value) -> np.ndarray:
    return np.asarray(value, dtype=float)


@dataclass(frozen=True)
class EnvironmentGrid:
    """A broadcastable grid of circuit operating points.

    Attributes mirror :class:`Environment` exactly, but every field is an
    array (or scalar) and the batch kernels evaluate all points in a handful
    of ufunc operations.

    Attributes:
        temp_k: Junction temperatures in kelvin.
        vdd: Supply voltages in volts.
        dvtn: Systematic NMOS threshold shifts, volts.
        dvtp: Systematic PMOS threshold-magnitude shifts, volts.
        mun_scale: NMOS mobility multipliers.
        mup_scale: PMOS mobility multipliers.
    """

    temp_k: np.ndarray
    vdd: np.ndarray
    dvtn: np.ndarray
    dvtp: np.ndarray
    mun_scale: np.ndarray
    mup_scale: np.ndarray

    def __post_init__(self) -> None:
        for name in ("temp_k", "vdd", "dvtn", "dvtp", "mun_scale", "mup_scale"):
            object.__setattr__(self, name, _as_float_array(getattr(self, name)))
        # Fails loudly (and early) on incompatible shapes.
        shape = self.shape
        del shape
        if np.any(self.temp_k <= 0.0):
            raise ValueError("all temperatures must be positive kelvin")
        if np.any(self.vdd <= 0.0):
            raise ValueError("all vdd values must be positive")
        if np.any(self.mun_scale <= 0.0) or np.any(self.mup_scale <= 0.0):
            raise ValueError("all mobility scales must be positive")

    @property
    def shape(self) -> Tuple[int, ...]:
        """Broadcast shape of the grid."""
        return np.broadcast_shapes(
            np.shape(self.temp_k),
            np.shape(self.vdd),
            np.shape(self.dvtn),
            np.shape(self.dvtp),
            np.shape(self.mun_scale),
            np.shape(self.mup_scale),
        )

    @property
    def size(self) -> int:
        """Number of operating points in the grid."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @classmethod
    def of(
        cls,
        temp_k,
        vdd,
        dvtn=0.0,
        dvtp=0.0,
        mun_scale=1.0,
        mup_scale=1.0,
    ) -> "EnvironmentGrid":
        """Build a grid from broadcastable scalars/arrays."""
        return cls(
            temp_k=temp_k,
            vdd=vdd,
            dvtn=dvtn,
            dvtp=dvtp,
            mun_scale=mun_scale,
            mup_scale=mup_scale,
        )

    @classmethod
    def from_environment(cls, env: Environment) -> "EnvironmentGrid":
        """A zero-dimensional grid holding one scalar operating point."""
        return cls.of(
            temp_k=env.temp_k,
            vdd=env.vdd,
            dvtn=env.dvtn,
            dvtp=env.dvtp,
            mun_scale=env.mun_scale,
            mup_scale=env.mup_scale,
        )

    @classmethod
    def from_environments(cls, envs: Iterable[Environment]) -> "EnvironmentGrid":
        """A one-dimensional grid stacking scalar environments."""
        envs = list(envs)
        if not envs:
            raise ValueError("need at least one environment")
        return cls.of(
            temp_k=[e.temp_k for e in envs],
            vdd=[e.vdd for e in envs],
            dvtn=[e.dvtn for e in envs],
            dvtp=[e.dvtp for e in envs],
            mun_scale=[e.mun_scale for e in envs],
            mup_scale=[e.mup_scale for e in envs],
        )

    @classmethod
    def product(
        cls,
        temps_k: Sequence[float],
        vdds: Sequence[float],
        dvtn=0.0,
        dvtp=0.0,
        mun_scale=1.0,
        mup_scale=1.0,
    ) -> "EnvironmentGrid":
        """Outer (temperature x supply) grid, shape ``(n_temps, n_vdds)``."""
        temps = _as_float_array(temps_k).reshape(-1, 1)
        vdds = _as_float_array(vdds).reshape(1, -1)
        return cls.of(
            temp_k=temps,
            vdd=vdds,
            dvtn=dvtn,
            dvtp=dvtp,
            mun_scale=mun_scale,
            mup_scale=mup_scale,
        )

    @classmethod
    def for_dies(
        cls,
        dies: Sequence[DieSample],
        location: Tuple[float, float],
        temps_k,
        vdd,
    ) -> "EnvironmentGrid":
        """Per-die sweep grid, shape ``(n_dies, n_temps)``.

        The die axis carries each die's systematic threshold shifts at the
        sensor ``location`` and the corner mobility scales; the temperature
        axis broadcasts across it.  This is the array twin of calling
        :func:`repro.circuits.oscillator_bank.environment_for_die` in a
        double loop.
        """
        if not dies:
            raise ValueError("need at least one die")
        x, y = location
        shifts = np.array([die.vt_shifts_at(x, y) for die in dies])
        mun = np.array([die.corner.mun_scale for die in dies])
        mup = np.array([die.corner.mup_scale for die in dies])
        temps = np.atleast_1d(_as_float_array(temps_k)).reshape(1, -1)
        return cls.of(
            temp_k=temps,
            vdd=vdd,
            dvtn=shifts[:, 0].reshape(-1, 1),
            dvtp=shifts[:, 1].reshape(-1, 1),
            mun_scale=mun.reshape(-1, 1),
            mup_scale=mup.reshape(-1, 1),
        )

    def broadcast(self) -> "EnvironmentGrid":
        """A copy with every field materialised at the full broadcast shape."""
        shape = self.shape
        return EnvironmentGrid(
            temp_k=np.broadcast_to(self.temp_k, shape).copy(),
            vdd=np.broadcast_to(self.vdd, shape).copy(),
            dvtn=np.broadcast_to(self.dvtn, shape).copy(),
            dvtp=np.broadcast_to(self.dvtp, shape).copy(),
            mun_scale=np.broadcast_to(self.mun_scale, shape).copy(),
            mup_scale=np.broadcast_to(self.mup_scale, shape).copy(),
        )

    def environment_at(self, index) -> Environment:
        """The scalar :class:`Environment` at a grid index (cross-checking)."""
        shape = self.shape

        def pick(field: np.ndarray) -> float:
            return float(np.broadcast_to(field, shape)[index])

        return Environment(
            temp_k=pick(self.temp_k),
            vdd=pick(self.vdd),
            dvtn=pick(self.dvtn),
            dvtp=pick(self.dvtp),
            mun_scale=pick(self.mun_scale),
            mup_scale=pick(self.mup_scale),
        )

    def environments(self) -> Iterable[Environment]:
        """Iterate all points as scalar environments (golden-test helper)."""
        for index in np.ndindex(self.shape):
            yield self.environment_at(index)
