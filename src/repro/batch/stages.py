"""Array twins of the four :class:`~repro.circuits.inverter.StageModel` delays.

Each kernel reproduces one stage flavour's ``delays`` over an
:class:`~repro.batch.grid.EnvironmentGrid`, taking the *total* per-point
threshold shifts (die systematic + ring's frozen mismatch) as arrays.  A
registry maps stage classes to kernels so downstream code dispatches on the
stage instance exactly like the scalar path does, and new stage flavours
can plug in via :func:`register_delay_kernel`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type

import numpy as np

from repro.batch.device import drain_current_batch, series_stack_current_batch
from repro.batch.grid import EnvironmentGrid
from repro.circuits.inverter import (
    BalancedStage,
    NmosSensingStage,
    PmosSensingStage,
    StageModel,
    StarvedStage,
)
from repro.device.mosfet import MosfetParams

DelayKernel = Callable[
    [StageModel, MosfetParams, MosfetParams, EnvironmentGrid, np.ndarray, np.ndarray, float],
    Tuple[np.ndarray, np.ndarray],
]

_DELAY_KERNELS: Dict[Type[StageModel], DelayKernel] = {}


def register_delay_kernel(stage_type: Type[StageModel], kernel: DelayKernel) -> None:
    """Register the batch delay kernel of a stage class."""
    _DELAY_KERNELS[stage_type] = kernel


def stage_delays_batch(
    stage: StageModel,
    nmos: MosfetParams,
    pmos: MosfetParams,
    grid: EnvironmentGrid,
    dvtn,
    dvtp,
    load_cap: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(t_rise, t_fall)`` arrays of one stage over a grid.

    Args:
        stage: The stage model instance (dispatches to its kernel).
        nmos: Unit NMOS template of the technology (unshifted).
        pmos: Unit PMOS template of the technology (unshifted).
        grid: Operating points (supplies temp/vdd/mobility scales).
        dvtn: Total per-point NMOS threshold shift (grid systematic plus the
            oscillator's frozen mismatch offset), volts.
        dvtp: Total per-point PMOS threshold-magnitude shift, volts.
        load_cap: Stage load capacitance in farads (scalar — geometry).
    """
    kernel = _DELAY_KERNELS.get(type(stage))
    if kernel is None:
        raise TypeError(
            f"no batch delay kernel registered for {type(stage).__name__}; "
            "register one with repro.batch.stages.register_delay_kernel"
        )
    return kernel(stage, nmos, pmos, grid, dvtn, dvtp, load_cap)


def _balanced_delays(stage, nmos, pmos, grid, dvtn, dvtp, load_cap):
    n_dev = nmos.scaled(width_scale=stage.nmos_units, length_scale=stage.length_scale)
    p_dev = pmos.scaled(width_scale=stage.pmos_units, length_scale=stage.length_scale)
    i_n = drain_current_batch(
        n_dev, grid.vdd, grid.vdd / 2.0, grid.temp_k, dvt=dvtn, mu_scale=grid.mun_scale
    )
    i_p = drain_current_batch(
        p_dev, grid.vdd, grid.vdd / 2.0, grid.temp_k, dvt=dvtp, mu_scale=grid.mup_scale
    )
    t_fall = load_cap * grid.vdd / (2.0 * i_n)
    t_rise = load_cap * grid.vdd / (2.0 * i_p)
    return t_rise, t_fall


def _nmos_sensing_delays(stage, nmos, pmos, grid, dvtn, dvtp, load_cap):
    bias = stage.bias_ratio * grid.vdd
    sense = nmos.scaled(
        width_scale=stage.sense_units, length_scale=stage.sense_length_scale
    )
    i_limit = series_stack_current_batch(
        sense, stage.stack, bias, grid.vdd / 2.0, grid.temp_k,
        dvt=dvtn, mu_scale=grid.mun_scale,
    )
    p_dev = pmos.scaled(width_scale=stage.pmos_units)
    i_p = drain_current_batch(
        p_dev, grid.vdd, grid.vdd / 2.0, grid.temp_k, dvt=dvtp, mu_scale=grid.mup_scale
    )
    t_fall = load_cap * grid.vdd / i_limit
    t_rise = load_cap * grid.vdd / (2.0 * i_p)
    return t_rise, t_fall


def _pmos_sensing_delays(stage, nmos, pmos, grid, dvtn, dvtp, load_cap):
    bias = stage.bias_ratio * grid.vdd
    sense = pmos.scaled(
        width_scale=stage.sense_units, length_scale=stage.sense_length_scale
    )
    i_limit = series_stack_current_batch(
        sense, stage.stack, bias, grid.vdd / 2.0, grid.temp_k,
        dvt=dvtp, mu_scale=grid.mup_scale,
    )
    n_dev = nmos.scaled(width_scale=stage.nmos_units)
    i_n = drain_current_batch(
        n_dev, grid.vdd, grid.vdd / 2.0, grid.temp_k, dvt=dvtn, mu_scale=grid.mun_scale
    )
    t_rise = load_cap * grid.vdd / i_limit
    t_fall = load_cap * grid.vdd / (2.0 * i_n)
    return t_rise, t_fall


def _starved_delays(stage, nmos, pmos, grid, dvtn, dvtp, load_cap):
    bias = stage.bias_ratio * grid.vdd
    footer = nmos.scaled(
        width_scale=stage.limiter_units, length_scale=stage.limiter_length_scale
    )
    header = pmos.scaled(
        width_scale=stage.limiter_units, length_scale=stage.limiter_length_scale
    )
    i_fall = drain_current_batch(
        footer, bias, grid.vdd / 2.0, grid.temp_k, dvt=dvtn, mu_scale=grid.mun_scale
    )
    i_rise = drain_current_batch(
        header, bias, grid.vdd / 2.0, grid.temp_k, dvt=dvtp, mu_scale=grid.mup_scale
    )
    t_fall = load_cap * grid.vdd / i_fall
    t_rise = load_cap * grid.vdd / i_rise
    return t_rise, t_fall


register_delay_kernel(BalancedStage, _balanced_delays)
register_delay_kernel(NmosSensingStage, _nmos_sensing_delays)
register_delay_kernel(PmosSensingStage, _pmos_sensing_delays)
register_delay_kernel(StarvedStage, _starved_delays)
