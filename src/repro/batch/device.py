"""Array twins of the EKV device model.

These kernels evaluate :func:`repro.device.mosfet.drain_current` and
:func:`repro.device.stack.series_stack_current` over whole operating-point
grids in a handful of ufunc operations.  The device *geometry* stays scalar
(a population shares one netlist); what varies per point is the threshold
shift, the mobility scale, the bias voltages and the temperature — so those
enter as broadcastable ``dvt`` / ``mu_scale`` / voltage / temperature
arrays instead of per-point ``dataclasses.replace`` copies of
:class:`~repro.device.mosfet.MosfetParams`.

Every formula mirrors the scalar model line for line; the golden
equivalence tests in ``tests/test_batch_engine.py`` pin the two paths
together to ~1e-12 relative.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.device.mosfet import MosfetParams
from repro.device.stack import _STACK_EFFECT_UT_PER_DEVICE
from repro.units import BOLTZMANN, ELEMENTARY_CHARGE


def thermal_voltage_batch(temp_k) -> np.ndarray:
    """``U_T = k_B T / q`` for arrays of temperatures (validated upstream)."""
    return BOLTZMANN * np.asarray(temp_k, dtype=float) / ELEMENTARY_CHARGE


def threshold_voltage_batch(params: MosfetParams, temp_k, dvt=0.0) -> np.ndarray:
    """Threshold magnitude with an array-valued extra shift ``dvt``."""
    temp_k = np.asarray(temp_k, dtype=float)
    return (params.vt0 + dvt) + params.dvt_dt * (temp_k - params.temp_ref)


def _mobility_batch(params: MosfetParams, temp_k, mu_scale=1.0) -> np.ndarray:
    temp_k = np.asarray(temp_k, dtype=float)
    return (params.mu0 * mu_scale) * (temp_k / params.temp_ref) ** (
        -params.mobility_exponent
    )


def specific_current_batch(params: MosfetParams, temp_k, mu_scale=1.0) -> np.ndarray:
    """EKV specific current over a temperature/mobility grid."""
    ut = thermal_voltage_batch(temp_k)
    return (
        2.0
        * params.n_slope
        * _mobility_batch(params, temp_k, mu_scale)
        * params.cox
        * (params.width / params.length)
        * ut
        * ut
    )


def drain_current_batch(
    params: MosfetParams, vgs, vds, temp_k, dvt=0.0, mu_scale=1.0
) -> np.ndarray:
    """Drain-current magnitude over a grid of operating points.

    Args:
        params: Scalar device geometry (shared by every point).
        vgs: Gate-source magnitudes, broadcastable array.
        vds: Drain-source magnitudes, broadcastable array.
        temp_k: Temperatures in kelvin, broadcastable array.
        dvt: Extra threshold shift per point (die corner + frozen mismatch,
            and the stack-effect lift), volts.
        mu_scale: Mobility multiplier per point.
    """
    ut = thermal_voltage_batch(temp_k)
    vt = threshold_voltage_batch(params, temp_k, dvt)
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    vp = (vgs - vt) / params.n_slope
    i_f = np.logaddexp(0.0, vp / (2.0 * ut)) ** 2
    i_r = np.logaddexp(0.0, (vp - vds) / (2.0 * ut)) ** 2
    vsat = 1.0 + params.lambda_c * np.sqrt(i_f)
    return specific_current_batch(params, temp_k, mu_scale) * (i_f - i_r) / vsat


def series_stack_current_batch(
    params: MosfetParams, count: int, vgs, vds, temp_k, dvt=0.0, mu_scale=1.0
) -> np.ndarray:
    """Drain current of a ``count``-deep series stack over a grid.

    Mirrors :func:`repro.device.stack.series_stack_current`: the equivalent
    device has length ``count * L``, weaker velocity saturation, and a
    weak-inversion threshold lift of ``1.5 (count-1) U_T`` — the lift is
    temperature dependent, so it folds into the array-valued ``dvt``.
    """
    if count < 1:
        raise ValueError("stack count must be >= 1")
    if count == 1:
        return drain_current_batch(
            params, vgs, vds, temp_k, dvt=dvt, mu_scale=mu_scale
        )
    vt_lift = _STACK_EFFECT_UT_PER_DEVICE * (count - 1) * thermal_voltage_batch(temp_k)
    equivalent = replace(
        params,
        length=params.length * count,
        lambda_c=params.lambda_c / count,
    )
    return drain_current_batch(
        equivalent, vgs, vds, temp_k, dvt=dvt + vt_lift, mu_scale=mu_scale
    )
