"""Flat *paired* conversions: one grid element per (sensor, operating point).

:func:`read_population` evaluates the cross product ``sensors x temps`` —
the right shape for sweeps, and exactly the wrong shape for a *request
stream*, where N callers each want one specific sensor at one specific
condition.  :func:`read_paired` is the ragged twin: element ``i`` of the
flat grid pairs ``sensors[i]`` with ``temps_k[i]`` (and ``vdd[i]``), so a
coalesced batch of heterogeneous read requests costs exactly N lanes of
the vectorised kernels, never a dense product.

Reproducibility is preserved draw-for-draw against the *scalar request
order*: item ``i`` consumes three counter phases from ``sensors[i]``'s
private stream at its turn, which is precisely what the sequential loop
``for i: sensors[i].read(...)`` would consume.  A sensor appearing twice
in one batch therefore yields the same two readings as two back-to-back
scalar reads: counter values bit-identical, estimates within the engine's
shared tolerances (1e-3 K inversion, 1e-7 V extraction) — the golden
property ``tests/test_serve.py`` pins for the serving path, matching the
``read_population`` contract in ``tests/test_batch_engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.batch.bank import BankFrequenciesBatch, ring_frequency_batch
from repro.batch.energy import (
    ConversionEnergyBatch,
    conversion_energy_batch,
    conversion_time_batch,
)
from repro.batch.grid import EnvironmentGrid
from repro.batch.model import calibrate_batch
from repro.core.sensor import PTSensor
from repro.units import ZERO_CELSIUS_IN_KELVIN


@dataclass(frozen=True)
class PairedReadings:
    """Flat conversion results, one entry per requested (sensor, point) pair.

    Every array is shaped ``(n,)``; index ``i`` is field-for-field the
    :class:`~repro.core.sensor.SensorReading` the scalar call
    ``sensors[i].read_environment(env_i)`` would return.
    """

    temperature_c: np.ndarray
    dvtn: np.ndarray
    dvtp: np.ndarray
    counts_n: np.ndarray
    counts_p: np.ndarray
    counts_ref: np.ndarray
    energy: ConversionEnergyBatch
    conversion_time: np.ndarray
    rounds_used: np.ndarray
    converged: np.ndarray

    @property
    def temperature_k(self) -> np.ndarray:
        """Estimated junction temperatures in kelvin."""
        return self.temperature_c + ZERO_CELSIUS_IN_KELVIN

    def __len__(self) -> int:
        return int(self.temperature_c.size)


def paired_grid(
    sensors: Sequence[PTSensor], temps_k: np.ndarray, vdd: np.ndarray
) -> EnvironmentGrid:
    """Flat operating grid pairing ``sensors[i]`` with ``(temps_k[i], vdd[i])``."""
    n = len(sensors)
    dvtn = np.empty(n)
    dvtp = np.empty(n)
    mun = np.ones(n)
    mup = np.ones(n)
    for i, sensor in enumerate(sensors):
        dvtn[i], dvtp[i] = sensor.true_process_shifts()
        if sensor.die is not None:
            mun[i] = sensor.die.corner.mun_scale
            mup[i] = sensor.die.corner.mup_scale
    return EnvironmentGrid.of(
        temp_k=np.asarray(temps_k, dtype=float),
        vdd=np.asarray(vdd, dtype=float),
        dvtn=dvtn,
        dvtp=dvtp,
        mun_scale=mun,
        mup_scale=mup,
    )


def _paired_bank_frequencies(
    sensors: Sequence[PTSensor], grid: EnvironmentGrid
) -> BankFrequenciesBatch:
    """True ring frequencies of each pairing, one kernel call per role."""
    reference = sensors[0]

    def role_frequencies(role: str) -> np.ndarray:
        oscillators = [getattr(s.bank, role) for s in sensors]
        template = getattr(reference.bank, role)
        return ring_frequency_batch(
            template.stage,
            template.stages,
            reference.technology,
            grid,
            vtn_offset=np.array([o.vtn_offset for o in oscillators]),
            vtp_offset=np.array([o.vtp_offset for o in oscillators]),
        )

    return BankFrequenciesBatch(
        psro_n=role_frequencies("psro_n"),
        psro_p=role_frequencies("psro_p"),
        tsro=role_frequencies("tsro"),
        reference=np.zeros(grid.shape),
    )


def read_paired(
    sensors: Sequence[PTSensor],
    temps_k,
    vdd=None,
    deterministic: bool = False,
    assume_vdd: Optional[float] = None,
) -> PairedReadings:
    """Run one full conversion per (sensor, operating point) pairing.

    Array twin of the sequential request loop ``for i:
    sensors[i].read_environment(Environment(temps_k[i], vdd[i]))`` — same
    frequencies, same quantised counts, same calibration fixes, same
    rng-stream consumption order.  ``sensors`` may contain repeats; each
    occurrence consumes that sensor's private phase stream at its position
    in the batch, so interleaving batched and scalar reads stays
    reproducible.

    Args:
        sensors: One sensor per requested conversion (a uniform design —
            validated via :meth:`PTSensor.design_key`).
        temps_k: True junction temperature per pairing, kelvin; scalar or
            shape ``(n,)``.
        vdd: True supply per pairing (``None`` = nominal); scalar or
            shape ``(n,)``.
        deterministic: Suppress counter phase randomness (mid-phase
            counts); no rng stream is consumed.
        assume_vdd: Supply the calibration logic assumes (see
            :meth:`PTSensor.read`).

    Raises:
        ValueError: On an empty batch, mixed designs, or mismatched
            array lengths.
    """
    sensors = list(sensors)
    if not sensors:
        raise ValueError("need at least one (sensor, point) pairing")
    reference = sensors[0]
    reference_key = reference.design_key()
    for sensor in sensors[1:]:
        if sensor.design_key() != reference_key:
            raise ValueError(
                "read_paired requires sensors of a single design "
                "(same config, technology and stage models)"
            )
    config = reference.config

    n = len(sensors)
    temps_k = np.broadcast_to(np.asarray(temps_k, dtype=float), (n,))
    if np.any(temps_k <= 0.0):
        raise ValueError("temperatures must be above absolute zero")
    if vdd is None:
        vdd = reference.technology.vdd
    vdd = np.broadcast_to(np.asarray(vdd, dtype=float), (n,))

    grid = paired_grid(sensors, temps_k, vdd)
    frequencies = _paired_bank_frequencies(sensors, grid)

    # Counter phases: three draws per pairing, taken from each sensor's
    # private stream in batch order — the scalar loop's consumption order.
    if deterministic:
        phases = np.full((n, 3), 0.5)
    else:
        phases = np.empty((n, 3))
        for i, sensor in enumerate(sensors):
            phases[i] = sensor._rng.uniform(0.0, 1.0, size=3)

    window = config.psro_window
    max_psro = (1 << config.psro_counter_bits) - 1
    max_tsro = (1 << config.tsro_counter_bits) - 1

    f_n = frequencies.psro_n
    f_p = frequencies.psro_p
    f_t = frequencies.tsro

    counts_n = np.floor(f_n * window + phases[:, 0]).astype(np.int64) & max_psro
    counts_p = np.floor(f_p * window + phases[:, 1]).astype(np.int64) & max_psro
    counts_ref = np.minimum(
        np.floor(
            (config.tsro_periods / f_t) * config.ref_clock_hz + phases[:, 2]
        ).astype(np.int64),
        max_tsro,
    )
    if np.any(counts_ref < 1):
        raise ValueError("TSRO period timer returned a zero count")

    f_n_hat = counts_n / window
    f_p_hat = counts_p / window
    f_t_hat = config.tsro_periods * config.ref_clock_hz / counts_ref

    calibration = calibrate_batch(
        reference.model,
        f_n_hat,
        f_p_hat,
        f_t_hat,
        vdd=assume_vdd,
        lut=reference.lut,
    )

    energy = conversion_energy_batch(reference.bank, grid, config, frequencies)
    conversion_time = conversion_time_batch(config, f_t)

    return PairedReadings(
        temperature_c=calibration.temp_k - ZERO_CELSIUS_IN_KELVIN,
        dvtn=calibration.dvtn,
        dvtp=calibration.dvtp,
        counts_n=counts_n,
        counts_p=counts_p,
        counts_ref=counts_ref,
        energy=energy,
        conversion_time=conversion_time,
        rounds_used=calibration.rounds_used,
        converged=calibration.converged,
    )
