"""The fleet's client surface: routed, hedged, replica-aware reads.

:class:`FleetRouter` turns a :class:`~repro.fleet.directory.FleetDirectory`
plus a live host-health view into per-read target lists (primary first,
degraded hosts demoted, dead hosts skipped).  :class:`FleetClient`
(blocking) and :class:`AsyncFleetClient` (asyncio) ride on it, speaking
either edge wire (``ndjson`` or ``binary``):

* each read goes to the shard's **primary** replica;
* if the primary has not answered within the hedge budget — the
  *secondary's* tracked latency quantile, i.e. the point at which the
  secondary would probably already have answered (see
  :class:`~repro.fleet.hedge.HedgePolicy`) — an identical request races
  that secondary replica;
* the first answer wins.  Deterministic replicas make either answer
  authoritative, so there is no reconciliation — the loser is cancelled
  (async) or abandoned to complete in the background (sync sockets
  cannot be cancelled mid-flight), and the accounting says which.

Winners are stamped with :attr:`EdgeResult.hedged`, the winning
:attr:`EdgeResult.host` and the fleet-wide :attr:`EdgeResult.attempts`
(network attempts issued for the logical read, across hosts).  Counts —
reads, hedges, hedge wins, cancelled/abandoned losers, failovers — are
exact, exposed via :meth:`FleetClient.stats` and the ``fleet.*``
telemetry instruments.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.edge import protocol
from repro.edge.client import AsyncEdgeClient, EdgeClient, RetryPolicy
from repro.edge.protocol import EdgeError, EdgeResult
from repro.fleet.directory import FleetDirectory, HostSpec
from repro.fleet.hedge import HedgePolicy, LatencyTracker
from repro.serve.requests import ReadRequest

_READS = telemetry.counter(
    "fleet.reads", unit="reads", help="Logical reads issued through fleet clients"
)
_HEDGES = telemetry.counter(
    "fleet.hedges", unit="requests",
    help="Hedge requests launched (primary outlived its latency budget)",
)
_HEDGE_WINS = telemetry.counter(
    "fleet.hedge_wins", unit="requests",
    help="Hedged reads won by the secondary replica",
)
_FAILOVERS = telemetry.counter(
    "fleet.failovers", unit="reads",
    help="Reads answered by a non-primary replica after the primary failed",
)
_READ_MS = telemetry.histogram(
    "fleet.read_ms", unit="ms",
    help="Client-observed end-to-end fleet read latency (winner's answer)",
)
_BUDGET_MS = telemetry.histogram(
    "fleet.hedge_budget_ms", unit="ms",
    help="Hedge budgets applied to reads (the secondary's tracked quantile)",
)

#: Host health vocabulary shared by router and supervisor.
HOST_HEALTHY = "healthy"
HOST_DEGRADED = "degraded"
HOST_DEAD = "dead"
HOST_STATES = (HOST_HEALTHY, HOST_DEGRADED, HOST_DEAD)


class FleetRouter:
    """Placement + health → the ordered target list of one read.

    Thread-safe; the supervisor swaps in successor directories
    (generation-checked) and flips host health from its probe thread
    while clients route.
    """

    def __init__(self, directory: FleetDirectory) -> None:
        self._lock = threading.Lock()
        self._directory = directory
        self._health: Dict[str, str] = {
            spec.name: HOST_HEALTHY for spec in directory.hosts
        }

    @property
    def directory(self) -> FleetDirectory:
        with self._lock:
            return self._directory

    def update_directory(self, directory: FleetDirectory) -> bool:
        """Adopt a successor placement; stale generations are refused."""
        with self._lock:
            if directory.generation <= self._directory.generation:
                return False
            self._directory = directory
            for spec in directory.hosts:
                self._health.setdefault(spec.name, HOST_HEALTHY)
            return True

    def mark(self, name: str, state: str) -> None:
        """Set one host's health (``healthy`` / ``degraded`` / ``dead``)."""
        if state not in HOST_STATES:
            raise ValueError(f"state must be one of {HOST_STATES}, not {state!r}")
        with self._lock:
            self._health[name] = state

    def health(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._health)

    def targets(self, stack_id: int) -> List[HostSpec]:
        """Replicas to try for ``stack_id``: primary first, dead skipped.

        Degraded hosts are demoted behind healthy ones (stable order
        otherwise), so a wobbling host stops being primary before the
        supervisor declares it dead.
        """
        with self._lock:
            replicas = self._directory.replicas_for_stack(stack_id)
            health = self._health
            healthy = [r for r in replicas if health.get(r.name) == HOST_HEALTHY]
            degraded = [
                r for r in replicas if health.get(r.name) == HOST_DEGRADED
            ]
        return healthy + degraded


class _HostPool:
    """A small checkout pool of blocking :class:`EdgeClient` connections.

    The sync client is one-outstanding-operation-per-socket, so a hedged
    read needs two sockets; abandoned losers keep theirs until they
    finish and check it back in.
    """

    def __init__(self, spec: HostSpec, wire: str, timeout_s: float,
                 retry: RetryPolicy) -> None:
        self.spec = spec
        self._wire = wire
        self._timeout_s = timeout_s
        self._retry = retry
        self._lock = threading.Lock()
        self._idle: List[EdgeClient] = []

    def checkout(self) -> EdgeClient:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        return EdgeClient(
            self.spec.host,
            self.spec.port,
            timeout_s=self._timeout_s,
            retry=self._retry,
            wire=self._wire,
        )

    def checkin(self, client: EdgeClient) -> None:
        with self._lock:
            self._idle.append(client)

    def discard(self, client: EdgeClient) -> None:
        client.close()

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()


class FleetClient:
    """Blocking hedged client over a fleet of edge hosts.

    ``hedge.enabled=False`` degenerates to primary-only reads with
    failover — the unhedged comparison arm of the fleet benchmark.
    """

    def __init__(
        self,
        router: "FleetRouter | FleetDirectory",
        wire: str = "ndjson",
        hedge: HedgePolicy = HedgePolicy(),
        retry: RetryPolicy = RetryPolicy(),
        timeout_s: float = 30.0,
        max_workers: int = 32,
    ) -> None:
        self.router = (
            router if isinstance(router, FleetRouter) else FleetRouter(router)
        )
        self.wire = wire
        self.hedge = hedge
        self.retry = retry
        self.timeout_s = timeout_s
        self.tracker = LatencyTracker(window=hedge.window)
        self._pools: Dict[str, _HostPool] = {}
        self._pools_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fleet-read"
        )
        self._stats_lock = threading.Lock()
        self._stats = {
            "reads": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "losers_abandoned": 0,
            "failovers": 0,
            "errors": 0,
        }

    # ------------------------------------------------------------- plumbing

    def _pool(self, spec: HostSpec) -> _HostPool:
        with self._pools_lock:
            pool = self._pools.get(spec.name)
            if pool is None or pool.spec.address != spec.address:
                pool = _HostPool(spec, self.wire, self.timeout_s, self.retry)
                self._pools[spec.name] = pool
            return pool

    def _count(self, key: str, by: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += by

    def _read_one(
        self,
        spec: HostSpec,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float],
        observe: bool = True,
    ) -> EdgeResult:
        pool = self._pool(spec)
        client = pool.checkout()
        started = time.perf_counter()
        try:
            result = client.read(stack_id, request, deadline_ms=deadline_ms)
        except BaseException:
            # The socket may hold a half-read answer; never reuse it.
            pool.discard(client)
            raise
        pool.checkin(client)
        # Track the *client-observed* latency: it includes the wire, the
        # edge's queueing and any injected stall — the tail a hedge
        # budget must anticipate (the server-side ``latency_ms`` sees
        # none of those).
        if observe:
            self.tracker.observe(
                spec.name, (time.perf_counter() - started) * 1e3
            )
        return replace(result, host=spec.name)

    # ----------------------------------------------------------------- reads

    def read(
        self,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float] = None,
    ) -> EdgeResult:
        """One logical fleet read: primary, hedged to a secondary on a
        slow tail, failed over on a dead primary.

        Raises:
            EdgeError: ``shard_down`` when no live replica answered; any
                non-retryable error from the winning attempt.
        """
        _READS.inc()
        self._count("reads")
        targets = self.router.targets(stack_id)
        if not targets:
            self._count("errors")
            raise EdgeError(
                protocol.SHARD_DOWN,
                f"no live replica for stack {stack_id} "
                f"(generation {self.router.directory.generation})",
            )
        primary, secondaries = targets[0], targets[1:]
        started = time.perf_counter() * 1e3
        futures: Dict[Future, HostSpec] = {
            self._executor.submit(
                self._read_one, primary, stack_id, request, deadline_ms
            ): primary
        }
        attempts_launched = 1
        hedged = False
        if self.hedge.enabled and secondaries:
            budget_ms = self.tracker.budget_ms(secondaries[0].name, self.hedge)
            _BUDGET_MS.observe(budget_ms)
            done, _pending = wait(futures, timeout=budget_ms / 1e3)
            if not done:
                hedged = True
                _HEDGES.inc()
                self._count("hedges")
                # observe=False: hedge attempts run only when the fleet is
                # already slow, so their latencies are biased samples —
                # feeding them back into the hedge target's window
                # inflates its quantile, which raises the budget, which
                # delays every later hedge (a positive feedback loop).
                # Budgets derive from primary-attempt latencies only.
                futures[
                    self._executor.submit(
                        self._read_one,
                        secondaries[0],
                        stack_id,
                        request,
                        deadline_ms,
                        False,
                    )
                ] = secondaries[0]
                fallbacks = secondaries[1:]
                attempts_launched += 1
            else:
                fallbacks = secondaries
        else:
            fallbacks = secondaries
        result = self._collect(
            futures,
            primary,
            stack_id,
            request,
            deadline_ms,
            hedged,
            attempts_launched,
            list(fallbacks),
        )
        _READ_MS.observe(time.perf_counter() * 1e3 - started)
        return result

    def _collect(
        self,
        futures: Dict[Future, HostSpec],
        primary: HostSpec,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float],
        hedged: bool,
        attempts_launched: int,
        fallbacks: List[HostSpec],
    ) -> EdgeResult:
        """First successful answer wins; losers are abandoned, counted.

        When every launched attempt has failed retryably and untried
        replicas remain, the next one is launched (a *failover*) — so a
        dead primary degrades a read to a slower success, not an error.
        """
        pending = dict(futures)
        last_error: Optional[EdgeError] = None
        while pending:
            done, _ = wait(list(pending), return_when=FIRST_COMPLETED)
            for future in done:
                spec = pending.pop(future)
                try:
                    result = future.result()
                except EdgeError as error:
                    last_error = error
                    if not error.retryable and not pending:
                        self._count("errors")
                        raise
                    continue
                except OSError as error:
                    # A dead host refuses the pool's fresh connection
                    # before any protocol exchange — retryable.
                    last_error = EdgeError(
                        protocol.SHARD_DOWN,
                        f"{spec.name} unreachable: {error}",
                    )
                    continue
                # Winner. Abandoned losers run to completion in their
                # worker thread (observed for latency, then dropped).
                if pending:
                    self._count("losers_abandoned", len(pending))
                if hedged and spec.name != primary.name:
                    _HEDGE_WINS.inc()
                    self._count("hedge_wins")
                extra = result.attempts - 1
                return replace(
                    result,
                    hedged=hedged,
                    attempts=attempts_launched + extra,
                )
            if not pending and fallbacks:
                spec = fallbacks.pop(0)
                _FAILOVERS.inc()
                self._count("failovers")
                attempts_launched += 1
                pending[
                    self._executor.submit(
                        self._read_one, spec, stack_id, request, deadline_ms
                    )
                ] = spec
        self._count("errors")
        if last_error is not None:
            raise last_error
        raise EdgeError(
            protocol.SHARD_DOWN, f"every replica of stack {stack_id} failed"
        )

    def warm(self, stack_id: int, request: ReadRequest) -> int:
        """Prime every live replica of ``stack_id`` with ``request``.

        Sequential reads against the primary *and* each secondary: a
        stack's first read on a host pays its conversion, and a hedge is
        only useful if it lands on an already-warm secondary.  The cold
        latencies are deliberately kept out of the latency tracker so
        they cannot inflate hedge budgets.  Returns how many replicas
        answered; replica errors are swallowed.
        """
        served = 0
        for spec in self.router.targets(stack_id):
            try:
                self._read_one(spec, stack_id, request, None, observe=False)
            except (EdgeError, OSError):
                continue
            served += 1
        return served

    # ----------------------------------------------------------------- admin

    def stats(self) -> Dict[str, Any]:
        """Exact hedge/failover accounting plus per-host latency."""
        with self._stats_lock:
            counts = dict(self._stats)
        counts["hosts"] = dict(self.tracker.snapshot())
        counts["generation"] = self.router.directory.generation
        return counts

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        with self._pools_lock:
            pools, self._pools = dict(self._pools), {}
        for pool in pools.values():
            pool.close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncFleetClient:
    """Asyncio hedged client; cancels the losing attempt outright."""

    def __init__(
        self,
        router: "FleetRouter | FleetDirectory",
        wire: str = "ndjson",
        hedge: HedgePolicy = HedgePolicy(),
        retry: RetryPolicy = RetryPolicy(),
    ) -> None:
        self.router = (
            router if isinstance(router, FleetRouter) else FleetRouter(router)
        )
        self.wire = wire
        self.hedge = hedge
        self.retry = retry
        self.tracker = LatencyTracker(window=hedge.window)
        self._clients: Dict[str, AsyncEdgeClient] = {}
        self.stats: Dict[str, int] = {
            "reads": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "losers_cancelled": 0,
            "failovers": 0,
            "errors": 0,
        }

    def _client(self, spec: HostSpec) -> AsyncEdgeClient:
        client = self._clients.get(spec.name)
        if client is None:
            # resolve= re-reads the directory per (re)connect, so a
            # retry after failover lands on the host's current address.
            def resolve(name: str = spec.name) -> Tuple[str, int]:
                return self.router.directory.host(name).address

            client = AsyncEdgeClient(
                spec.host,
                spec.port,
                retry=self.retry,
                wire=self.wire,
                resolve=resolve,
            )
            self._clients[spec.name] = client
        return client

    async def _read_one(
        self,
        spec: HostSpec,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float],
        observe: bool = True,
    ) -> EdgeResult:
        started = time.perf_counter()
        result = await self._client(spec).read(
            stack_id, request, deadline_ms=deadline_ms
        )
        if observe:
            self.tracker.observe(
                spec.name, (time.perf_counter() - started) * 1e3
            )
        return replace(result, host=spec.name)

    async def warm(self, stack_id: int, request: ReadRequest) -> int:
        """Prime every live replica of ``stack_id``; see
        :meth:`FleetClient.warm`.  Cold latencies stay out of the
        tracker."""
        served = 0
        for spec in self.router.targets(stack_id):
            try:
                await self._read_one(
                    spec, stack_id, request, None, observe=False
                )
            except (EdgeError, OSError):
                continue
            served += 1
        return served

    async def read(
        self,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float] = None,
    ) -> EdgeResult:
        """Hedged read with true cancel-on-first-win."""
        _READS.inc()
        self.stats["reads"] += 1
        targets = self.router.targets(stack_id)
        if not targets:
            self.stats["errors"] += 1
            raise EdgeError(
                protocol.SHARD_DOWN, f"no live replica for stack {stack_id}"
            )
        primary, secondaries = targets[0], targets[1:]
        started = time.perf_counter() * 1e3
        tasks: Dict["asyncio.Task", HostSpec] = {
            asyncio.ensure_future(
                self._read_one(primary, stack_id, request, deadline_ms)
            ): primary
        }
        attempts_launched = 1
        hedged = False
        if self.hedge.enabled and secondaries:
            budget_ms = self.tracker.budget_ms(secondaries[0].name, self.hedge)
            _BUDGET_MS.observe(budget_ms)
            done, _ = await asyncio.wait(tasks, timeout=budget_ms / 1e3)
            if not done:
                hedged = True
                _HEDGES.inc()
                self.stats["hedges"] += 1
                # observe=False — see FleetClient.read: hedge-attempt
                # latencies are biased and would feed back into the
                # budget they were launched under.
                tasks[
                    asyncio.ensure_future(
                        self._read_one(
                            secondaries[0],
                            stack_id,
                            request,
                            deadline_ms,
                            observe=False,
                        )
                    )
                ] = secondaries[0]
                fallbacks = secondaries[1:]
                attempts_launched += 1
            else:
                fallbacks = secondaries
        else:
            fallbacks = secondaries
        try:
            result = await self._collect(
                tasks,
                primary,
                stack_id,
                request,
                deadline_ms,
                hedged,
                attempts_launched,
                list(fallbacks),
            )
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
                    self.stats["losers_cancelled"] += 1
        _READ_MS.observe(time.perf_counter() * 1e3 - started)
        return result

    async def _collect(
        self,
        tasks: Dict["asyncio.Task", HostSpec],
        primary: HostSpec,
        stack_id: int,
        request: ReadRequest,
        deadline_ms: Optional[float],
        hedged: bool,
        attempts_launched: int,
        fallbacks: List[HostSpec],
    ) -> EdgeResult:
        pending = dict(tasks)
        last_error: Optional[EdgeError] = None
        while pending:
            done, _ = await asyncio.wait(
                list(pending), return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                spec = pending.pop(task)
                try:
                    result = task.result()
                except asyncio.CancelledError:
                    continue
                except EdgeError as error:
                    last_error = error
                    if not error.retryable and not pending:
                        self.stats["errors"] += 1
                        raise
                    continue
                except OSError as error:
                    last_error = EdgeError(
                        protocol.SHARD_DOWN,
                        f"{spec.name} unreachable: {error}",
                    )
                    continue
                if hedged and spec.name != primary.name:
                    _HEDGE_WINS.inc()
                    self.stats["hedge_wins"] += 1
                extra = result.attempts - 1
                return replace(
                    result,
                    hedged=hedged,
                    attempts=attempts_launched + extra,
                )
            if not pending and fallbacks:
                spec = fallbacks.pop(0)
                _FAILOVERS.inc()
                self.stats["failovers"] += 1
                attempts_launched += 1
                new_task = asyncio.ensure_future(
                    self._read_one(spec, stack_id, request, deadline_ms)
                )
                pending[new_task] = spec
                tasks[new_task] = spec
        self.stats["errors"] += 1
        if last_error is not None:
            raise last_error
        raise EdgeError(
            protocol.SHARD_DOWN, f"every replica of stack {stack_id} failed"
        )

    async def close(self) -> None:
        clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            await client.close()

    async def __aenter__(self) -> "AsyncFleetClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
