"""Multi-host federation: replicated shards, hedged reads, placement.

The fleet layer federates several deterministic
:class:`~repro.edge.server.EdgeServer` hosts behind one client surface:

* :class:`FleetDirectory` / :class:`HostSpec` — generation-stamped
  placement: shard → replica set, per-tier replication factors,
  failure-domain-aware host selection.
* :class:`FleetRouter`, :class:`FleetClient`, :class:`AsyncFleetClient`
  — hedged reads over either edge wire with exact
  ``hedged``/``attempts`` accounting.
* :class:`FleetSupervisor` — ``admin.status`` health probes, host
  degradation/death, failover and rebalancing.
* :class:`FleetFaultPlan` / :class:`HostFault` — declarative host-level
  chaos (stalls, kills) for benchmarks and tests.
* :func:`run_fleet_bench` — the distributed wall-clock benchmark over
  real localhost processes.

See ``docs/fleet.md`` for placement rules and hedging policy knobs.
"""

from repro.fleet.bench import (
    FleetArmResult,
    FleetBenchConfig,
    FleetBenchReport,
    build_fleet,
    run_fleet_bench,
)
from repro.fleet.client import (
    HOST_DEAD,
    HOST_DEGRADED,
    HOST_HEALTHY,
    AsyncFleetClient,
    FleetClient,
    FleetRouter,
)
from repro.fleet.directory import (
    DEFAULT_TIER,
    FleetDirectory,
    HostSpec,
)
from repro.fleet.faults import FleetFaultPlan, HostFault
from repro.fleet.hedge import HedgePolicy, LatencyTracker
from repro.fleet.supervisor import FleetSupervisor, SupervisorPolicy

__all__ = sorted(
    [
        "AsyncFleetClient",
        "DEFAULT_TIER",
        "FleetArmResult",
        "FleetBenchConfig",
        "FleetBenchReport",
        "FleetClient",
        "FleetDirectory",
        "FleetFaultPlan",
        "FleetRouter",
        "FleetSupervisor",
        "HOST_DEAD",
        "HOST_DEGRADED",
        "HOST_HEALTHY",
        "HedgePolicy",
        "HostFault",
        "HostSpec",
        "LatencyTracker",
        "SupervisorPolicy",
        "build_fleet",
        "run_fleet_bench",
    ]
)
