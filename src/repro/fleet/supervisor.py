"""Fleet-level supervision: health probes, failover, rebalancing.

The edge's :class:`~repro.edge.supervisor.ShardPool` supervises worker
*processes* inside one host; :class:`FleetSupervisor` supervises the
*hosts*.  A background thread round-trips the existing ``admin.status``
op through each member on a fixed cadence and drives a small state
machine per host:

``healthy`` → (``degraded_after`` consecutive probe failures) →
``degraded`` → (``dead_after``) → ``dead`` → (one successful probe) →
``healthy``

State flips feed the shared :class:`~repro.fleet.client.FleetRouter`
immediately — a degraded host stops being anyone's primary, a dead host
stops being a target at all.  On death the supervisor also *rebalances*:
it publishes a successor :class:`~repro.fleet.directory.FleetDirectory`
without the dead host (``generation + 1``, same generation-stamped
pattern as the edge's topology rings), so every shard regains its full
replica count among the survivors; recovery adds the host back at the
next generation.  Routers refuse stale generations, so a slow probe
thread can never roll placement backwards.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import telemetry
from repro.edge.client import AdminClient
from repro.edge.protocol import EdgeError
from repro.fleet.client import (
    HOST_DEAD,
    HOST_DEGRADED,
    HOST_HEALTHY,
    FleetRouter,
)
from repro.fleet.directory import HostSpec

_CHECKS = telemetry.counter(
    "fleet.health_checks", unit="probes",
    help="admin.status probes issued by the fleet supervisor",
)
_TRANSITIONS = telemetry.counter(
    "fleet.host_transitions", unit="events",
    help="Host health state changes (healthy/degraded/dead)",
)
_HOSTS = telemetry.gauge(
    "fleet.hosts", unit="hosts", help="Hosts in the fleet directory"
)
_HOSTS_HEALTHY = telemetry.gauge(
    "fleet.hosts_healthy", unit="hosts",
    help="Hosts currently probing healthy",
)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Cadence and thresholds of fleet host supervision."""

    interval_s: float = 1.0
    timeout_s: float = 5.0
    degraded_after: int = 1
    dead_after: int = 3
    rebalance: bool = True

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if not 1 <= self.degraded_after <= self.dead_after:
            raise ValueError("need 1 <= degraded_after <= dead_after")


class FleetSupervisor:
    """Health-checks fleet members and keeps the router's view live."""

    def __init__(
        self,
        router: FleetRouter,
        policy: SupervisorPolicy = SupervisorPolicy(),
        wire: str = "ndjson",
    ) -> None:
        self.router = router
        self.policy = policy
        self.wire = wire
        self._failures: Dict[str, int] = {}
        self._states: Dict[str, str] = {}
        self._removed: Dict[str, HostSpec] = {}
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle

    def start(self) -> "FleetSupervisor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="fleet-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.policy.timeout_s + self.policy.interval_s)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.check_once()
            except Exception:  # noqa: BLE001 - supervision must not die
                pass
            self._stop.wait(self.policy.interval_s)

    # --------------------------------------------------------------- probing

    def _probe(self, spec: HostSpec) -> bool:
        _CHECKS.inc()
        client = AdminClient(
            spec.host,
            spec.port,
            token=spec.admin_token,
            timeout_s=self.policy.timeout_s,
            wire=self.wire,
        )
        try:
            status = client.status()
        except (EdgeError, OSError):
            return False
        finally:
            client.close()
        return bool(status.get("ok", True))

    def check_once(self) -> Dict[str, str]:
        """One probe round over every member (current and removed).

        Removed (dead) hosts keep being probed so recovery is noticed
        and the host rejoins the directory.  Returns the resulting
        host → state map.
        """
        directory = self.router.directory
        with self._lock:
            removed = dict(self._removed)
        members = {spec.name: spec for spec in directory.hosts}
        members.update(removed)
        for name, spec in sorted(members.items()):
            alive = self._probe(spec)
            self._transition(spec, alive)
        states = self.states()
        _HOSTS.set(len(self.router.directory.hosts))
        _HOSTS_HEALTHY.set(
            sum(1 for state in states.values() if state == HOST_HEALTHY)
        )
        return states

    def _transition(self, spec: HostSpec, alive: bool) -> None:
        with self._lock:
            previous = self._states.get(spec.name, HOST_HEALTHY)
            if alive:
                self._failures[spec.name] = 0
                state = HOST_HEALTHY
            else:
                failures = self._failures.get(spec.name, 0) + 1
                self._failures[spec.name] = failures
                if failures >= self.policy.dead_after:
                    state = HOST_DEAD
                elif failures >= self.policy.degraded_after:
                    state = HOST_DEGRADED
                else:
                    state = previous
            self._states[spec.name] = state
        if state == previous:
            return
        _TRANSITIONS.inc()
        self.router.mark(spec.name, state)
        with self._lock:
            self._events.append(
                {
                    "host": spec.name,
                    "from": previous,
                    "to": state,
                    "at": time.time(),
                }
            )
        if state == HOST_DEAD:
            self._rebalance_out(spec)
        elif previous == HOST_DEAD and state == HOST_HEALTHY:
            self._rebalance_in(spec)

    def _rebalance_out(self, spec: HostSpec) -> None:
        """Publish a successor placement without a dead host."""
        if not self.policy.rebalance:
            return
        directory = self.router.directory
        if spec.name not in {h.name for h in directory.hosts}:
            return
        survivors = tuple(h for h in directory.hosts if h.name != spec.name)
        if not survivors:
            return  # a fleet of zero hosts routes nothing; keep the map
        try:
            successor = directory.without(spec.name)
        except ValueError:
            # Replication exceeds the surviving fleet; serving degraded
            # beats serving nothing — keep the old placement and let the
            # router's health view skip the dead host.
            return
        if self.router.update_directory(successor):
            with self._lock:
                self._removed[spec.name] = spec

    def _rebalance_in(self, spec: HostSpec) -> None:
        """Re-admit a recovered host at the next generation."""
        if not self.policy.rebalance:
            return
        with self._lock:
            self._removed.pop(spec.name, None)
        directory = self.router.directory
        if spec.name in {h.name for h in directory.hosts}:
            return
        self.router.update_directory(directory.with_host(spec))

    # --------------------------------------------------------------- queries

    def states(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._states)

    def events(self) -> List[Dict[str, Any]]:
        """Health transitions observed so far (oldest first)."""
        with self._lock:
            return list(self._events)

    def status(self) -> Dict[str, Any]:
        """Fleet-level health summary (CLI / tests)."""
        directory = self.router.directory
        states = self.states()
        return {
            "generation": directory.generation,
            "hosts": {
                spec.name: {
                    "address": f"{spec.host}:{spec.port}",
                    "domain": spec.domain,
                    "state": states.get(spec.name, HOST_HEALTHY),
                }
                for spec in directory.hosts
            },
            "removed": sorted(self._removed),
            "transitions": len(self.events()),
        }
