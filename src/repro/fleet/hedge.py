"""Hedging policy and the per-host latency tracking behind it.

A hedged read sends the request to the primary replica, waits a *latency
budget*, and — if the primary has not answered — races a second copy
against a secondary replica.  Deterministic replicas make this sound:
either answer is authoritative, so the client takes the first and
abandons the other.  The budget is the interesting part: too low and
every read doubles the fleet's load, too high and the hedge never fires
in time to help.  :class:`LatencyTracker` keeps a bounded window of
observed latencies per host and serves the configured quantile (p99 by
default) as that host's budget, so hedging adapts to each host's actual
tail rather than a global guess.

Everything here is thread-safe and consumes no randomness.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Mapping, Optional


@dataclass(frozen=True)
class HedgePolicy:
    """When and how aggressively the fleet client hedges.

    Attributes:
        enabled: Master switch; off, every read is a plain primary read
            (the comparison arm of the fleet benchmark).
        quantile: Latency quantile of the *hedge target* (the secondary
            replica) used as the budget: once the primary has been
            outstanding longer than the secondary's q-quantile, the
            secondary would probably already have answered — hedge.
            Keyed on the secondary, not the primary, so a host that is
            *constantly* slow (whose own p99 absorbs its slowness)
            still gets hedged around.
        initial_budget_ms: Budget used for a host with fewer than
            ``min_samples`` observations.
        min_budget_ms / max_budget_ms: Clamp on the adaptive budget —
            the floor stops a fast host from turning every read into
            two, the ceiling keeps hedges useful under a fat tail.
        min_samples: Observations of a host before its measured
            quantile replaces ``initial_budget_ms``.
        window: Latency samples retained per host (bounded ring).
    """

    enabled: bool = True
    quantile: float = 0.99
    initial_budget_ms: float = 20.0
    min_budget_ms: float = 1.0
    max_budget_ms: float = 500.0
    min_samples: int = 16
    window: int = 512

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {self.quantile}")
        if self.initial_budget_ms < 0.0:
            raise ValueError("initial_budget_ms must be non-negative")
        if not 0.0 <= self.min_budget_ms <= self.max_budget_ms:
            raise ValueError(
                "need 0 <= min_budget_ms <= max_budget_ms, got "
                f"[{self.min_budget_ms}, {self.max_budget_ms}]"
            )
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.window < self.min_samples:
            raise ValueError("window must be >= min_samples")

    def clamp(self, budget_ms: float) -> float:
        return min(max(budget_ms, self.min_budget_ms), self.max_budget_ms)


class LatencyTracker:
    """Bounded per-host latency windows with quantile queries.

    ``observe`` is an append under one lock; ``quantile_ms`` sorts the
    (small, bounded) window on demand — budgets are read once per hedge
    decision, not per packet, so the sort stays off the hot path.
    """

    def __init__(self, window: int = 512) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._lock = threading.Lock()
        self._samples: Dict[str, Deque[float]] = {}

    def observe(self, host: str, latency_ms: float) -> None:
        """Record one completed request against ``host``."""
        with self._lock:
            ring = self._samples.get(host)
            if ring is None:
                ring = deque(maxlen=self.window)
                self._samples[host] = ring
            ring.append(float(latency_ms))

    def count(self, host: str) -> int:
        with self._lock:
            ring = self._samples.get(host)
            return 0 if ring is None else len(ring)

    def reset(self) -> None:
        """Drop every window — e.g. after a warm-up pass whose cold-start
        latencies would otherwise sit in the tail until evicted."""
        with self._lock:
            self._samples.clear()

    def quantile_ms(self, host: str, q: float) -> Optional[float]:
        """The ``q``-quantile of ``host``'s window (None when empty)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1], got {q}")
        with self._lock:
            ring = self._samples.get(host)
            if not ring:
                return None
            ordered = sorted(ring)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def p99_ms(self, host: str) -> Optional[float]:
        return self.quantile_ms(host, 0.99)

    def budget_ms(self, host: str, policy: HedgePolicy) -> float:
        """The hedge budget for reads whose primary is ``host``."""
        if self.count(host) < policy.min_samples:
            return policy.clamp(policy.initial_budget_ms)
        measured = self.quantile_ms(host, policy.quantile)
        if measured is None:
            return policy.clamp(policy.initial_budget_ms)
        return policy.clamp(measured)

    def snapshot(self) -> Mapping[str, Dict[str, float]]:
        """Per-host latency summary (count / p50 / p99) for status ops."""
        with self._lock:
            hosts = {host: list(ring) for host, ring in self._samples.items()}
        summary: Dict[str, Dict[str, float]] = {}
        for host, samples in hosts.items():
            if not samples:
                continue
            ordered = sorted(samples)
            summary[host] = {
                "count": float(len(ordered)),
                "p50_ms": ordered[int(round(0.50 * (len(ordered) - 1)))],
                "p99_ms": ordered[int(round(0.99 * (len(ordered) - 1)))],
            }
        return summary
