"""Declarative host-level fault plans for fleet chaos and benchmarks.

:mod:`repro.faults` speaks sensor physics — TSV opens, droop, runaway —
injected *inside* a shard worker.  Fleet experiments need a different
vocabulary: whole-host behaviours like "this host answers 50 ms late"
or "this host is killed mid-traffic".  :class:`FleetFaultPlan` declares
those per host; the bench harness and the ``fleet`` CLI translate them
into deployments (a ``stall`` becomes the host's
:attr:`~repro.edge.server.EdgeConfig.stall_ms`) and runtime actions (a
``down`` host is stopped after ``after_reads`` logical reads).

Plans are frozen data, like :class:`~repro.faults.plan.FaultPlan`: an
experiment's chaos is declared once and reported alongside its results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Host-level fault kinds (closed vocabulary).
STALL = "stall"
DOWN = "down"
HOST_FAULT_KINDS = (STALL, DOWN)


@dataclass(frozen=True)
class HostFault:
    """One host-level fault: who, what, and when.

    Attributes:
        host: Name of the fleet member the fault targets.
        kind: ``"stall"`` (every answer delayed ``stall_ms``) or
            ``"down"`` (the host is stopped mid-run).
        stall_ms: Injected per-read delay (``stall`` only).
        after_reads: For ``down``, stop the host once this many logical
            reads have completed (0 = down from the start).
    """

    host: str
    kind: str = STALL
    stall_ms: float = 50.0
    after_reads: int = 0

    def __post_init__(self) -> None:
        if self.kind not in HOST_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {HOST_FAULT_KINDS}, not {self.kind!r}"
            )
        if self.stall_ms < 0.0:
            raise ValueError("stall_ms must be non-negative")
        if self.after_reads < 0:
            raise ValueError("after_reads must be >= 0")


@dataclass(frozen=True)
class FleetFaultPlan:
    """An immutable set of host faults for one fleet run."""

    faults: Tuple[HostFault, ...] = field(default_factory=tuple)
    name: str = "fleet-faults"

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        targets = [f.host for f in self.faults]
        if len(set(targets)) != len(targets):
            raise ValueError(f"one fault per host; duplicates in {targets}")

    @classmethod
    def empty(cls) -> "FleetFaultPlan":
        return cls(faults=(), name="no-faults")

    @classmethod
    def slow_host(cls, host: str, stall_ms: float = 50.0) -> "FleetFaultPlan":
        """The benchmark's canonical plan: one stalled host."""
        return cls(
            faults=(HostFault(host=host, kind=STALL, stall_ms=stall_ms),),
            name=f"slow-{host}",
        )

    def stall_for(self, host: str) -> float:
        """The injected stall of ``host`` (0 when unfaulted)."""
        for fault in self.faults:
            if fault.host == host and fault.kind == STALL:
                return fault.stall_ms
        return 0.0

    def downed(self) -> Dict[str, int]:
        """Hosts to kill mid-run → the read count they die after."""
        return {
            fault.host: fault.after_reads
            for fault in self.faults
            if fault.kind == DOWN
        }

    def fault_for(self, host: str) -> Optional[HostFault]:
        for fault in self.faults:
            if fault.host == host:
                return fault
        return None

    def describe(self) -> str:
        if not self.faults:
            return f"{self.name}: no host faults"
        parts = []
        for fault in self.faults:
            if fault.kind == STALL:
                parts.append(f"{fault.host}: stall {fault.stall_ms:g}ms")
            else:
                parts.append(f"{fault.host}: down after {fault.after_reads} reads")
        return f"{self.name}: " + "; ".join(parts)
