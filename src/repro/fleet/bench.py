"""The distributed wall-clock benchmark: hedged vs unhedged tail latency.

This is the real-processes fleet measurement PR 5 deferred: several
:class:`~repro.edge.server.EdgeServerThread` hosts on localhost (each a
full edge deployment with spawned shard workers and real sockets), one
of them made a tail-latency hazard by an injected
:class:`~repro.fleet.faults.FleetFaultPlan` stall, and a
:class:`~repro.fleet.client.FleetClient` driving the same deterministic
request stream twice — hedging disabled, then enabled.  The number that
matters is the client-observed p99 ratio: with one slow host out of
three and replication 2, roughly a third of reads have the slow host as
primary, and a hedged client should clip almost all of that tail.

``benchmarks/bench_fleet.py`` gates the ratio in CI;
``python -m repro fleet`` exposes the same run on the command line.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.edge.bench import _request_stream
from repro.edge.client import RetryPolicy
from repro.edge.protocol import EdgeError, ReadRequest, RETRYABLE_CODES
from repro.edge.server import EdgeConfig, EdgeServerThread
from repro.fleet.client import FleetClient
from repro.fleet.directory import FleetDirectory, HostSpec
from repro.fleet.faults import FleetFaultPlan
from repro.fleet.hedge import HedgePolicy


@dataclass(frozen=True)
class FleetBenchConfig:
    """One fleet benchmark run, fully specified."""

    # One shard per host and a sequential driver by default: the bench
    # measures *host-level* tail (an injected stall sleeps without
    # consuming CPU, so the hedge still overlaps it), and on small CI
    # boxes extra client threads and worker processes only add scheduler
    # noise that lands in both arms' p99.
    hosts: int = 3
    shards_per_host: int = 1
    fleet_shards: int = 4
    replication: int = 2
    tiers: int = 4
    root_seed: int = 2012
    requests: int = 240
    clients: int = 1
    stacks: int = 64
    stall_ms: float = 50.0
    slow_host: Optional[int] = None
    wire: str = "ndjson"
    start_method: str = "fork"
    # Uniform-cost point reads by default: scan/poll requests cost
    # several times a point read even warm, and a per-host hedge budget
    # cannot tell "heavy request" from "slow host" — the tail this
    # bench isolates.  Mixed kinds remain available for soak runs.
    mixed_kinds: bool = False
    # Bench hedging is tuned for small sample windows: p90 instead of
    # p99 (a ~30-sample window's p99 is just its max, so one queueing
    # outlier would inflate the budget past the injected stall), and a
    # 40 ms ceiling so the hedge always fires before a >= 50 ms stall
    # resolves on its own.
    hedge: HedgePolicy = field(
        default_factory=lambda: HedgePolicy(
            quantile=0.9,
            initial_budget_ms=10.0,
            min_budget_ms=2.0,
            max_budget_ms=40.0,
            min_samples=8,
        )
    )

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise ValueError("a fleet bench needs >= 2 hosts")
        if self.slow_host is not None and not 0 <= self.slow_host < self.hosts:
            raise ValueError("slow_host must name one of the hosts")

    def host_names(self) -> List[str]:
        return [f"host{i}" for i in range(self.hosts)]

    def dry_directory(self) -> FleetDirectory:
        """The placement this bench will run (addresses not yet known).

        Placement depends only on host names and shard count, so the
        replica map — and with it the most loaded primary, the natural
        stall target — is known before any server starts.
        """
        return FleetDirectory(
            hosts=tuple(
                HostSpec(
                    name=name,
                    host="127.0.0.1",
                    port=1,
                    domain=f"domain-{index}",
                )
                for index, name in enumerate(self.host_names())
            ),
            shards=self.fleet_shards,
            replication=self.replication,
        )

    def pick_slow_host(self) -> str:
        """The host the default fault plan stalls.

        ``slow_host`` when set; otherwise the host that is primary for
        the most stack ids — a stall nobody routes to would measure
        nothing.
        """
        if self.slow_host is not None:
            return f"host{self.slow_host}"
        directory = self.dry_directory()
        counts: Dict[str, int] = {}
        for stack in range(self.stacks):
            name = directory.replicas_for_stack(stack)[0].name
            counts[name] = counts.get(name, 0) + 1
        return max(sorted(counts), key=lambda name: counts[name])


@dataclass(frozen=True)
class FleetArmResult:
    """One arm (hedged or unhedged) of the benchmark."""

    label: str
    requests: int
    ok: int
    retried: int
    hedges: int
    hedge_wins: int
    p50_ms: float
    p99_ms: float
    duration_s: float
    non_retryable_errors: int


@dataclass(frozen=True)
class FleetBenchReport:
    """Both arms plus the ratio the CI gate pins."""

    config_note: str
    unhedged: FleetArmResult
    hedged: FleetArmResult

    @property
    def p99_ratio(self) -> float:
        """hedged p99 / unhedged p99 (lower is better)."""
        if self.unhedged.p99_ms <= 0.0:
            return 1.0
        return self.hedged.p99_ms / self.unhedged.p99_ms

    def render(self) -> str:
        lines = [
            f"fleet bench ({self.config_note}):",
            "  arm       requests    ok  hedges  wins   p50      p99      errors",
        ]
        for arm in (self.unhedged, self.hedged):
            lines.append(
                f"  {arm.label:<9} {arm.requests:>7} {arm.ok:>5} "
                f"{arm.hedges:>7} {arm.hedge_wins:>5} "
                f"{arm.p50_ms:>7.1f}ms {arm.p99_ms:>7.1f}ms "
                f"{arm.non_retryable_errors:>6}"
            )
        lines.append(
            f"  hedged p99 is {self.p99_ratio:.2f}x unhedged "
            f"({100.0 * (1.0 - self.p99_ratio):.0f}% tail reduction)"
        )
        return "\n".join(lines)


def _fleet_stream(config: FleetBenchConfig) -> List[ReadRequest]:
    """The deterministic request list one arm replays."""
    if config.mixed_kinds:
        return _request_stream(config.tiers, config.requests)
    setpoints = (25.0, 35.0, 45.0, 55.0, 65.0, 75.0)
    return [
        ReadRequest.point(i % config.tiers, setpoints[i % len(setpoints)])
        for i in range(config.requests)
    ]


def _quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def build_fleet(
    config: FleetBenchConfig, plan: Optional[FleetFaultPlan] = None
) -> Tuple[List[EdgeServerThread], FleetDirectory]:
    """Start ``config.hosts`` identical localhost edge servers.

    Every host runs the same deterministic deployment (same
    ``root_seed``/shards/tiers), so any host serves any stack
    bit-identically; ``plan`` stalls apply per host.  Each host is
    declared in its own failure domain.  Callers own the shutdown.
    """
    plan = plan if plan is not None else FleetFaultPlan.empty()
    servers: List[EdgeServerThread] = []
    specs: List[HostSpec] = []
    try:
        for index in range(config.hosts):
            name = f"host{index}"
            edge_config = EdgeConfig(
                port=0,
                shards=config.shards_per_host,
                tiers=config.tiers,
                root_seed=config.root_seed,
                start_method=config.start_method,
                stall_ms=plan.stall_for(name),
            )
            server = EdgeServerThread(edge_config)
            server.start()
            servers.append(server)
            specs.append(
                HostSpec(
                    name=name,
                    host=server.host,
                    port=server.port,
                    domain=f"domain-{index}",
                )
            )
    except BaseException:
        for server in servers:
            server.stop()
        raise
    directory = FleetDirectory(
        hosts=tuple(specs),
        shards=config.fleet_shards,
        replication=config.replication,
    )
    return servers, directory


def _drive(
    client: FleetClient, config: FleetBenchConfig, label: str
) -> FleetArmResult:
    stream = _fleet_stream(config)
    # Untimed warm-up, two passes.  The first primes every (stack,
    # request) pair on EVERY replica via :meth:`FleetClient.warm`: a
    # stack's first read on a host pays tens of milliseconds of
    # conversion — real, but not the tail under test — and a hedge only
    # helps when the secondary it lands on is already warm.  warm()
    # keeps those cold latencies out of the tracker; the second pass
    # runs normal reads so budgets are seeded from steady state.
    for index, request in enumerate(stream):
        client.warm(index % config.stacks, request)
    client.tracker.reset()
    for stack in range(config.stacks):
        try:
            client.read(stack, stream[stack % len(stream)])
        except EdgeError:
            pass
    warm = client.stats()
    latencies: List[float] = []
    counters = {"ok": 0, "retried": 0, "fatal": 0}
    lock = threading.Lock()

    def worker(offset: int) -> None:
        local_lat: List[float] = []
        ok = retried = fatal = 0
        for i in range(offset, len(stream), config.clients):
            started = time.perf_counter()
            try:
                result = client.read(i % config.stacks, stream[i])
            except EdgeError as error:
                if error.code not in RETRYABLE_CODES:
                    fatal += 1
                continue
            local_lat.append((time.perf_counter() - started) * 1e3)
            if result.ok:
                ok += 1
            if result.attempts > 1:
                retried += 1
        with lock:
            latencies.extend(local_lat)
            counters["ok"] += ok
            counters["retried"] += retried
            counters["fatal"] += fatal

    threads = [
        threading.Thread(target=worker, args=(offset,), daemon=True)
        for offset in range(config.clients)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.monotonic() - started
    stats = client.stats()
    return FleetArmResult(
        label=label,
        requests=config.requests,
        ok=counters["ok"],
        retried=counters["retried"],
        hedges=int(stats["hedges"]) - int(warm["hedges"]),
        hedge_wins=int(stats["hedge_wins"]) - int(warm["hedge_wins"]),
        p50_ms=_quantile(latencies, 0.50),
        p99_ms=_quantile(latencies, 0.99),
        duration_s=duration,
        non_retryable_errors=counters["fatal"],
    )


def run_fleet_bench(
    config: FleetBenchConfig = FleetBenchConfig(),
    plan: Optional[FleetFaultPlan] = None,
) -> FleetBenchReport:
    """Measure hedged vs unhedged client p99 under one slow host.

    The default ``plan`` stalls ``config.slow_host`` by
    ``config.stall_ms`` — the injected tail the hedge must clip.  Both
    arms run the identical request stream against the same live fleet.
    """
    if plan is None:
        plan = FleetFaultPlan.slow_host(
            config.pick_slow_host(), stall_ms=config.stall_ms
        )
    servers, directory = build_fleet(config, plan)
    try:
        arms: Dict[str, FleetArmResult] = {}
        for label, enabled in (("unhedged", False), ("hedged", True)):
            hedge = (
                config.hedge
                if enabled
                else HedgePolicy(enabled=False)
            )
            with FleetClient(
                directory,
                wire=config.wire,
                hedge=hedge,
                retry=RetryPolicy(attempts=3, backoff_s=0.01),
            ) as client:
                arms[label] = _drive(client, config, label)
    finally:
        for server in servers:
            server.stop()
    note = (
        f"{config.hosts} hosts x {config.shards_per_host} shards, "
        f"replication {config.replication}, {plan.describe()}, "
        f"wire {config.wire}"
    )
    return FleetBenchReport(
        config_note=note, unhedged=arms["unhedged"], hedged=arms["hedged"]
    )
