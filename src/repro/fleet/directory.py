"""Fleet membership and placement: who serves which shard, and where.

A fleet federates several :class:`~repro.edge.server.EdgeServer` hosts
behind one client surface.  Every host runs the *same* deterministic
deployment (same ``root_seed``, shard count and tiers), so any host can
serve any stack bit-identically — replication costs placement
bookkeeping, not data movement.  The :class:`FleetDirectory` owns that
bookkeeping:

* **Shard → replica set.**  The stack-id space is partitioned into
  ``shards`` fleet shards by the same consistent
  :class:`~repro.edge.sharding.HashRing` the edge pool uses internally;
  each fleet shard is assigned an ordered replica set of hosts
  (primary first).
* **Per-tier replication factor.**  Hosts and shards carry a service
  tier label (``"standard"`` by default); the replication factor is a
  per-tier map, so a ``"hot"`` tier can run 3 replicas while bulk
  traffic runs 2.
* **Failure-domain-aware placement.**  Each host declares a failure
  domain (rack, zone, machine).  Placement walks hosts in rendezvous
  order (highest-random-weight over the same SHA-256 ring points the
  hash ring uses) and skips hosts whose domain is already represented
  in the shard's replica set; only when there are fewer domains than
  replicas does it relax and reuse a domain.  No two replicas of a
  shard share a domain unless the fleet is too small for that to be
  possible.
* **Generations.**  Directories are immutable and generation-stamped,
  exactly like the edge's topology rings: membership changes produce a
  *new* directory at ``generation + 1`` (:meth:`with_hosts`,
  :meth:`without`), so routers and supervisors can tell a stale
  placement from the live one.

Rendezvous hashing keeps rebalancing minimal: when a host leaves, only
the shards it served move, and they move to the next host in their
existing preference order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.edge.sharding import HashRing, _ring_point

#: The service tier hosts and shards default to.
DEFAULT_TIER = "standard"

#: Default replication factor per service tier.
DEFAULT_REPLICATION: Mapping[str, int] = {DEFAULT_TIER: 2}


@dataclass(frozen=True)
class HostSpec:
    """One fleet member: an edge server address plus placement metadata.

    Attributes:
        name: Stable identity of the host in the fleet (placement and
            health are keyed on it; addresses may change behind it).
        host / port: Where the edge server listens.
        domain: Declared failure domain (rack, zone, box).  Placement
            avoids putting two replicas of a shard in one domain.
        tier: Service tier label; selects the replication factor.
        admin_token: Token the supervisor presents to this host's
            ``admin.*`` plane (``None`` for open loopback hosts).
    """

    name: str
    host: str
    port: int
    domain: str = "default"
    tier: str = DEFAULT_TIER
    admin_token: Optional[str] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @classmethod
    def parse(cls, spec: str) -> "HostSpec":
        """Build a host from ``name=host:port[@domain]`` (CLI form).

        ``host:port`` alone names the host after its address.
        """
        body = spec
        name = None
        if "=" in body:
            name, body = body.split("=", 1)
        domain = "default"
        if "@" in body:
            body, domain = body.rsplit("@", 1)
        if ":" not in body:
            raise ValueError(f"host spec {spec!r} needs host:port")
        host, port_text = body.rsplit(":", 1)
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"host spec {spec!r} has a non-integer port")
        return cls(name=name or body, host=host, port=port, domain=domain)


def _rendezvous_order(shard: int, hosts: Sequence[HostSpec]) -> List[HostSpec]:
    """Hosts in preference order for one shard (highest weight first).

    Deterministic in (shard, host names) and independent of the order
    hosts were declared in, so every router computes the same placement.
    """
    return sorted(
        hosts,
        key=lambda h: _ring_point(f"fleet:{h.name}:shard-{shard}"),
        reverse=True,
    )


@dataclass(frozen=True)
class FleetDirectory:
    """The immutable placement map of one fleet generation.

    Attributes:
        hosts: Fleet members (order does not affect placement).
        shards: Fleet shard count — the granularity at which the
            stack-id space is partitioned and replicated.
        replication: Service tier → replica count.  A plain int is
            accepted and applied to every tier.
        shard_tiers: Optional shard index → tier override (defaults to
            ``"standard"`` for every shard).
        generation: Stamp of this placement; membership changes mint
            ``generation + 1`` directories.
    """

    hosts: Tuple[HostSpec, ...]
    shards: int = 2
    replication: Union[int, Mapping[str, int]] = field(
        default_factory=lambda: dict(DEFAULT_REPLICATION)
    )
    shard_tiers: Optional[Mapping[int, str]] = None
    generation: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "hosts", tuple(self.hosts))
        if not self.hosts:
            raise ValueError("a fleet needs at least one host")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names: {sorted(names)}")
        if isinstance(self.replication, int):
            object.__setattr__(
                self, "replication", {DEFAULT_TIER: self.replication}
            )
        for tier, factor in self.replication.items():
            if factor < 1:
                raise ValueError(f"replication[{tier!r}] must be >= 1")
            if factor > len(self.hosts):
                raise ValueError(
                    f"replication[{tier!r}]={factor} exceeds the "
                    f"{len(self.hosts)}-host fleet"
                )
        object.__setattr__(
            self,
            "_ring",
            HashRing(range(self.shards), generation=self.generation),
        )
        object.__setattr__(self, "_placement", self._place())
        object.__setattr__(
            self, "_by_name", {h.name: h for h in self.hosts}
        )

    # ----------------------------------------------------------- placement

    def tier_of(self, shard: int) -> str:
        """The service tier of one fleet shard."""
        if self.shard_tiers is not None and shard in self.shard_tiers:
            return self.shard_tiers[shard]
        return DEFAULT_TIER

    def replication_for(self, shard: int) -> int:
        """The replica count shard ``shard`` is placed at."""
        tier = self.tier_of(shard)
        factors = self.replication
        return factors.get(tier, factors.get(DEFAULT_TIER, 1))

    def _place(self) -> Dict[int, Tuple[HostSpec, ...]]:
        placement: Dict[int, Tuple[HostSpec, ...]] = {}
        for shard in range(self.shards):
            want = self.replication_for(shard)
            order = _rendezvous_order(shard, self.hosts)
            chosen: List[HostSpec] = []
            used_domains: set = set()
            for candidate in order:
                if len(chosen) >= want:
                    break
                if candidate.domain in used_domains:
                    continue
                chosen.append(candidate)
                used_domains.add(candidate.domain)
            if len(chosen) < want:
                # Fewer failure domains than replicas: relax the domain
                # constraint rather than under-replicate.
                for candidate in order:
                    if len(chosen) >= want:
                        break
                    if candidate not in chosen:
                        chosen.append(candidate)
            placement[shard] = tuple(chosen)
        return placement

    def placement(self) -> Dict[int, Tuple[str, ...]]:
        """Shard → ordered replica host names (primary first)."""
        return {
            shard: tuple(h.name for h in replicas)
            for shard, replicas in self._placement.items()
        }

    def replicas(self, shard: int) -> Tuple[HostSpec, ...]:
        """The ordered replica set of one fleet shard (primary first)."""
        try:
            return self._placement[shard]
        except KeyError:
            raise ValueError(
                f"shard {shard} outside this {self.shards}-shard fleet"
            )

    def route(self, stack_id: int) -> int:
        """The fleet shard owning ``stack_id`` (consistent hashing)."""
        return self._ring.route(stack_id)

    def replicas_for_stack(self, stack_id: int) -> Tuple[HostSpec, ...]:
        """The ordered replica set serving one stack id."""
        return self.replicas(self.route(stack_id))

    def host(self, name: str) -> HostSpec:
        """Look a member up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ValueError(f"no host named {name!r} in the fleet")

    # ---------------------------------------------------------- membership

    def with_hosts(self, hosts: Sequence[HostSpec]) -> "FleetDirectory":
        """A successor directory over ``hosts`` at ``generation + 1``."""
        return replace(
            self, hosts=tuple(hosts), generation=self.generation + 1
        )

    def without(self, name: str) -> "FleetDirectory":
        """A successor directory with host ``name`` removed."""
        remaining = tuple(h for h in self.hosts if h.name != name)
        if len(remaining) == len(self.hosts):
            raise ValueError(f"no host named {name!r} in the fleet")
        return self.with_hosts(remaining)

    def with_host(self, spec: HostSpec) -> "FleetDirectory":
        """A successor directory with ``spec`` added (or replaced)."""
        others = tuple(h for h in self.hosts if h.name != spec.name)
        return self.with_hosts(others + (spec,))

    # ------------------------------------------------------------- reports

    def describe(self) -> str:
        """Human-readable placement table (CLI / docs)."""
        lines = [
            f"fleet generation {self.generation}: "
            f"{len(self.hosts)} hosts, {self.shards} shards"
        ]
        for spec in sorted(self.hosts, key=lambda h: h.name):
            lines.append(
                f"  host {spec.name} @ {spec.host}:{spec.port} "
                f"domain={spec.domain} tier={spec.tier}"
            )
        for shard in range(self.shards):
            names = ", ".join(h.name for h in self.replicas(shard))
            lines.append(
                f"  shard {shard} [{self.tier_of(shard)} "
                f"x{self.replication_for(shard)}] -> {names}"
            )
        return "\n".join(lines)
