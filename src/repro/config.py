"""Sensor configuration: the design-time knobs of the PT-sensor macro.

A :class:`SensorConfig` captures everything the paper's designers fixed at
tape-out: stage counts, measurement windows, counter widths, and the
iteration budget of the self-calibration engine.  The defaults are the
reproduction's reference operating point — the one whose summary row
(experiment R-T1) is compared against the paper's headline numbers.

Two measurement schemes coexist, matching standard practice for RO sensors:

* the fast process rings (PSRO-N/P, hundreds of MHz) are measured by
  **edge counting** inside a fixed window derived from the system reference
  clock;
* the slow, wide-dynamic-range temperature ring (TSRO, single-digit MHz when
  cold) is measured by **period timing** — the reference clock is counted
  while the TSRO completes a fixed number of periods — which keeps the
  resolution roughly constant across the 30x frequency span of the
  temperature range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import MEGA, MICRO


@dataclass(frozen=True)
class SensorConfig:
    """Design parameters of one PT-sensor macro.

    Attributes:
        psro_stages: Stage count of the process-sensing rings (odd).
        tsro_stages: Stage count of the temperature-sensing ring (odd).
        psro_window: Edge-counting window for PSRO-N / PSRO-P, seconds.
        tsro_periods: Number of TSRO periods timed per temperature
            measurement.
        ref_clock_hz: System reference clock frequency in hertz.  A 3-D
            stack has a distributed system clock; the sensor borrows it for
            its time base (see DESIGN.md substitution ledger).
        psro_counter_bits: Counter width for the process rings.
        tsro_counter_bits: Width of the reference-clock counter used by the
            period timer.
        calibration_rounds: Iterations of the process/temperature
            alternation in the self-calibration engine.
        newton_iterations: Newton refinement steps per process extraction.
        lut_points_per_axis: Grid resolution of the on-chip inversion LUT.
        digital_overhead_energy: Fixed controller/FSM energy per conversion,
            joules.
        temp_min_c: Lower edge of the specified temperature range, Celsius.
        temp_max_c: Upper edge of the specified temperature range, Celsius.
    """

    psro_stages: int = 13
    tsro_stages: int = 9
    psro_window: float = 0.6 * MICRO
    tsro_periods: int = 96
    ref_clock_hz: float = 200.0 * MEGA
    psro_counter_bits: int = 12
    tsro_counter_bits: int = 17
    calibration_rounds: int = 5
    newton_iterations: int = 8
    lut_points_per_axis: int = 9
    digital_overhead_energy: float = 20e-12
    temp_min_c: float = -40.0
    temp_max_c: float = 125.0

    def __post_init__(self) -> None:
        if self.psro_stages < 3 or self.psro_stages % 2 == 0:
            raise ValueError("psro_stages must be an odd number >= 3")
        if self.tsro_stages < 3 or self.tsro_stages % 2 == 0:
            raise ValueError("tsro_stages must be an odd number >= 3")
        if self.psro_window <= 0.0:
            raise ValueError("psro_window must be positive")
        if self.tsro_periods < 1:
            raise ValueError("tsro_periods must be >= 1")
        if self.ref_clock_hz <= 0.0:
            raise ValueError("ref_clock_hz must be positive")
        if self.calibration_rounds < 1:
            raise ValueError("at least one calibration round is required")
        if self.newton_iterations < 1:
            raise ValueError("at least one Newton iteration is required")
        if self.lut_points_per_axis < 2:
            raise ValueError("the LUT needs at least two points per axis")
        if self.temp_min_c >= self.temp_max_c:
            raise ValueError("temperature range is empty")

    def conversion_time(self, tsro_frequency: float) -> float:
        """Total conversion time in seconds for a given TSRO frequency.

        The rings are activated sequentially (they share one counter), so
        the conversion takes both PSRO windows plus the TSRO period-timing
        interval, which depends on how fast the TSRO runs.
        """
        if tsro_frequency <= 0.0:
            raise ValueError("tsro_frequency must be positive")
        return 2.0 * self.psro_window + self.tsro_periods / tsro_frequency

    def with_windows(
        self, psro_window: float = None, tsro_periods: int = None
    ) -> "SensorConfig":
        """Copy with different measurement windows (energy/resolution trades)."""
        return replace(
            self,
            psro_window=self.psro_window if psro_window is None else psro_window,
            tsro_periods=self.tsro_periods if tsro_periods is None else tsro_periods,
        )
