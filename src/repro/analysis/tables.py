"""Plain-text table rendering for experiment and benchmark output.

Every experiment prints the rows/series its paper figure or table would
contain; this module is the single formatter so all output looks alike and
tests can assert on structure.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column headers.
        rows: Row cell values; formatted with ``str`` (pre-format numbers
            at the call site so units stay explicit).
        title: Optional title line above the table.

    Returns:
        The rendered table as a single string.
    """
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [len(header) for header in headers]
    for row in str_rows:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[col]) for col, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
