"""ASCII distribution rendering: the evaluation's histogram figures.

Monte-Carlo sensor papers show error *distributions*, not just bands; this
module renders them as fixed-width histograms and CDF summaries so the
experiment output carries the same information the paper's figures would.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

_BAR_WIDTH = 40


def ascii_histogram(
    values: Sequence[float],
    bins: int = 12,
    title: str = "",
    unit: str = "",
    scale: float = 1.0,
) -> str:
    """Render a horizontal ASCII histogram.

    Args:
        values: The sample.
        bins: Histogram bin count.
        title: Optional title line.
        unit: Unit label for the bin edges.
        scale: Multiplier applied to edges for display (e.g. 1e3 for mV).

    Returns:
        The rendered histogram.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot render an empty sample")
    if bins < 2:
        raise ValueError("need at least two bins")
    counts, edges = np.histogram(data, bins=bins)
    peak = max(1, int(np.max(counts)))
    lines: List[str] = [title] if title else []
    for i, count in enumerate(counts):
        lo = edges[i] * scale
        hi = edges[i + 1] * scale
        bar = "#" * int(round(_BAR_WIDTH * count / peak))
        lines.append(f"{lo:+8.2f}..{hi:+8.2f}{unit} |{bar:<{_BAR_WIDTH}s}| {count}")
    return "\n".join(lines)


def quantile_summary(
    values: Sequence[float],
    quantiles: Sequence[float] = (0.01, 0.25, 0.50, 0.75, 0.99),
    unit: str = "",
    scale: float = 1.0,
) -> str:
    """One-line quantile summary of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    parts = [
        f"p{int(q * 100):02d}={np.quantile(data, q) * scale:+.3f}{unit}"
        for q in quantiles
    ]
    return "  ".join(parts)
