"""Accuracy metrics used throughout the evaluation.

Sensor papers quote a zoo of error statistics; this module pins down the
ones the reproduction reports so every experiment uses identical
definitions:

* ``inaccuracy_band`` — the "+/- X" figure: the worst absolute error over
  the population/sweep (what a datasheet min/max spec means);
* ``ErrorStats`` — the full picture: mean (systematic bias), sigma,
  3-sigma, and the band, so paper-style small-sample "+/-" claims can be
  compared honestly against large-sample statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of an error population.

    Attributes:
        count: Sample count.
        mean: Mean error (systematic bias).
        sigma: Standard deviation.
        three_sigma: 3x the standard deviation.
        band: Worst absolute error ("+/- band").
    """

    count: int
    mean: float
    sigma: float
    three_sigma: float
    band: float

    def describe(self, unit: str = "", scale: float = 1.0) -> str:
        """One-line human-readable summary, optionally unit-scaled."""
        return (
            f"n={self.count}  mean={self.mean * scale:+.3f}{unit}  "
            f"sigma={self.sigma * scale:.3f}{unit}  "
            f"3sigma={self.three_sigma * scale:.3f}{unit}  "
            f"band=+/-{self.band * scale:.3f}{unit}"
        )


def error_stats(errors) -> ErrorStats:
    """Compute :class:`ErrorStats` for a sequence of signed errors."""
    arr = np.asarray(list(errors), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty error population")
    sigma = float(np.std(arr))
    return ErrorStats(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        sigma=sigma,
        three_sigma=3.0 * sigma,
        band=float(np.max(np.abs(arr))),
    )


def inaccuracy_band(errors) -> float:
    """The "+/- X" worst-absolute-error figure of a population."""
    arr = np.asarray(list(errors), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty error population")
    return float(np.max(np.abs(arr)))
