"""Bootstrap confidence intervals for the evaluation's error statistics.

A "+/- band" measured on N dies is itself a random variable; a paper-style
8-die band in particular is a noisy estimate of the population band.  The
reproduction reports bootstrap confidence intervals next to its headline
bands so the comparison against the paper's numbers is statistically
honest (a measured 1.55 mV band with a [1.2, 2.1] mV 95 % interval
*contains* the paper's 1.6 mV — that is the right claim to make).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap estimate with its confidence interval.

    Attributes:
        point: The statistic on the original sample.
        low: Lower confidence bound.
        high: Upper confidence bound.
        confidence: The interval's coverage (e.g. 0.95).
    """

    point: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether a reference value lies inside the interval."""
        return self.low <= value <= self.high

    def describe(self, scale: float = 1.0, unit: str = "") -> str:
        """One-line summary, optionally unit-scaled."""
        return (
            f"{self.point * scale:.3f}{unit} "
            f"[{self.low * scale:.3f}, {self.high * scale:.3f}]{unit} "
            f"@{self.confidence * 100:.0f}%"
        )


def bootstrap_statistic(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile-bootstrap confidence interval for any statistic.

    Args:
        samples: The observed error sample.
        statistic: Maps a sample array to the scalar of interest.
        confidence: Interval coverage.
        resamples: Bootstrap resample count.
        seed: RNG seed (deterministic reporting).

    Returns:
        The :class:`BootstrapInterval`.
    """
    data = np.asarray(list(samples), dtype=float)
    if data.size < 2:
        raise ValueError("need at least two samples to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if resamples < 100:
        raise ValueError("use at least 100 resamples")
    rng = np.random.default_rng(seed)
    estimates = np.empty(resamples)
    for i in range(resamples):
        resample = data[rng.integers(0, data.size, size=data.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapInterval(
        point=float(statistic(data)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=confidence,
    )


def band_interval(
    errors: Sequence[float], confidence: float = 0.95, resamples: int = 2000
) -> BootstrapInterval:
    """Bootstrap interval for the "+/- band" (worst absolute error)."""
    return bootstrap_statistic(
        errors, lambda sample: float(np.max(np.abs(sample))), confidence, resamples
    )


def sigma_interval(
    errors: Sequence[float], confidence: float = 0.95, resamples: int = 2000
) -> BootstrapInterval:
    """Bootstrap interval for the error standard deviation."""
    return bootstrap_statistic(
        errors, lambda sample: float(np.std(sample)), confidence, resamples
    )
