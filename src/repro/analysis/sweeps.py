"""Sweep helpers shared by experiments and benchmarks."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np


def temperature_axis(
    temp_min_c: float = -40.0, temp_max_c: float = 125.0, points: int = 12
) -> np.ndarray:
    """A temperature sweep axis in Celsius."""
    if points < 2:
        raise ValueError("a sweep needs at least two points")
    if temp_min_c >= temp_max_c:
        raise ValueError("temperature range is empty")
    return np.linspace(temp_min_c, temp_max_c, points)


def sweep_temperature(
    read: Callable[[float], float], temps_c: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Run a sensor's read function across a sweep.

    Args:
        read: Maps a true temperature (Celsius) to an estimate (Celsius).
        temps_c: The sweep points.

    Returns:
        ``(estimates, errors)`` arrays aligned with ``temps_c``.
    """
    estimates: List[float] = [read(float(t)) for t in temps_c]
    est = np.asarray(estimates)
    return est, est - np.asarray(temps_c, dtype=float)


def population_temperature_sweep(
    sensors: Sequence, temps_c: Sequence[float], **read_kwargs
) -> Tuple[np.ndarray, np.ndarray]:
    """Temperature sweep of a whole sensor population via the batch engine.

    One :func:`repro.batch.read_population` call replaces the
    ``(sensor, temperature)`` double loop of scalar reads.

    Args:
        sensors: :class:`~repro.core.sensor.PTSensor` instances of one design.
        temps_c: The sweep points in Celsius.
        **read_kwargs: Forwarded to :func:`~repro.batch.read_population`
            (``vdd``, ``deterministic``, ``assume_vdd``).

    Returns:
        ``(estimates, errors)`` arrays of shape ``(n_sensors, n_temps)``.
    """
    from repro.batch import read_population

    temps = np.asarray(temps_c, dtype=float)
    readings = read_population(sensors, temps, **read_kwargs)
    estimates = readings.temperature_c[:, :, 0]
    return estimates, estimates - temps.reshape(1, -1)
