"""Metrics, table rendering and sweep helpers for the evaluation."""

from repro.analysis.metrics import ErrorStats, error_stats, inaccuracy_band
from repro.analysis.sweeps import sweep_temperature, temperature_axis
from repro.analysis.tables import render_table

__all__ = [
    "ErrorStats",
    "error_stats",
    "inaccuracy_band",
    "render_table",
    "sweep_temperature",
    "temperature_axis",
]
