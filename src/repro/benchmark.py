"""Performance regression benchmarks of the library's hot paths.

Times the batch engine against the scalar loops it replaces, plus the
thermal solver's factorization cache, and compares the timings against a
checked-in baseline (``benchmarks/BENCH_baseline.json``) so performance
regressions fail loudly::

    python -m repro bench               # run and print
    python -m repro bench --check       # compare against the baseline
    python -m repro bench --update      # rewrite the baseline on this host

Timings are wall-clock minima over a few repetitions; the check tolerance
is deliberately loose (machines differ far more than regressions do) — it
exists to catch order-of-magnitude slips like accidentally re-entering the
scalar path, not 10 % noise.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

import numpy as np

DEFAULT_BASELINE_PATH = "benchmarks/BENCH_baseline.json"
# A benchmark fails the check when it runs slower than baseline * (1 + tol).
DEFAULT_TOLERANCE = 2.0


def _time(fn: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _population_setup(n_dies: int, n_temps: int):
    from repro.analysis.sweeps import temperature_axis
    from repro.experiments.common import population_sensors, reference_setup

    setup = reference_setup()
    sensors = population_sensors(n_dies)
    temps_c = temperature_axis(
        setup.config.temp_min_c, setup.config.temp_max_c, points=n_temps
    )
    return setup, sensors, temps_c


def bench_population_sweep_scalar(n_dies: int = 50, n_temps: int = 9) -> float:
    """Bank-frequency sweep through the scalar per-point loop."""
    from repro.units import celsius_to_kelvin

    _, sensors, temps_c = _population_setup(n_dies, n_temps)

    def sweep():
        out = np.empty((len(sensors), temps_c.size, 4))
        for i, sensor in enumerate(sensors):
            for j, temp_c in enumerate(temps_c):
                env = sensor.physical_environment(celsius_to_kelvin(float(temp_c)))
                f = sensor.bank.frequencies(env)
                out[i, j] = (f.psro_n, f.psro_p, f.tsro, f.reference)
        return out

    return _time(sweep, repeats=1)


def bench_population_sweep_batch(n_dies: int = 200, n_temps: int = 9) -> float:
    """The same sweep through the batch engine (all four oscillator roles)."""
    from repro.batch import ring_frequency_batch
    from repro.batch.population import population_bank_frequencies, population_grid
    from repro.units import ZERO_CELSIUS_IN_KELVIN

    _, sensors, temps_c = _population_setup(n_dies, n_temps)
    reference = sensors[0]
    vtn = np.array([s.bank.reference.vtn_offset for s in sensors]).reshape(-1, 1)
    vtp = np.array([s.bank.reference.vtp_offset for s in sensors]).reshape(-1, 1)

    def sweep():
        grid = population_grid(
            sensors, temps_c + ZERO_CELSIUS_IN_KELVIN, reference.technology.vdd
        )
        bank = population_bank_frequencies(sensors, grid)
        ref_ring = ring_frequency_batch(
            reference.bank.reference.stage,
            reference.bank.reference.stages,
            reference.technology,
            grid,
            vtn_offset=vtn,
            vtp_offset=vtp,
        )
        return bank, ref_ring

    return _time(sweep)


def bench_read_population(n_dies: int = 50, n_temps: int = 5) -> float:
    """Full conversions (counters + calibration + energy) via the batch engine."""
    from repro.batch import read_population

    _, sensors, temps_c = _population_setup(n_dies, n_temps)

    def sweep():
        return read_population(sensors, temps_c, deterministic=True)

    return _time(sweep)


def bench_read_population_telemetry(n_dies: int = 50, n_temps: int = 5) -> float:
    """The read_population workload with telemetry enabled into a null sink.

    Pins the enabled-mode overhead of the instrumentation: this entry must
    track ``read_population_batch_50x5`` closely (the acceptance bar for
    the telemetry layer is <2 % on the population sweep with the null
    sink; benchmarks/bench_telemetry_overhead.py asserts the ratio).
    """
    from repro import telemetry
    from repro.batch import read_population
    from repro.telemetry import NullSink

    _, sensors, temps_c = _population_setup(n_dies, n_temps)

    def sweep():
        return read_population(sensors, temps_c, deterministic=True)

    with telemetry.get().capture(sink=NullSink(), reset=False):
        return _time(sweep)


def _thermal_setup():
    from repro.thermal.grid import build_stack_grid
    from repro.thermal.power import uniform_power_map
    from repro.tsv.geometry import StackDescriptor, TierSpec

    stack = StackDescriptor(tiers=[TierSpec(f"tier{i}") for i in range(4)])
    nx = ny = 20
    grid = build_stack_grid(
        stack.thermal_layers(nx, ny), stack.die_width, stack.die_height, nx=nx, ny=ny
    )
    power = {f"tier{i}.si": uniform_power_map(nx, ny, 0.8) for i in range(4)}
    return grid, power


def bench_thermal_steady_cold() -> float:
    """Steady-state solve including the sparse factorization (cache cleared)."""
    from repro.thermal.solver import clear_factorization_caches, steady_state

    grid, power = _thermal_setup()

    def solve():
        clear_factorization_caches()
        return steady_state(grid, power)

    return _time(solve)


def bench_thermal_steady_warm() -> float:
    """Steady-state solve re-using the cached factorization."""
    from repro.thermal.solver import steady_state

    grid, power = _thermal_setup()
    steady_state(grid, power)  # prime the cache
    return _time(lambda: steady_state(grid, power))


def _faultsim_config(rounds: int):
    from repro.faults.campaign import CampaignConfig

    return CampaignConfig(tiers=8, rounds=rounds)


def bench_stack_monitor_8tier(rounds: int = 10) -> float:
    """8-tier monitored-stack polling loop with no faults layer active.

    The reference for ``faultsim_8tier_smoke``: the delta between the two
    is the price of the injection seams plus the campaign scorer under a
    zero-fault plan, which must stay in the noise
    (benchmarks/bench_faultsim_campaign.py asserts the ratio).
    """
    from repro.faults.campaign import _build_stack

    config = _faultsim_config(rounds)

    def loop():
        monitor = _build_stack(config)
        for r in range(config.rounds):
            monitor.poll(
                {t: config.truth_c(t, r) for t in range(config.tiers)}
            )

    return _time(loop)


def bench_faultsim_zero_fault(rounds: int = 10) -> float:
    """The same 8-tier loop run through the campaign under the empty plan."""
    from repro.faults.campaign import run_plan
    from repro.faults.plan import FaultPlan

    config = _faultsim_config(rounds)
    plan = FaultPlan(name="zero-fault")
    return _time(lambda: run_plan(plan, config))


def bench_serve_microbatch(requests: int = 300) -> float:
    """The serving stack end to end: virtual-time loadgen at 50 req/s.

    Exercises request expansion, cache peel-off, the paired conversion
    kernel and result assembly — the whole ``repro.serve`` hot path —
    deterministically (no threads, no sleeps), so the timing reflects
    compute, not wall-clock waiting.
    """
    from repro.serve import LoadgenConfig, ServeConfig, run_loadgen

    config = LoadgenConfig(
        requests=requests,
        rate_rps=50.0,
        serve=ServeConfig(tiers=8),
    )
    return _time(lambda: run_loadgen(config), repeats=1)


def bench_edge_loadgen(requests: int = 1500) -> float:
    """The edge shard-scaling loadgen: 1 and 4 virtual shards.

    Partitions one seeded saturating arrival stream across shard counts
    and replays each shard's micro-batching service in virtual time —
    real conversions per shard seed, simulated clock, no processes — so
    the timing reflects the routing + serving compute, not sockets.
    """
    from repro.edge import EdgeLoadgenConfig, run_loadgen_edge

    config = EdgeLoadgenConfig(requests=requests, shard_counts=(1, 4))
    return _time(lambda: run_loadgen_edge(config), repeats=1)


def bench_wire_codec(messages: int = 2000) -> float:
    """2000 binary read exchanges through the frame codec.

    Decode of the packed inbound ``read`` plus encode of the packed
    outbound answer — the per-message CPU of the edge event loop on the
    fast wire.  The relative bar (binary at most half the NDJSON cost)
    lives in benchmarks/bench_wire.py; this entry pins the absolute
    codec cost so a packed-path regression (e.g. silently falling back
    to JSON bodies) fails the ``--check``.
    """
    from repro.edge import protocol
    from repro.serve.requests import ReadRequest

    requests = [
        protocol.encode_frame(
            {
                "v": protocol.PROTOCOL_VERSION,
                "id": i,
                "op": "read",
                "stack": i % 64,
                "request": protocol.request_to_wire(ReadRequest.point(i % 4, 45.0)),
            }
        )
        for i in range(messages)
    ]
    answers = [
        {
            "id": i,
            "ok": True,
            "shard": i % 4,
            "result": {
                "status": "ok",
                "batch_size": 8,
                "cache_hits": 3,
                "error": None,
                "latency_ms": 1.25,
                "readings": [
                    {
                        "tier": 1,
                        "temperature_c": 45.03125,
                        "dvtn": 0.0123,
                        "dvtp": -0.0045,
                        "converged": True,
                        "quality": "ok",
                        "cache_hit": False,
                    }
                ],
            },
        }
        for i in range(messages)
    ]

    def loop():
        header_size = protocol.FRAME_HEADER_SIZE
        for blob in requests:
            _version, kind, _length = protocol.decode_frame_header(blob[:header_size])
            protocol.decode_frame_body(kind, blob[header_size:])
        for answer in answers:
            protocol.encode_frame(answer)

    return _time(loop)


def bench_edge_reshard(shards_from: int = 2, shards_to: int = 4) -> float:
    """A live pool reshape: grow a real two-worker pool to four shards.

    Times ``ShardPool.scale_to`` end to end — spare/cold spawn, join
    probe, prewarm conversion and the atomic ring republishes — against
    forked worker processes.  Pins the wall-clock cost of elasticity:
    a regression here (say, a drain that stopped overlapping with the
    spawn, or a prewarm that reconverts every tier serially) doubles
    the window during which the autoscaler's action lags the load.
    """
    from repro.edge import EdgeDeployment, ShardPool

    deployment = EdgeDeployment(
        shards=shards_from, tiers=4, root_seed=2012, start_method="fork"
    )
    pool = ShardPool(
        deployment.worker_configs(),
        start_method="fork",
        config_factory=deployment.worker_config,
    )
    pool.start(health_checks=False)
    try:
        return _time(lambda: pool.scale_to(shards_to), repeats=1)
    finally:
        pool.close()


def bench_stream_fanout(subscribers: int = 10_000, events: int = 50) -> float:
    """50 publishes fanned out to 10k live bounded subscribers.

    A real :class:`~repro.telemetry.stream.StreamHub` with 10k real
    :class:`~repro.telemetry.stream.Subscription` queues (bound 64, no
    consumers draining — the worst case): each publish is a match check
    plus a locked deque append per subscriber, overflow drops oldest.
    Pins the per-delivery cost of the fan-out hot path; a regression
    here (say, a publish that started copying the event per subscriber,
    or taking the hub lock) multiplies across every subscriber of every
    edge server.
    """
    from repro.telemetry.stream import StreamHub

    hub = StreamHub()
    for _ in range(subscribers):
        hub.subscribe(kinds=["metric"], queue=64)

    def loop():
        for i in range(events):
            hub.publish("metric", {"name": "bench.fanout", "value": float(i)})

    return _time(loop, repeats=1)


def bench_fleet_hedged() -> float:
    """The 3-host hedged-vs-unhedged fleet measurement, end to end.

    Boots three real localhost edge servers (spawned workers, real
    sockets), stalls the busiest primary by 50 ms, and drives the
    deterministic 240-request stream through both arms.  The p99 *ratio*
    is gated by ``benchmarks/bench_fleet.py``; this entry pins the
    wall-clock cost of the whole measurement — dominated by server boot,
    per-replica warm-up and the unhedged arm eating the stall — so a
    regression here means fleet boot or the read path itself got slower.
    """
    from repro.fleet import FleetBenchConfig, run_fleet_bench

    def loop():
        report = run_fleet_bench(FleetBenchConfig())
        if report.hedged.non_retryable_errors or report.unhedged.non_retryable_errors:
            raise RuntimeError(f"fleet bench errored:\n{report.render()}")

    return _time(loop, repeats=1)


def bench_dtm_decisions(decisions: int = 20_000) -> float:
    """20k typed throttle/release decisions through one stack's DtmTable.

    The server-side hot path of every ``dtm.throttle`` / ``dtm.release``
    on the wire: round-idempotence check, the shared ``apply_action``
    arithmetic, the bounded decision log and the exact counters.  The
    relative floor (decisions/sec) lives in benchmarks/bench_dtm.py;
    this entry pins the absolute per-decision cost so a regression
    (say, the log scan going linear or a lock turning contended) fails
    the ``--check``.
    """
    from repro.dtm.bench import measure_decision_rate

    return min(measure_decision_rate(decisions).seconds for _ in range(3))


BENCHMARKS: Dict[str, Callable[[], float]] = {
    "population_sweep_scalar_50x9": bench_population_sweep_scalar,
    "population_sweep_batch_200x9": bench_population_sweep_batch,
    "read_population_batch_50x5": bench_read_population,
    "read_population_telemetry_50x5": bench_read_population_telemetry,
    "thermal_steady_cold": bench_thermal_steady_cold,
    "thermal_steady_warm": bench_thermal_steady_warm,
    "stack_monitor_8tier_poll": bench_stack_monitor_8tier,
    "faultsim_8tier_smoke": bench_faultsim_zero_fault,
    "serve_microbatch_50rps": bench_serve_microbatch,
    "edge_loadgen_1v4shard": bench_edge_loadgen,
    "edge_wire_codec_2k": bench_wire_codec,
    "edge_reshard_2to4": bench_edge_reshard,
    "stream_fanout_10k": bench_stream_fanout,
    "fleet_hedged_3host": bench_fleet_hedged,
    "dtm_decisions_1stack": bench_dtm_decisions,
}


def run_benchmarks(names: Optional[List[str]] = None) -> Dict[str, float]:
    """Run (a subset of) the benchmarks, returning name -> seconds."""
    keys = list(BENCHMARKS) if names is None else list(names)
    unknown = [key for key in keys if key not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmarks: {unknown}")
    return {key: BENCHMARKS[key]() for key in keys}


def save_baseline(results: Dict[str, float], path: str = DEFAULT_BASELINE_PATH) -> None:
    """Write a baseline file for later ``--check`` runs."""
    payload = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": {name: round(seconds, 6) for name, seconds in results.items()},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def load_baseline(path: str = DEFAULT_BASELINE_PATH) -> Dict[str, float]:
    """Load the baseline's name -> seconds mapping."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {name: float(seconds) for name, seconds in payload["results"].items()}


def check_against_baseline(
    results: Dict[str, float],
    baseline: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions: benchmarks slower than ``baseline * (1 + tolerance)``.

    Benchmarks absent from the baseline are ignored (new benchmarks get a
    baseline on the next ``--update``); returns human-readable failure
    messages, empty when the check passes.
    """
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    failures = []
    for name, seconds in results.items():
        reference = baseline.get(name)
        if reference is None:
            continue
        limit = reference * (1.0 + tolerance)
        if seconds > limit:
            failures.append(
                f"{name}: {seconds*1e3:.1f} ms vs baseline {reference*1e3:.1f} ms "
                f"(limit {limit*1e3:.1f} ms at +{tolerance:.0%})"
            )
    return failures


def render_results(results: Dict[str, float]) -> str:
    """Plain-text table of benchmark timings."""
    width = max(len(name) for name in results)
    lines = [f"{name:<{width}}  {seconds*1e3:10.2f} ms" for name, seconds in results.items()]
    return "\n".join(lines)
