"""Ring oscillators built from stage models, with per-instance mismatch.

A :class:`RingOscillator` is the *hardware* of one oscillator on one die: it
carries the stage topology plus the frozen-at-manufacture effective threshold
offsets of its own transistors (stage-averaged random mismatch).  Operating
conditions — temperature, supply, and the die's systematic process shifts —
arrive per call through an :class:`Environment`, so the same instance can be
evaluated across temperature sweeps exactly like a fabricated oscillator in a
temperature chamber.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.circuits.inverter import StageModel, load_capacitance_cached
from repro.device.technology import ProcessCorner, Technology

# Short-circuit current overhead on top of pure switching energy.
_SHORT_CIRCUIT_FACTOR = 1.1


@dataclass(frozen=True)
class Environment:
    """Operating condition of a circuit: temperature, supply, process shift.

    Attributes:
        temp_k: Junction temperature in kelvin.
        vdd: Supply voltage in volts.
        dvtn: Systematic NMOS threshold shift at this location (global corner
            plus within-die field), in volts.
        dvtp: Systematic PMOS threshold-magnitude shift, in volts.
        mun_scale: NMOS mobility multiplier of the die.
        mup_scale: PMOS mobility multiplier of the die.
    """

    temp_k: float
    vdd: float
    dvtn: float = 0.0
    dvtp: float = 0.0
    mun_scale: float = 1.0
    mup_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.temp_k <= 0.0:
            raise ValueError("temperature must be positive kelvin")
        if self.vdd <= 0.0:
            raise ValueError("vdd must be positive")
        if self.mun_scale <= 0.0 or self.mup_scale <= 0.0:
            raise ValueError("mobility scales must be positive")

    @classmethod
    def from_corner(
        cls, corner: ProcessCorner, temp_k: float, vdd: float
    ) -> "Environment":
        """Environment of a die sitting exactly at a global corner."""
        return cls(
            temp_k=temp_k,
            vdd=vdd,
            dvtn=corner.dvtn,
            dvtp=corner.dvtp,
            mun_scale=corner.mun_scale,
            mup_scale=corner.mup_scale,
        )

    def at(
        self, temp_k: Optional[float] = None, vdd: Optional[float] = None
    ) -> "Environment":
        """Copy with a different temperature and/or supply."""
        return replace(
            self,
            temp_k=self.temp_k if temp_k is None else temp_k,
            vdd=self.vdd if vdd is None else vdd,
        )


@dataclass(frozen=True)
class RingOscillator:
    """A ring oscillator instance on a particular die.

    Attributes:
        name: Oscillator label (``"PSRO-N"`` etc.), used in readings/reports.
        stage: Delay model of each of the identical stages.
        stages: Odd number of stages.
        technology: Technology the oscillator is built in.
        vtn_offset: Frozen effective NMOS threshold offset of this instance
            (stage-averaged random mismatch), volts.
        vtp_offset: Frozen effective PMOS threshold offset, volts.
    """

    name: str
    stage: StageModel
    stages: int
    technology: Technology
    vtn_offset: float = 0.0
    vtp_offset: float = 0.0

    def __post_init__(self) -> None:
        if self.stages < 3 or self.stages % 2 == 0:
            raise ValueError("a ring oscillator needs an odd stage count >= 3")

    def _devices(self, env: Environment):
        nmos = replace(
            self.technology.nmos,
            vt0=self.technology.nmos.vt0 + env.dvtn + self.vtn_offset,
            mu0=self.technology.nmos.mu0 * env.mun_scale,
        )
        pmos = replace(
            self.technology.pmos,
            vt0=self.technology.pmos.vt0 + env.dvtp + self.vtp_offset,
            mu0=self.technology.pmos.mu0 * env.mup_scale,
        )
        return nmos, pmos

    def period(self, env: Environment) -> float:
        """Oscillation period in seconds under ``env``."""
        nmos, pmos = self._devices(env)
        load = load_capacitance_cached(self.stage, self.technology)
        t_rise, t_fall = self.stage.delays(nmos, pmos, env.vdd, env.temp_k, load)
        return self.stages * (t_rise + t_fall)

    def frequency(self, env: Environment) -> float:
        """Oscillation frequency in hertz under ``env``."""
        return 1.0 / self.period(env)

    def power(self, env: Environment) -> float:
        """Dynamic power in watts while running under ``env``.

        Every node toggles through one full swing per period, so the
        switching power is ``N * C * V_DD^2 * f``, inflated by a standard
        short-circuit overhead.
        """
        return self.power_from_frequency(env, self.frequency(env))

    def power_from_frequency(self, env: Environment, frequency: float) -> float:
        """Dynamic power at an already-evaluated oscillation frequency."""
        load = load_capacitance_cached(self.stage, self.technology)
        return (
            _SHORT_CIRCUIT_FACTOR
            * self.stages
            * load
            * env.vdd
            * env.vdd
            * frequency
        )

    def energy_for_window(self, env: Environment, window: float) -> float:
        """Energy in joules to keep the oscillator running for ``window`` s."""
        if window < 0.0:
            raise ValueError("window must be non-negative")
        return self.power(env) * window
