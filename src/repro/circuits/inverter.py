"""Stage delay models for the sensor's ring oscillators.

Each stage model maps (NMOS template, PMOS template, V_DD, T) to a rise and a
fall delay using the switching-charge approximation

    t_edge = C_load * V_DD / (2 * I_drive)            (driven edge)
    t_edge = C_load * V_DD / I_limit                  (starved edge)

with drive currents evaluated by the device model at ``V_DS = V_DD / 2`` (the
mid-swing "effective current" convention).  The factor-of-two difference
reflects that a full-strength edge is an accelerating ramp while a starved
edge is a constant-current ramp over the whole swing.

Four stage flavours implement the paper's oscillator bank:

* :class:`BalancedStage` — plain inverter, reference behaviour.
* :class:`NmosSensingStage` — fall edge limited by a stacked NMOS sensing
  pair whose gate sits at a near-ZTC bias; rise edge made fast by a wide
  PMOS.  Stage delay tracks V_tn strongly, V_tp and T weakly.
* :class:`PmosSensingStage` — the mirror image, sensing V_tp.
* :class:`StarvedStage` — both edges limited by a weak-inversion bias
  device: delay is exponential in (V_t - V_bias)/U_T, i.e. strongly
  temperature dependent.  This is the temperature-sensing (TSRO) stage.

Bias voltages are generated as fixed ratios of V_DD, matching an on-chip
resistive divider; this is what makes supply droop a residual error term
(experiment R-F8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

from repro.device.mosfet import MosfetParams, drain_current, gate_capacitance
from repro.device.stack import parallel_combine, series_stack_current
from repro.device.technology import Technology

# Drain-junction and local-wire parasitics as a fraction of the driven gate
# capacitance; a standard lumped-load convention for hand delay models.
_PARASITIC_FRACTION = 0.5
# Local wire length per stage in micrometres.
_STAGE_WIRE_UM = 2.0


def _drive_current(params: MosfetParams, width_units: float, vgs: float, vdd: float, temp_k: float) -> float:
    """Effective switching current of a ``width_units``-wide device."""
    device = parallel_combine(params, 1).scaled(width_scale=width_units)
    return drain_current(device, vgs, vdd / 2.0, temp_k)


@dataclass(frozen=True)
class StageModel(ABC):
    """Delay/capacitance model of one ring-oscillator stage."""

    @abstractmethod
    def delays(
        self, nmos: MosfetParams, pmos: MosfetParams, vdd: float, temp_k: float, load_cap: float
    ) -> Tuple[float, float]:
        """Return ``(t_rise, t_fall)`` in seconds for the given load."""

    @abstractmethod
    def input_capacitance(self, technology: Technology) -> float:
        """Capacitance presented to the driving stage by switching gates."""

    def load_capacitance(self, technology: Technology) -> float:
        """Total switched node capacitance when driving an identical stage."""
        return load_capacitance_cached(self, technology)


# Stage capacitances depend only on the stage geometry and the technology's
# device templates, both frozen at construction, yet the scalar path used to
# recompute them inside every period()/power() call.  Technology itself holds
# an unhashable corner dict, so the cache keys on the hashable pieces the
# capacitances actually depend on (stage, device templates, wire cap).
_CAPACITANCE_CACHE: dict = {}
_CAPACITANCE_CACHE_MAX = 1024


def _cache_put(key, value: float) -> float:
    if len(_CAPACITANCE_CACHE) >= _CAPACITANCE_CACHE_MAX:
        _CAPACITANCE_CACHE.clear()
    _CAPACITANCE_CACHE[key] = value
    return value


def input_capacitance_cached(stage: "StageModel", technology: Technology) -> float:
    """Memoised :meth:`StageModel.input_capacitance` per (stage, technology)."""
    key = ("input", stage, technology.nmos, technology.pmos)
    try:
        return _CAPACITANCE_CACHE[key]
    except KeyError:
        return _cache_put(key, stage.input_capacitance(technology))


def load_capacitance_cached(stage: "StageModel", technology: Technology) -> float:
    """Memoised stage load capacitance per (stage, technology)."""
    key = ("load", stage, technology.nmos, technology.pmos, technology.wire_cap_per_um)
    try:
        return _CAPACITANCE_CACHE[key]
    except KeyError:
        gates = input_capacitance_cached(stage, technology)
        wire = technology.wire_cap_per_um * _STAGE_WIRE_UM
        return _cache_put(key, gates * (1.0 + _PARASITIC_FRACTION) + wire)


@dataclass(frozen=True)
class BalancedStage(StageModel):
    """Plain inverter stage with mobility-balanced pull-up/pull-down.

    The sensor's reference ring uses a non-minimum ``length_scale`` and
    generous widths: a reference is only useful if its own mismatch is far
    below what it is referencing, and (in the supply-aware extension) its
    gate area directly sets the V_DD read-out floor.

    Attributes:
        nmos_units: NMOS width in unit widths.
        pmos_units: PMOS width in unit widths (larger to balance mobility).
        length_scale: Channel-length multiplier of both devices.
    """

    nmos_units: float = 12.0
    pmos_units: float = 30.0
    length_scale: float = 3.0

    def devices(self, nmos, pmos):
        return (
            nmos.scaled(width_scale=self.nmos_units, length_scale=self.length_scale),
            pmos.scaled(width_scale=self.pmos_units, length_scale=self.length_scale),
        )

    def delays(self, nmos, pmos, vdd, temp_k, load_cap):
        n_dev, p_dev = self.devices(nmos, pmos)
        i_n = drain_current(n_dev, vdd, vdd / 2.0, temp_k)
        i_p = drain_current(p_dev, vdd, vdd / 2.0, temp_k)
        t_fall = load_cap * vdd / (2.0 * i_n)
        t_rise = load_cap * vdd / (2.0 * i_p)
        return t_rise, t_fall

    def input_capacitance(self, technology):
        n_dev, p_dev = self.devices(technology.nmos, technology.pmos)
        return gate_capacitance(n_dev) + gate_capacitance(p_dev)


@dataclass(frozen=True)
class NmosSensingStage(StageModel):
    """V_tn-sensing stage: starved fall edge through a stacked NMOS pair.

    The sensing pair's gate sits at ``bias_ratio * V_DD``, chosen near the
    NMOS zero-temperature-coefficient point so the stage delay is first-order
    temperature flat.  The stack raises sensitivity to V_tn (lower overdrive)
    while the oversized PMOS keeps the rise edge fast and the V_tp
    cross-sensitivity small.

    Attributes:
        bias_ratio: Sensing-gate bias as a fraction of V_DD.
        sense_units: Sensing-device width in unit widths (large, to average
            down its own mismatch).
        sense_length_scale: Sensing-device length multiplier.
        stack: Number of series sensing devices.
        switch_units: Width of the input switching NMOS.
        pmos_units: Width of the fast pull-up PMOS.
    """

    bias_ratio: float = 0.70
    sense_units: float = 8.0
    sense_length_scale: float = 2.0
    stack: int = 2
    switch_units: float = 4.0
    pmos_units: float = 6.0

    def sensing_device(self, nmos: MosfetParams) -> MosfetParams:
        """The (single) sensing transistor geometry used by this stage."""
        return nmos.scaled(width_scale=self.sense_units, length_scale=self.sense_length_scale)

    def delays(self, nmos, pmos, vdd, temp_k, load_cap):
        bias = self.bias_ratio * vdd
        sense = self.sensing_device(nmos)
        i_limit = series_stack_current(sense, self.stack, bias, vdd / 2.0, temp_k)
        i_p = _drive_current(pmos, self.pmos_units, vdd, vdd, temp_k)
        t_fall = load_cap * vdd / i_limit
        t_rise = load_cap * vdd / (2.0 * i_p)
        return t_rise, t_fall

    def input_capacitance(self, technology):
        # The sensing gates sit at DC bias; only the switch NMOS and the
        # PMOS gate load the previous stage.
        return gate_capacitance(technology.nmos) * self.switch_units + gate_capacitance(
            technology.pmos
        ) * self.pmos_units


@dataclass(frozen=True)
class PmosSensingStage(StageModel):
    """V_tp-sensing stage: the mirror image of :class:`NmosSensingStage`.

    The sensing pair is drawn substantially larger than PSRO-N's: PMOS drive
    is weak anyway, so the area is cheap, and the extra gate area averages
    mismatch down far enough that the V_tp read-out resolves about twice as
    finely as the V_tn one — the asymmetry the paper reports (+/-0.8 mV vs
    +/-1.6 mV).
    """

    bias_ratio: float = 0.79
    sense_units: float = 24.0
    sense_length_scale: float = 3.0
    stack: int = 2
    switch_units: float = 6.0
    nmos_units: float = 3.0

    def sensing_device(self, pmos: MosfetParams) -> MosfetParams:
        """The (single) sensing transistor geometry used by this stage."""
        return pmos.scaled(width_scale=self.sense_units, length_scale=self.sense_length_scale)

    def delays(self, nmos, pmos, vdd, temp_k, load_cap):
        bias = self.bias_ratio * vdd  # gate-source magnitude of the PMOS pair
        sense = self.sensing_device(pmos)
        i_limit = series_stack_current(sense, self.stack, bias, vdd / 2.0, temp_k)
        i_n = _drive_current(nmos, self.nmos_units, vdd, vdd, temp_k)
        t_rise = load_cap * vdd / i_limit
        t_fall = load_cap * vdd / (2.0 * i_n)
        return t_rise, t_fall

    def input_capacitance(self, technology):
        return gate_capacitance(technology.pmos) * self.switch_units + gate_capacitance(
            technology.nmos
        ) * self.nmos_units


@dataclass(frozen=True)
class StarvedStage(StageModel):
    """Temperature-sensing stage: both edges starved by weak-inversion bias.

    A footer NMOS and a mirrored header PMOS, both biased just below
    threshold, limit every transition.  The limiting current — and hence the
    oscillation frequency — is exponential in temperature through U_T and
    V_t(T).

    The limiting devices are drawn very large (both wide and long): their
    weak-inversion current sensitivity to threshold mismatch is 1/(n U_T)
    per volt, ~40x higher than the process rings', and unlike the die-level
    threshold shift this *private* offset cannot be corrected by the
    self-calibration engine.  Gate area is the only lever, so it is spent
    here.

    Attributes:
        bias_ratio: Bias-gate voltage as a fraction of V_DD (weak/moderate
            inversion).
        limiter_units: Width of the limiting devices in unit widths.
        limiter_length_scale: Length multiplier of the limiting devices.
        switch_units: Width of the inner switching inverter devices.
    """

    bias_ratio: float = 0.30
    limiter_units: float = 32.0
    limiter_length_scale: float = 8.0
    switch_units: float = 2.0

    def limiting_devices(self, nmos: MosfetParams, pmos: MosfetParams):
        """The footer/header limiting transistor geometries."""
        footer = nmos.scaled(
            width_scale=self.limiter_units, length_scale=self.limiter_length_scale
        )
        header = pmos.scaled(
            width_scale=self.limiter_units, length_scale=self.limiter_length_scale
        )
        return footer, header

    def delays(self, nmos, pmos, vdd, temp_k, load_cap):
        bias = self.bias_ratio * vdd
        footer, header = self.limiting_devices(nmos, pmos)
        i_fall = drain_current(footer, bias, vdd / 2.0, temp_k)
        i_rise = drain_current(header, bias, vdd / 2.0, temp_k)
        t_fall = load_cap * vdd / i_fall
        t_rise = load_cap * vdd / i_rise
        return t_rise, t_fall

    def input_capacitance(self, technology):
        units = self.switch_units
        return gate_capacitance(technology.nmos) * units + gate_capacitance(
            technology.pmos
        ) * units
