"""Behavioural digital primitives for the sensor read-out.

The sensor converts oscillator frequencies to digital codes by counting
oscillator edges inside a fixed reference window.  The counter model here
keeps the two properties that matter for accuracy and energy claims:

* **quantisation** — the count is an integer; the fractional cycle at the
  window boundary is lost, and the initial phase of the oscillator relative
  to the window is uniformly random per conversion;
* **energy** — a ripple counter's toggles per increment follow the geometric
  series 1 + 1/2 + 1/4 + ... -> 2, so counting ``c`` edges costs about
  ``2 c`` flip-flop toggles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class WindowCounter:
    """A windowed ripple counter measuring an oscillator frequency.

    Attributes:
        window: Counting window in seconds.
        bits: Counter width; counts wrap (overflow) beyond ``2**bits - 1``,
            exactly like the hardware would.
    """

    window: float
    bits: int = 16

    def __post_init__(self) -> None:
        if self.window <= 0.0:
            raise ValueError("window must be positive")
        if self.bits < 1:
            raise ValueError("counter needs at least one bit")

    @property
    def max_count(self) -> int:
        """Largest representable count."""
        return (1 << self.bits) - 1

    def count(self, frequency: float, rng: Optional[np.random.Generator] = None) -> int:
        """Edges counted in one window, with random initial phase.

        Args:
            frequency: Oscillator frequency in hertz.
            rng: Source of the initial-phase randomness; pass ``None`` for
                the deterministic mid-phase count (useful in tests and for
                building calibration LUTs, where phase noise must not leak
                into stored coefficients).
        """
        if frequency < 0.0:
            raise ValueError("frequency must be non-negative")
        phase = 0.5 if rng is None else float(rng.uniform(0.0, 1.0))
        raw = int(math.floor(frequency * self.window + phase))
        return raw & self.max_count

    def frequency_from_count(self, count: int) -> float:
        """Invert a count back to a frequency estimate in hertz."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return count / self.window

    def quantisation_step(self) -> float:
        """Frequency LSB of this counter in hertz."""
        return 1.0 / self.window

    def overflows_at(self, frequency: float) -> bool:
        """Whether a frequency would overflow the counter in one window."""
        return frequency * self.window > self.max_count


# Energy cost of toggling one counter flip-flop: clock + output load of a
# 65 nm-class TSPC/static flop at the sensor's supply, in farads.
FLIPFLOP_CAP = 2.0e-15


def ripple_counter_energy(counts: int, vdd: float, flipflop_cap: float = FLIPFLOP_CAP) -> float:
    """Energy in joules to accumulate ``counts`` increments.

    A ripple counter toggles its LSB on every increment, the next bit every
    second increment, and so on — about two toggles per increment in total.
    """
    if counts < 0:
        raise ValueError("counts must be non-negative")
    toggles = 2.0 * counts
    return toggles * flipflop_cap * vdd * vdd


def required_bits(max_frequency: float, window: float) -> int:
    """Counter width needed to hold ``max_frequency`` over ``window``."""
    if max_frequency <= 0.0 or window <= 0.0:
        raise ValueError("max_frequency and window must be positive")
    return max(1, math.ceil(math.log2(max_frequency * window + 1.0)))
