"""Ring-oscillator jitter: the noise floor under the quantisation floor.

Thermal and flicker noise in the stage transistors make an RO's period a
random variable.  Independent per-period errors accumulate as a random
walk over the N = f * T_w periods of a counting window, so the *measured
frequency* carries a relative error of

    sigma_f / f = kappa / sqrt(N) = kappa / sqrt(f * T_w)

where ``kappa`` is the oscillator's relative per-period jitter
(dimensionless; 65 nm ring oscillators sit around 1e-4..1e-3).  Doubling
the window halves the jitter *power* — the 1/sqrt(N) averaging law
experiment R-E6 measures.

Jitter is disabled by default throughout the library (kappa = 0) so the
reproduced headline numbers stay quantisation/mismatch-limited as the
paper's are; the experiment enables it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class JitterModel:
    """Accumulated-jitter model of a ring oscillator measurement.

    Attributes:
        kappa: Relative per-period jitter (dimensionless); 0 disables
            jitter.
    """

    kappa: float = 0.0

    def __post_init__(self) -> None:
        if self.kappa < 0.0:
            raise ValueError("kappa must be non-negative")

    def frequency_sigma(self, frequency: float, window: float) -> float:
        """Standard deviation of the measured frequency in hertz."""
        if frequency <= 0.0 or window <= 0.0:
            raise ValueError("frequency and window must be positive")
        if self.kappa == 0.0:
            return 0.0
        periods = frequency * window
        return frequency * self.kappa / np.sqrt(periods)

    def apply(
        self,
        frequency: float,
        window: float,
        rng: Optional[np.random.Generator],
    ) -> float:
        """The frequency a jittery measurement would report.

        ``rng=None`` (deterministic mode) returns the noiseless frequency,
        mirroring the counters' deterministic mid-phase convention.
        """
        sigma = self.frequency_sigma(frequency, window)
        if rng is None or sigma == 0.0:
            return frequency
        return max(1.0, float(rng.normal(frequency, sigma)))


def averaged_sigma(single_sigma: float, conversions: int) -> float:
    """Sigma after averaging N independent conversions (the sqrt-N law)."""
    if conversions < 1:
        raise ValueError("conversions must be >= 1")
    return single_sigma / np.sqrt(conversions)
