"""Circuit-level substrate: stage delay models, ring oscillators, counters.

The paper's sensor is three ring oscillators plus digital read-out.  This
package models:

* inverter-class stage delays driven by the analytic device model
  (``inverter``): balanced stages, NMOS/PMOS-sensing skewed stages with
  near-ZTC bias, and current-starved (temperature-sensing) stages;
* ring oscillators composed of those stages, including per-instance
  mismatch (``ring_oscillator``);
* the sensor macro's oscillator bank (``oscillator_bank``);
* behavioural digital primitives — windowed counters with real quantisation
  (``digital``).
"""

from repro.circuits.digital import WindowCounter, ripple_counter_energy
from repro.circuits.noise import JitterModel, averaged_sigma
from repro.circuits.inverter import (
    BalancedStage,
    NmosSensingStage,
    PmosSensingStage,
    StageModel,
    StarvedStage,
)
from repro.circuits.oscillator_bank import (
    BankFrequencies,
    OscillatorBank,
    build_oscillator_bank,
    environment_for_die,
)
from repro.circuits.ring_oscillator import Environment, RingOscillator

__all__ = [
    "BalancedStage",
    "BankFrequencies",
    "Environment",
    "JitterModel",
    "averaged_sigma",
    "environment_for_die",
    "NmosSensingStage",
    "OscillatorBank",
    "PmosSensingStage",
    "RingOscillator",
    "StageModel",
    "StarvedStage",
    "WindowCounter",
    "build_oscillator_bank",
    "ripple_counter_energy",
]
