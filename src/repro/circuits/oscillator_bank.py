"""The sensor macro's oscillator bank and its per-die construction.

One :class:`OscillatorBank` is the analog half of one PT-sensor site: the
V_tn-sensing ring (PSRO-N), the V_tp-sensing ring (PSRO-P), the
temperature-sensing ring (TSRO) and a balanced reference ring.  Building a
bank for a concrete :class:`~repro.variation.montecarlo.DieSample` freezes
that die's random mismatch into the oscillator instances, exactly as
manufacture would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.circuits.inverter import (
    BalancedStage,
    NmosSensingStage,
    PmosSensingStage,
    StarvedStage,
)
from repro.circuits.ring_oscillator import Environment, RingOscillator
from repro.device.technology import Technology
from repro.variation.mismatch import mismatch_sigma_vt
from repro.variation.montecarlo import DieSample


@dataclass(frozen=True)
class BankFrequencies:
    """Frequencies of the four oscillators under one environment, in hertz."""

    psro_n: float
    psro_p: float
    tsro: float
    reference: float


@dataclass(frozen=True)
class OscillatorBank:
    """The four ring oscillators of one sensor site."""

    psro_n: RingOscillator
    psro_p: RingOscillator
    tsro: RingOscillator
    reference: RingOscillator

    def frequencies(self, env: Environment) -> BankFrequencies:
        """Evaluate all oscillators under a common environment."""
        return BankFrequencies(
            psro_n=self.psro_n.frequency(env),
            psro_p=self.psro_p.frequency(env),
            tsro=self.tsro.frequency(env),
            reference=self.reference.frequency(env),
        )

    def oscillators(self) -> Dict[str, RingOscillator]:
        """Name-to-instance map, handy for sweeps and reports."""
        return {
            "PSRO-N": self.psro_n,
            "PSRO-P": self.psro_p,
            "TSRO": self.tsro,
            "REF": self.reference,
        }


def _stage_averaged_offset(
    rng: Optional[np.random.Generator], sigma_device: float, devices: int
) -> float:
    """Frequency-visible threshold offset of a ring: mean of device offsets."""
    if rng is None or sigma_device <= 0.0:
        return 0.0
    return float(rng.normal(0.0, sigma_device / np.sqrt(devices)))


def build_oscillator_bank(
    technology: Technology,
    die: Optional[DieSample] = None,
    psro_stages: int = 13,
    tsro_stages: int = 9,
    psro_n_stage: Optional[NmosSensingStage] = None,
    psro_p_stage: Optional[PmosSensingStage] = None,
    tsro_stage: Optional[StarvedStage] = None,
    rng: Optional[np.random.Generator] = None,
) -> OscillatorBank:
    """Build one sensor site's oscillator bank.

    Args:
        technology: Target technology.
        die: Monte-Carlo die the bank is manufactured on.  When given (and
            ``rng`` is not), the die's own mismatch stream is used, so two
            banks built on the same die get different mismatch while staying
            reproducible.  ``None`` builds the *typical* (mismatch-free)
            bank — the one the calibration model is characterised from.
        psro_stages: Stage count of the process-sensing rings (odd).
        tsro_stages: Stage count of the temperature-sensing ring (odd).
        psro_n_stage: Override for the PSRO-N stage design.
        psro_p_stage: Override for the PSRO-P stage design.
        tsro_stage: Override for the TSRO stage design.
        rng: Explicit mismatch stream, overriding the die's.

    Returns:
        The constructed :class:`OscillatorBank`.
    """
    n_stage = psro_n_stage if psro_n_stage is not None else NmosSensingStage()
    p_stage = psro_p_stage if psro_p_stage is not None else PmosSensingStage()
    t_stage = tsro_stage if tsro_stage is not None else StarvedStage()
    ref_stage = BalancedStage()

    if rng is None and die is not None:
        rng = die.mismatch_rng()

    # Per-device mismatch sigmas of the delay-dominating transistors.
    sense_n = n_stage.sensing_device(technology.nmos)
    sense_p = p_stage.sensing_device(technology.pmos)
    footer, header = t_stage.limiting_devices(technology.nmos, technology.pmos)

    ref_n_dev, ref_p_dev = ref_stage.devices(technology.nmos, technology.pmos)

    sigma_sense_n = mismatch_sigma_vt(sense_n, technology.avt_n)
    sigma_sense_p = mismatch_sigma_vt(sense_p, technology.avt_p)
    sigma_footer = mismatch_sigma_vt(footer, technology.avt_n)
    sigma_header = mismatch_sigma_vt(header, technology.avt_p)
    # Cross-polarity devices of the sensing rings (switch/pull devices).
    sigma_ref_n = mismatch_sigma_vt(technology.nmos, technology.avt_n)
    sigma_ref_p = mismatch_sigma_vt(technology.pmos, technology.avt_p)
    # The reference ring's own (large) devices.
    sigma_refring_n = mismatch_sigma_vt(ref_n_dev, technology.avt_n)
    sigma_refring_p = mismatch_sigma_vt(ref_p_dev, technology.avt_p)

    psro_n = RingOscillator(
        name="PSRO-N",
        stage=n_stage,
        stages=psro_stages,
        technology=technology,
        vtn_offset=_stage_averaged_offset(rng, sigma_sense_n, n_stage.stack * psro_stages),
        vtp_offset=_stage_averaged_offset(rng, sigma_ref_p, psro_stages),
    )
    psro_p = RingOscillator(
        name="PSRO-P",
        stage=p_stage,
        stages=psro_stages,
        technology=technology,
        vtn_offset=_stage_averaged_offset(rng, sigma_ref_n, psro_stages),
        vtp_offset=_stage_averaged_offset(rng, sigma_sense_p, p_stage.stack * psro_stages),
    )
    tsro = RingOscillator(
        name="TSRO",
        stage=t_stage,
        stages=tsro_stages,
        technology=technology,
        vtn_offset=_stage_averaged_offset(rng, sigma_footer, tsro_stages),
        vtp_offset=_stage_averaged_offset(rng, sigma_header, tsro_stages),
    )
    reference = RingOscillator(
        name="REF",
        stage=ref_stage,
        stages=psro_stages,
        technology=technology,
        vtn_offset=_stage_averaged_offset(rng, sigma_refring_n, psro_stages),
        vtp_offset=_stage_averaged_offset(rng, sigma_refring_p, psro_stages),
    )
    return OscillatorBank(psro_n=psro_n, psro_p=psro_p, tsro=tsro, reference=reference)


def environment_for_die(
    die: DieSample,
    location: Tuple[float, float],
    temp_k: float,
    vdd: float,
) -> Environment:
    """Physical operating environment of a sensor site on a die.

    Combines the die's global corner (threshold and mobility) with the
    within-die systematic fields at the site location.
    """
    x, y = location
    dvtn, dvtp = die.vt_shifts_at(x, y)
    return Environment(
        temp_k=temp_k,
        vdd=vdd,
        dvtn=dvtn,
        dvtp=dvtp,
        mun_scale=die.corner.mun_scale,
        mup_scale=die.corner.mup_scale,
    )
