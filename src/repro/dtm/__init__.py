"""Fleet-scale dynamic thermal management and placement-at-scale.

Two halves, one subsystem:

* **Placement-at-scale** (:mod:`repro.dtm.engine`): a vectorized
  candidate-scoring engine that evaluates millions of candidate sensor
  placements per stack by batching reconstruction-error evaluation over
  the thermal fields, plus a seeded top-k tournament driver and
  floorplan-style inputs (tier dims, power maps, TSV keep-outs).
  Parity-gated against the scalar greedy path in
  :mod:`repro.network.placement`.

* **Live DTM control plane** (:mod:`repro.dtm.table`,
  :mod:`repro.dtm.service`): the server keeps a
  :class:`~repro.dtm.table.DtmTable` of per-(stack, tier) power scales
  with round-idempotent decision accounting, exposed as the ``dtm.*`` op
  family on all three wire faces; a :class:`~repro.dtm.service.DtmService`
  subscribes to the edge stream plane (``read`` events +
  ``alert.runaway_warning``), runs the
  :class:`~repro.network.dtm.DtmPolicy` hysteresis and issues typed
  throttle/release decisions within a latency deadline budget.

The control-plane arithmetic is shared with the offline E4 loop through
:func:`repro.network.dtm.decide` / ``apply_action``, so live decisions
and the batch experiment move scales identically.

``service`` (and its :class:`DtmClient`/:class:`DtmService`) is exposed
lazily: importing :mod:`repro.dtm` for the placement engine does not pull
in the edge networking stack.
"""

from repro.dtm.engine import (
    FloorplanSpec,
    PlacementEngine,
    TournamentResult,
)
from repro.dtm.table import DtmDecision, DtmTable
from repro.network.dtm import DTM_ACTIONS, RELEASE, THROTTLE, DtmPolicy, apply_action, decide

__all__ = [
    "DTM_ACTIONS",
    "DtmClient",
    "DtmDecision",
    "DtmPolicy",
    "DtmService",
    "DtmServiceConfig",
    "DtmTable",
    "FloorplanSpec",
    "PlacementEngine",
    "RELEASE",
    "THROTTLE",
    "TournamentResult",
    "apply_action",
    "decide",
]

_LAZY = {"DtmService", "DtmServiceConfig", "DtmClient"}


def __getattr__(name):
    if name in _LAZY:
        from repro.dtm import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
