"""The live DTM loop: stream-plane events in, typed decisions out.

:class:`DtmService` is the closed loop the paper promises, run against a
real edge deployment instead of the offline solver: it subscribes to the
edge stream plane (``read`` events and ``alert.runaway_warning``),
maintains per-(stack, tier) thermal state from the push feed, runs the
:class:`~repro.network.dtm.DtmPolicy` hysteresis via
:func:`repro.network.dtm.decide`, and issues ``dtm.throttle`` /
``dtm.release`` decisions back to the server's
:class:`~repro.dtm.table.DtmTable` through :class:`DtmClient`.

Delivery discipline: decisions are **idempotent by round** on the server,
and the service additionally dedupes locally, so the loop is safe under
at-least-once event delivery — a dropped connection resubscribes and
replayed or re-observed rounds produce no double-throttle (the churn
tests pin this).  Every decision carries the measured event-to-decision
latency; the server counts misses against the deadline budget.

:class:`DtmClient` is the typed ``dtm.*`` client, one verb per method,
over any wire face — NDJSON, binary frames (JSON body) or HTTP
(``GET /v1/dtm/status`` / ``POST /v1/dtm/<verb>``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import telemetry
from repro.edge import protocol
from repro.edge.client import WIRE_FORMATS, EdgeClient, RetryPolicy, StreamReceiver
from repro.edge.protocol import EdgeError
from repro.network.dtm import DtmPolicy, decide
from repro.telemetry.runaway import ALERT_WARNING

_EVENTS = telemetry.counter(
    "dtm.service.events", unit="events", help="Stream events consumed by DtmService"
)
_DECISIONS = telemetry.counter(
    "dtm.service.decisions", unit="decisions", help="Decisions issued by DtmService"
)
_RECONNECTS = telemetry.counter(
    "dtm.service.reconnects",
    unit="reconnects",
    help="Stream resubscribes after a dropped connection",
)

#: Wire faces the DTM client speaks (the data wires plus HTTP).
DTM_WIRES = ("ndjson", "binary", "http")


class DtmClient:
    """Typed client for the ``dtm.*`` control plane, over any wire.

    One verb per method::

        with DtmClient(host, port) as dtm:
            dtm.throttle(stack=3, tier=1, round_index=17)
            dtm.status()["status"]["scales"]
            dtm.decisions(since=0)

    Decisions are **not retried** by the client transport — they are
    idempotent by round on the server, so the caller (the service loop)
    simply reissues on the next event if a send fails.
    """

    def __init__(
        self,
        host: str,
        port: int,
        wire: str = "ndjson",
        timeout_s: float = 30.0,
    ) -> None:
        if wire not in DTM_WIRES:
            raise ValueError(f"wire must be one of {DTM_WIRES}, not {wire!r}")
        self.host = host
        self.port = port
        self.wire = wire
        self.timeout_s = timeout_s
        self._client: Optional[EdgeClient] = None
        if wire in WIRE_FORMATS:
            self._client = EdgeClient(
                host,
                port,
                timeout_s=timeout_s,
                retry=RetryPolicy(attempts=1),
                wire=wire,
            )

    def close(self) -> None:
        if self._client is not None:
            self._client.close()

    def __enter__(self) -> "DtmClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ verbs

    def status(self) -> Dict[str, Any]:
        """Policy, standing scales and the exact decision accounting."""
        return self._call(protocol.DTM_STATUS)

    def throttle(
        self,
        stack: int,
        tier: int,
        round_index: int,
        latency_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Apply one throttle decision (idempotent by round)."""
        return self._call(
            protocol.DTM_THROTTLE,
            stack=stack,
            tier=tier,
            round=round_index,
            latency_ms=latency_ms,
        )

    def release(
        self,
        stack: int,
        tier: int,
        round_index: int,
        latency_ms: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Apply one release decision (idempotent by round)."""
        return self._call(
            protocol.DTM_RELEASE,
            stack=stack,
            tier=tier,
            round=round_index,
            latency_ms=latency_ms,
        )

    def decisions(self, since: int = 0) -> Dict[str, Any]:
        """Tail the applied-decision log past sequence number ``since``."""
        return self._call(protocol.DTM_DECISIONS, since=since)

    def reset(self) -> Dict[str, Any]:
        """Drop every scale back to full power (tests and maintenance)."""
        return self._call(protocol.DTM_RESET)

    # --------------------------------------------------------------- plumbing

    def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": op}
        payload.update({k: v for k, v in fields.items() if v is not None})
        if self.wire == "http":
            answer = self._http_call(op, payload)
        else:
            answer = self._client.raw(payload)
        if not answer.get("ok"):
            raise EdgeError.from_wire(answer.get("error", {}))
        return answer

    def _http_call(self, op: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        import http.client
        import json

        headers = {"Content-Type": "application/json"}
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            if op == protocol.DTM_STATUS:
                connection.request("GET", "/v1/dtm/status", headers=headers)
            else:
                verb = op.split(".", 1)[1]
                body = json.dumps(
                    {k: v for k, v in payload.items() if k != "op"},
                    separators=(",", ":"),
                ).encode("utf-8")
                connection.request(
                    "POST", f"/v1/dtm/{verb}", body=body, headers=headers
                )
            response = connection.getresponse()
            blob = response.read()
        finally:
            connection.close()
        return protocol.decode_line(blob)


@dataclass(frozen=True)
class DtmServiceConfig:
    """Knobs of the live DTM loop.

    Attributes:
        policy: The hysteresis controller (must match the server table's
            policy for the mirror to track exactly).
        deadline_ms: Decision-latency budget; each decision reports its
            measured event-to-decision latency and the server counts
            misses.
        wire: Wire face decisions ride (``ndjson`` / ``binary`` /
            ``http``).  The event subscription always rides a framed
            wire (``http`` decisions still subscribe over NDJSON).
        queue: Subscriber queue bound (``None`` takes the server
            default).
        metrics: Metric-name prefixes for the subscription filter
            (applies to ``metric`` events; ``read``/``alert`` events
            always flow).
    """

    policy: DtmPolicy = field(default_factory=DtmPolicy)
    deadline_ms: float = 50.0
    wire: str = "ndjson"
    queue: Optional[int] = None
    metrics: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.wire not in DTM_WIRES:
            raise ValueError(f"wire must be one of {DTM_WIRES}, not {self.wire!r}")


class DtmService:
    """The stream-driven throttling loop against one edge deployment."""

    def __init__(
        self,
        host: str,
        port: int,
        config: Optional[DtmServiceConfig] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.config = config if config is not None else DtmServiceConfig()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stream: Optional[EdgeClient] = None
        self._receiver: Optional[StreamReceiver] = None
        self._decider = DtmClient(host, port, wire=self.config.wire)
        self._lock = threading.Lock()
        self._scales: Dict[Tuple[int, int], float] = {}
        self._last_round: Dict[Tuple[int, int], int] = {}
        self.events = 0
        self.decisions = 0
        self.throttles = 0
        self.releases = 0
        self.duplicates = 0
        self.deadline_misses = 0
        self.reconnects = 0
        self.errors = 0

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "DtmService":
        """Subscribe and start the decision loop thread."""
        self._subscribe()
        self._thread = threading.Thread(
            target=self._run, name="dtm-service", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Tear the loop down (the subscription dies with the socket)."""
        self._stop.set()
        stream = self._stream
        if stream is not None:
            stream.close()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        self._decider.close()

    def __enter__(self) -> "DtmService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def kick(self) -> None:
        """Kill the stream socket (churn tests force a reconnect)."""
        stream = self._stream
        if stream is not None:
            stream.close()

    # ---------------------------------------------------------------- wiring

    def _subscribe(self) -> None:
        wire = self.config.wire if self.config.wire in WIRE_FORMATS else "ndjson"
        self._stream = EdgeClient(
            self.host,
            self.port,
            retry=RetryPolicy(attempts=1),
            wire=wire,
        )
        self._receiver = self._stream.subscribe(
            kinds=["read", "alert"],
            metrics=None if self.config.metrics is None else list(self.config.metrics),
            queue=self.config.queue,
        )

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                event = self._receiver.next()
            except (EdgeError, OSError, ValueError):
                # ValueError covers reads on a socket file the kick (or
                # stop) already closed under the loop.
                if self._stop.is_set():
                    return
                self.reconnects += 1
                _RECONNECTS.inc()
                try:
                    time.sleep(0.05)
                    self._subscribe()
                except (EdgeError, OSError):
                    continue
                continue
            self._handle(event, time.perf_counter())

    # -------------------------------------------------------------- decisions

    def _handle(self, event: Dict[str, Any], t0: float) -> None:
        kind = event.get("event")
        if kind == "read":
            self.events += 1
            _EVENTS.inc()
            stack = event.get("stack")
            round_index = event.get("round")
            temps = event.get("temps_c")
            if not isinstance(stack, int) or not isinstance(round_index, int):
                return
            if not isinstance(temps, dict):
                return
            for tier_key in sorted(temps):
                try:
                    tier = int(tier_key)
                    reading = float(temps[tier_key])
                except (TypeError, ValueError):
                    continue
                scale = self._scales.get((stack, tier), 1.0)
                action, _ = decide(self.config.policy, scale, reading)
                if action is not None:
                    self._issue(stack, tier, round_index, action, t0)
            return
        if kind == "alert":
            self.events += 1
            _EVENTS.inc()
            if event.get("name") != ALERT_WARNING:
                return
            stack = event.get("stack")
            tier = event.get("tier")
            round_index = event.get("round")
            if (
                isinstance(stack, int)
                and isinstance(tier, int)
                and isinstance(round_index, int)
            ):
                # Early warning outranks the absolute thresholds: the
                # slope says this tier is running away, so back it off
                # now rather than waiting for throttle_c.
                self._issue(stack, tier, round_index, "throttle", t0)

    def _issue(
        self, stack: int, tier: int, round_index: int, action: str, t0: float
    ) -> None:
        key = (stack, tier)
        last = self._last_round.get(key)
        if last is not None and round_index <= last:
            return  # locally deduped; the server table would refuse it too
        latency_ms = (time.perf_counter() - t0) * 1e3
        try:
            if action == "throttle":
                answer = self._decider.throttle(
                    stack, tier, round_index, latency_ms=latency_ms
                )
            else:
                answer = self._decider.release(
                    stack, tier, round_index, latency_ms=latency_ms
                )
        except (EdgeError, OSError):
            self.errors += 1
            return  # next event re-decides from the standing mirror
        decision = answer.get("decision", {})
        with self._lock:
            self._last_round[key] = round_index
            # The server's standing scale is authoritative; syncing the
            # mirror from the ack keeps both sides exactly equal even
            # across a service restart against warm server state.
            if isinstance(decision.get("scale"), (int, float)):
                self._scales[key] = float(decision["scale"])
            self.decisions += 1
            _DECISIONS.inc()
            if not decision.get("applied", True):
                self.duplicates += 1
            elif action == "throttle":
                self.throttles += 1
            else:
                self.releases += 1
            if latency_ms > self.config.deadline_ms:
                self.deadline_misses += 1

    # ---------------------------------------------------------------- queries

    def stats(self) -> Dict[str, Any]:
        """Loop-side accounting (the server table holds the authority)."""
        with self._lock:
            return {
                "events": self.events,
                "decisions": self.decisions,
                "throttles": self.throttles,
                "releases": self.releases,
                "duplicates": self.duplicates,
                "deadline_misses": self.deadline_misses,
                "reconnects": self.reconnects,
                "errors": self.errors,
                "tiers": len(self._scales),
            }
