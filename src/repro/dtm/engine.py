"""Placement-at-scale: batch scoring of candidate sensor placements.

The scalar path (:mod:`repro.network.placement`) evaluates one placement
at a time — fine for a greedy walk over a few dozen candidates, hopeless
for design-space exploration over floorplan variants.  This engine is
the array twin (the :mod:`repro.batch` style): it precomputes, once per
(field set, candidate set),

* ``S`` — every candidate site's bilinear sample in every workload field,
* ``T`` — the probe-lattice truth temperatures per field,
* ``D2`` — candidate-to-probe squared distances,

after which the worst-case reconstruction error of *any* placement (a row
of candidate indices) is a gather plus two reductions.  A chunked
:meth:`PlacementEngine.score` evaluates millions of placements without
materialising millions of fields; :meth:`PlacementEngine.greedy`
reproduces the scalar greedy exactly (same sites, same trace — the
parity gate), and :meth:`PlacementEngine.tournament` is the seeded
top-k search driver for budgets where greedy's one path is not enough.

Floorplan-style inputs come in through :class:`FloorplanSpec`: tier
dimensions, a candidate lattice, and TSV keep-out circles (derived from
the stress model via :func:`repro.tsv.keepout.keep_out_radius`) that
prune candidates a design rule would reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.network.placement import (
    PlacementResult,
    Site,
    candidate_grid,
    probe_points,
    sample_field,
)

_SCORED = telemetry.counter(
    "dtm.place.scored",
    unit="placements",
    help="Candidate placements scored by the batch engine",
)
_ROUNDS = telemetry.counter(
    "dtm.place.rounds", unit="rounds", help="Tournament rounds run"
)

#: Placements evaluated per scoring chunk (bounds peak memory to a few MB).
SCORE_CHUNK = 2048


@dataclass(frozen=True)
class FloorplanSpec:
    """Floorplan-style placement input: tier dims + keep-out circles.

    Attributes:
        width / height: Tier dimensions in metres.
        layer: Solver layer name the sensors observe.
        per_axis: Candidate lattice resolution per axis.
        margin: Edge margin as a fraction of each dimension.
        keepouts: ``(x, y, radius)`` circles candidates may not enter —
            TSV keep-out zones, macro blockages, pad rings.
    """

    width: float
    height: float
    layer: str
    per_axis: int = 12
    margin: float = 0.1
    keepouts: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("floorplan dimensions must be positive")

    @classmethod
    def with_tsv_keepouts(
        cls,
        width: float,
        height: float,
        layer: str,
        model,
        tsvs: Sequence[Any],
        mobility_tolerance: float = 0.05,
        per_axis: int = 12,
        margin: float = 0.1,
    ) -> "FloorplanSpec":
        """Keep-outs from a TSV array via the stress model's KOZ radii."""
        from repro.tsv.keepout import keep_out_radius

        keepouts = tuple(
            (site.x, site.y, keep_out_radius(model, site, mobility_tolerance))
            for site in tsvs
        )
        return cls(
            width=width,
            height=height,
            layer=layer,
            per_axis=per_axis,
            margin=margin,
            keepouts=keepouts,
        )

    def candidate_sites(self) -> List[Site]:
        """The candidate lattice minus every keep-out circle.

        Raises:
            ValueError: when the keep-outs swallow every candidate.
        """
        sites = candidate_grid(
            self.width, self.height, per_axis=self.per_axis, margin=self.margin
        )
        if not self.keepouts:
            return sites
        arr = np.asarray(sites)
        clear = np.ones(len(sites), dtype=bool)
        for x, y, radius in self.keepouts:
            d2 = (arr[:, 0] - x) ** 2 + (arr[:, 1] - y) ** 2
            clear &= d2 >= radius * radius
        kept = [site for site, ok in zip(sites, clear) if ok]
        if not kept:
            raise ValueError(
                "keep-out zones exclude every candidate site; widen the "
                "lattice or relax the tolerance"
            )
        return kept


@dataclass(frozen=True)
class TournamentResult:
    """Outcome of one seeded top-k tournament.

    Attributes:
        sites: The winning placement.
        worst_error_c: Its worst-case reconstruction error.
        scored: Total placements scored across all rounds (the figure the
            throughput benchmark reports).
        rounds: Rounds run.
        history: Best error after each round (non-increasing).
        seed: The seed that reproduces this exact search.
    """

    sites: List[Site]
    worst_error_c: float
    scored: int
    rounds: int
    history: List[float] = field(default_factory=list)
    seed: int = 0


class PlacementEngine:
    """Batch scorer over one (workload fields, candidate sites) pair."""

    def __init__(
        self,
        fields: Sequence[Any],
        layer: str,
        candidates: Sequence[Site],
        probe_grid: int = 12,
    ) -> None:
        if not fields:
            raise ValueError("need at least one workload field")
        if not candidates:
            raise ValueError("need at least one candidate site")
        self.layer = layer
        self.candidates = list(candidates)
        self.probe_grid = probe_grid
        arr = np.asarray(self.candidates, dtype=float).reshape(-1, 2)
        cx, cy = arr[:, 0], arr[:, 1]
        px, py = probe_points(fields[0], probe_grid)
        # S: (n_fields, n_candidates) candidate samples; T: (n_fields,
        # n_probes) truths; D2: (n_candidates, n_probes) distances.  The
        # per-placement score needs nothing else.
        self.samples = np.stack(
            [sample_field(f, layer, cx, cy) for f in fields], axis=0
        )
        self.truth = np.stack(
            [sample_field(f, layer, px, py) for f in fields], axis=0
        )
        self.d2 = (cx[:, None] - px[None, :]) ** 2 + (cy[:, None] - py[None, :]) ** 2
        self.scored = 0

    @property
    def n_candidates(self) -> int:
        return len(self.candidates)

    # --------------------------------------------------------------- scoring

    def score(
        self, placements: np.ndarray, chunk: int = SCORE_CHUNK
    ) -> np.ndarray:
        """Worst-case reconstruction error of each placement row.

        ``placements`` is an integer array of shape ``(m, k)`` indexing
        :attr:`candidates`; row order and duplicates are the caller's
        business (a duplicate site simply wastes a slot).  Scores match
        :func:`repro.network.placement.reconstruction_error` maxed over
        the engine's fields, bit for bit.
        """
        placements = np.asarray(placements, dtype=np.intp)
        if placements.ndim != 2:
            raise ValueError("placements must be a (m, k) index array")
        m = placements.shape[0]
        scores = np.empty(m)
        for start in range(0, m, chunk):
            rows = placements[start : start + chunk]
            d2 = self.d2[rows]  # (mc, k, n_probes)
            nearest = np.argmin(d2, axis=1)  # (mc, n_probes)
            site_idx = np.take_along_axis(
                rows, nearest, axis=1
            )  # (mc, n_probes) candidate index per probe
            estimate = self.samples[:, site_idx]  # (n_f, mc, n_probes)
            err = np.abs(estimate - self.truth[:, None, :])
            scores[start : start + rows.shape[0]] = err.max(axis=(0, 2))
        self.scored += m
        _SCORED.inc(m)
        return scores

    def score_sites(self, placements: Sequence[Sequence[Site]]) -> np.ndarray:
        """Score placements given as site tuples (exact-match lookup)."""
        index = {site: i for i, site in enumerate(self.candidates)}
        rows = np.array(
            [[index[tuple(site)] for site in placement] for placement in placements],
            dtype=np.intp,
        )
        return self.score(rows)

    # ---------------------------------------------------------------- greedy

    def greedy(self, sensor_budget: int) -> PlacementResult:
        """The scalar greedy walk on the precomputed arrays (exact parity).

        Site choices and the error trace equal
        :func:`repro.network.placement.greedy_placement` on the same
        fields/candidates — the parity gate the batch engine is held to.
        """
        if sensor_budget < 1:
            raise ValueError("sensor_budget must be >= 1")
        if sensor_budget > self.n_candidates:
            raise ValueError("sensor_budget exceeds the candidate count")
        n_probes = self.truth.shape[1]
        cand_err = np.abs(self.samples[:, :, None] - self.truth[:, None, :])
        chosen_idx: List[int] = []
        trace: List[float] = []
        best_d2 = np.full(n_probes, np.inf)
        best_site = np.zeros(n_probes, dtype=np.intp)
        taken = np.zeros(self.n_candidates, dtype=bool)
        worst = float("inf")
        for _ in range(sensor_budget):
            if chosen_idx:
                cur_err = np.abs(self.samples[:, best_site] - self.truth)
            else:
                cur_err = np.full(self.truth.shape, np.inf)
            closer = self.d2 < best_d2[None, :]
            trial = np.where(closer[None, :, :], cand_err, cur_err[:, None, :])
            scores = trial.max(axis=(0, 2))
            scores[taken] = np.inf
            pick = int(np.argmin(scores))
            worst = float(scores[pick])
            chosen_idx.append(pick)
            taken[pick] = True
            trace.append(worst)
            improved = self.d2[pick] < best_d2
            best_d2 = np.where(improved, self.d2[pick], best_d2)
            best_site = np.where(improved, pick, best_site)
        self.scored += sensor_budget * self.n_candidates
        _SCORED.inc(sensor_budget * self.n_candidates)
        sites = [self.candidates[i] for i in chosen_idx]
        return PlacementResult(sites=sites, worst_error_c=worst, error_trace=trace)

    # ------------------------------------------------------------ tournament

    def tournament(
        self,
        sensor_budget: int,
        pool: int = 4096,
        rounds: int = 8,
        keep: int = 64,
        seed: int = 2012,
        chunk: int = SCORE_CHUNK,
    ) -> TournamentResult:
        """Seeded top-k tournament over random placements.

        Each round scores a ``pool`` of placements, keeps the ``keep``
        best (stable order — ties break to the earlier row, so the same
        seed always reproduces the same search), and refills the pool
        with single-site mutations of the winners.  Round one seeds the
        pool with the greedy placement plus uniform random draws, so the
        tournament never finishes worse than greedy.
        """
        if sensor_budget < 1:
            raise ValueError("sensor_budget must be >= 1")
        if sensor_budget > self.n_candidates:
            raise ValueError("sensor_budget exceeds the candidate count")
        if pool < 2 or keep < 1 or keep >= pool or rounds < 1:
            raise ValueError("need pool >= 2, 1 <= keep < pool, rounds >= 1")
        rng = np.random.default_rng(seed)
        scored_before = self.scored
        greedy = self.greedy(sensor_budget)
        index = {site: i for i, site in enumerate(self.candidates)}
        population = self._random_population(rng, pool, sensor_budget)
        population[0] = [index[site] for site in greedy.sites]
        best_row = population[0].copy()
        best_score = np.inf
        history: List[float] = []
        for _ in range(rounds):
            scores = self.score(population, chunk=chunk)
            order = np.argsort(scores, kind="stable")
            elite = population[order[:keep]]
            if float(scores[order[0]]) < best_score:
                best_score = float(scores[order[0]])
                best_row = elite[0].copy()
            history.append(best_score)
            _ROUNDS.inc()
            children = self._mutate(rng, elite, pool - keep)
            population = np.concatenate([elite, children], axis=0)
        sites = [self.candidates[i] for i in best_row]
        return TournamentResult(
            sites=sites,
            worst_error_c=best_score,
            scored=self.scored - scored_before,
            rounds=rounds,
            history=history,
            seed=seed,
        )

    # -------------------------------------------------------------- plumbing

    def _random_population(
        self, rng: np.random.Generator, pool: int, k: int
    ) -> np.ndarray:
        """``(pool, k)`` index rows, distinct sites within each row."""
        rows = rng.integers(0, self.n_candidates, size=(pool, k), dtype=np.intp)
        return self._fix_duplicates(rng, rows)

    def _mutate(
        self, rng: np.random.Generator, elite: np.ndarray, count: int
    ) -> np.ndarray:
        """``count`` children, each an elite row with one site re-rolled."""
        parents = elite[rng.integers(0, elite.shape[0], size=count)]
        children = parents.copy()
        slot = rng.integers(0, children.shape[1], size=count)
        children[np.arange(count), slot] = rng.integers(
            0, self.n_candidates, size=count, dtype=np.intp
        )
        return self._fix_duplicates(rng, children)

    def _fix_duplicates(
        self, rng: np.random.Generator, rows: np.ndarray
    ) -> np.ndarray:
        """Re-roll within-row duplicate sites until every row is a set."""
        k = rows.shape[1]
        if k <= 1 or k > self.n_candidates:
            if k > self.n_candidates:
                raise ValueError("placement size exceeds the candidate count")
            return rows
        while True:
            ordered = np.sort(rows, axis=1)
            dup_rows = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            if not dup_rows.any():
                return rows
            for r in np.flatnonzero(dup_rows):
                seen: set = set()
                for j in range(k):
                    while int(rows[r, j]) in seen:
                        rows[r, j] = rng.integers(0, self.n_candidates)
                    seen.add(int(rows[r, j]))
