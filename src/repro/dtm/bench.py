"""DTM acceptance measurements: placement throughput, decision latency.

Three measurements, each behind a small report dataclass so the CLI
(``python -m repro dtm --bench / --place``) and the benchmark gates in
``benchmarks/bench_dtm.py`` share one implementation:

* :func:`run_placement_bench` — the batch :class:`PlacementEngine`
  sweeping a >=100k-placement greedy walk, against the per-evaluation
  cost of the original scalar path (measured on a subsample and
  extrapolated — running the scalar greedy at this scale outright would
  take minutes).  The extrapolation deliberately prices a scalar
  evaluation at trial length 1, the *cheapest* the scalar loop ever
  gets, so the reported speedup is a floor.  Parity is checked on a
  small exact sweep: the engine's greedy must choose the scalar walk's
  sites bit for bit, and the tournament must never do worse.

* :func:`run_live_vs_batch` — a real edge server plus the
  :class:`~repro.dtm.service.DtmService` against an injected runaway
  trace: the live loop's first throttle round must never be later than
  the post-hoc batch controller (the round the sensed trace first
  crosses ``throttle_c``, i.e. :func:`~repro.telemetry.runaway.batch_alarm_round`
  at the throttle threshold).

* :func:`measure_decision_rate` — throughput of the server-side
  decision hot path (:meth:`DtmTable.apply`), the figure recorded as
  ``dtm_decisions_1stack`` in ``benchmarks/BENCH_baseline.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.dtm.engine import PlacementEngine
from repro.dtm.table import DtmTable
from repro.network.dtm import DtmPolicy, RELEASE, THROTTLE
from repro.network.placement import (
    candidate_grid,
    greedy_placement,
    reconstruction_error_scalar,
)
from repro.thermal.grid import build_stack_grid
from repro.thermal.power import checkerboard_power_map, hotspot_power_map
from repro.thermal.solver import steady_state
from repro.tsv.geometry import StackDescriptor, TierSpec

BENCH_LAYER = "tier0.si"


def bench_fields(nx: int = 10):
    """A small 2-tier assembly and three steady workload fields.

    Deliberately coarse (the engine's cost scales with candidates and
    probes, not the solver grid) so building the inputs stays cheap next
    to the sweep being measured.
    """
    stack = StackDescriptor(tiers=[TierSpec("tier0"), TierSpec("tier1")])
    grid = build_stack_grid(
        stack.thermal_layers(nx, nx), stack.die_width, stack.die_height,
        nx=nx, ny=nx,
    )
    w, h = stack.die_width, stack.die_height
    idle = hotspot_power_map(nx, nx, w, h, [], 0.3)
    workloads = [
        {
            BENCH_LAYER: hotspot_power_map(
                nx, nx, w, h, [(0.8e-3, 0.8e-3, 1e-3, 1e-3, 2.0)], 0.4
            ),
            "tier1.si": idle,
        },
        {
            BENCH_LAYER: hotspot_power_map(
                nx, nx, w, h, [(3.2e-3, 3.2e-3, 1e-3, 1e-3, 2.0)], 0.4
            ),
            "tier1.si": idle,
        },
        {
            BENCH_LAYER: checkerboard_power_map(nx, nx, 2.5, blocks=4),
            "tier1.si": idle,
        },
    ]
    fields = [steady_state(grid, workload) for workload in workloads]
    return stack, fields


# ------------------------------------------------------------- placement


@dataclass(frozen=True)
class PlacementBenchReport:
    """Engine-vs-scalar throughput on one greedy sweep."""

    candidates: int
    budget: int
    scored: int
    engine_s: float
    scalar_eval_s: float
    parity_ok: bool
    tournament_ok: bool
    worst_error_c: float

    @property
    def scalar_extrapolated_s(self) -> float:
        """What the scalar path would take for the same evaluations."""
        return self.scalar_eval_s * self.scored

    @property
    def speedup(self) -> float:
        return self.scalar_extrapolated_s / self.engine_s

    def render(self) -> str:
        return (
            f"placement: {self.scored} placements scored over "
            f"{self.candidates} candidates (budget {self.budget}) in "
            f"{self.engine_s * 1e3:.0f} ms; scalar path at "
            f"{self.scalar_eval_s * 1e6:.0f} us/eval would take "
            f"{self.scalar_extrapolated_s:.1f} s -> {self.speedup:.0f}x; "
            f"worst error {self.worst_error_c:.2f} degC; "
            f"greedy parity {'ok' if self.parity_ok else 'FAILED'}, "
            f"tournament {'ok' if self.tournament_ok else 'FAILED'}"
        )


def run_placement_bench(
    per_axis: int = 132,
    budget: int = 6,
    probe_grid: int = 8,
    subsample: int = 200,
    parity_per_axis: int = 7,
    parity_budget: int = 4,
    nx: int = 10,
) -> PlacementBenchReport:
    """Time the engine's greedy sweep and price the scalar equivalent.

    The default geometry scores ``budget * per_axis**2`` > 100k candidate
    placements — the scale the acceptance gate names.  One "evaluation"
    is one placement scored across *all* fields (the engine's unit of
    work), and the scalar cost per evaluation is measured at trial
    length 1, its cheapest case, so the speedup is conservative.
    """
    stack, fields = bench_fields(nx)
    w, h = stack.die_width, stack.die_height

    candidates = candidate_grid(w, h, per_axis=per_axis)
    engine = PlacementEngine(fields, BENCH_LAYER, candidates, probe_grid=probe_grid)
    started = time.perf_counter()
    result = engine.greedy(budget)
    engine_s = time.perf_counter() - started
    scored = engine.scored

    probe = candidates[:: max(1, len(candidates) // subsample)][:subsample]
    started = time.perf_counter()
    for site in probe:
        max(
            reconstruction_error_scalar(f, BENCH_LAYER, [site], probe_grid)
            for f in fields
        )
    scalar_eval_s = (time.perf_counter() - started) / len(probe)

    small = candidate_grid(w, h, per_axis=parity_per_axis)
    exact = greedy_placement(
        fields, BENCH_LAYER, small, parity_budget, probe_grid=probe_grid
    )
    small_engine = PlacementEngine(fields, BENCH_LAYER, small, probe_grid=probe_grid)
    mirror = small_engine.greedy(parity_budget)
    parity_ok = (
        mirror.sites == exact.sites
        and mirror.error_trace == exact.error_trace
        and mirror.worst_error_c == exact.worst_error_c
    )
    tournament = small_engine.tournament(parity_budget, pool=256, rounds=3, keep=16)
    tournament_ok = tournament.worst_error_c <= exact.worst_error_c

    return PlacementBenchReport(
        candidates=len(candidates),
        budget=budget,
        scored=scored,
        engine_s=engine_s,
        scalar_eval_s=scalar_eval_s,
        parity_ok=parity_ok,
        tournament_ok=tournament_ok,
        worst_error_c=result.worst_error_c,
    )


# ---------------------------------------------------------- decision rate


@dataclass(frozen=True)
class DecisionRateReport:
    """Throughput of the server-side decision table."""

    decisions: int
    seconds: float

    @property
    def per_second(self) -> float:
        return self.decisions / self.seconds

    def render(self) -> str:
        return (
            f"decisions: {self.decisions} typed decisions through one "
            f"stack's table in {self.seconds * 1e3:.1f} ms "
            f"({self.per_second:,.0f}/s)"
        )


def measure_decision_rate(decisions: int = 20_000, tiers: int = 4) -> DecisionRateReport:
    """Time ``decisions`` throttle/release applies through one DtmTable.

    Rounds increase strictly per tier (every apply lands, none are
    duplicates), alternating verb runs so the scale actually moves —
    the exact arithmetic the live wire pays per decision.
    """
    policy = DtmPolicy()
    table = DtmTable(policy)
    started = time.perf_counter()
    for i in range(decisions):
        tier = i % tiers
        round_index = i // tiers
        action = THROTTLE if (round_index // 8) % 2 == 0 else RELEASE
        table.apply(0, tier, round_index, action, latency_ms=0.25)
    seconds = time.perf_counter() - started
    return DecisionRateReport(decisions=decisions, seconds=seconds)


# ---------------------------------------------------------- live vs batch


@dataclass(frozen=True)
class LiveVsBatchReport:
    """First-throttle timing: live control plane vs the batch controller."""

    rounds: int
    sensed_c: List[float]
    batch_round: Optional[int]
    live_round: Optional[int]
    decisions: int
    service_errors: int

    @property
    def live_no_later(self) -> bool:
        """The acceptance gate: the live loop never trails the batch one."""
        if self.live_round is None:
            return False
        return self.batch_round is None or self.live_round <= self.batch_round

    def render(self) -> str:
        batch = "never" if self.batch_round is None else f"round {self.batch_round}"
        live = "never" if self.live_round is None else f"round {self.live_round}"
        verdict = "ok" if self.live_no_later else "FAILED"
        return (
            f"live vs batch: injected runaway over {self.rounds} rounds "
            f"(sensed {self.sensed_c[0]:.1f} -> {self.sensed_c[-1]:.1f} degC); "
            f"batch controller throttles at {batch}, live service at {live} "
            f"({self.decisions} decision(s), {self.service_errors} error(s)) "
            f"-> {verdict}"
        )


def run_live_vs_batch(
    rounds: int = 12,
    start_c: float = 50.0,
    step_c: float = 5.0,
    stack: int = 9,
    tier: int = 1,
    policy: Optional[DtmPolicy] = None,
    deadline_ms: float = 200.0,
    timeout_s: float = 30.0,
) -> LiveVsBatchReport:
    """Race the live DTM service against the batch controller's round.

    Boots a one-shard edge server, attaches a :class:`DtmService`, and
    drives the same escalating trace both controllers see.  The batch
    reference is :func:`batch_alarm_round` on the *sensed* trace at the
    throttle threshold — the round the offline E4-style controller
    would first throttle.  The live round is read back over the wire
    from the server's decision log, so the comparison includes the whole
    push/decide/apply path.
    """
    from repro.dtm.service import DtmClient, DtmService, DtmServiceConfig
    from repro.edge import EdgeClient, EdgeConfig, EdgeServerThread
    from repro.edge.stream import StreamPolicy
    from repro.serve.requests import ReadRequest
    from repro.telemetry.runaway import batch_alarm_round

    policy = policy or DtmPolicy()
    config = EdgeConfig(
        shards=1,
        tiers=max(2, tier + 1),
        root_seed=2012,
        stream=StreamPolicy(sample_s=0.05, heartbeat_s=0.25),
        dtm=policy,
    )
    sensed: List[float] = []
    with EdgeServerThread(config) as edge:
        service = DtmService(
            edge.host, edge.port,
            DtmServiceConfig(policy=policy, deadline_ms=deadline_ms),
        )
        service.start()
        try:
            with EdgeClient(edge.host, edge.port) as driver:
                for i in range(rounds):
                    result = driver.read(
                        stack, ReadRequest.point(tier, start_c + step_c * i)
                    )
                    by_tier = {r.tier: r for r in result.readings}
                    sensed.append(by_tier[tier].temperature_c)
                    time.sleep(0.01)
            batch = batch_alarm_round(sensed, policy.throttle_c)
            live = None
            deadline = time.monotonic() + timeout_s
            with DtmClient(edge.host, edge.port) as dtm:
                while live is None and time.monotonic() < deadline:
                    throttles = [
                        d["round"]
                        for d in dtm.decisions()["decisions"]
                        if d["stack"] == stack
                        and d["tier"] == tier
                        and d["action"] == THROTTLE
                        and d["applied"]
                    ]
                    if throttles:
                        live = min(throttles)
                    elif batch is None:
                        break
                    else:
                        time.sleep(0.05)
            stats = service.stats()
        finally:
            service.stop()
    return LiveVsBatchReport(
        rounds=rounds,
        sensed_c=sensed,
        batch_round=batch,
        live_round=live,
        decisions=stats["decisions"],
        service_errors=stats["errors"],
    )
