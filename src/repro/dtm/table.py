"""The server-side DTM state: per-(stack, tier) scales, exactly once.

:class:`DtmTable` is what the ``dtm.*`` op family manipulates.  It owns

* the standing power scale of every (stack, tier) the control plane has
  touched (absent means full power, 1.0);
* **round idempotence**: at most one decision is applied per
  (stack, tier, round).  A replayed verb — a reconnecting controller
  resending after an SSE resume, a duplicated wire delivery — answers
  with the standing scale and ``applied: false`` instead of moving the
  scale twice.  This is what makes the live loop safe to drive through
  at-least-once delivery;
* a bounded decision log with a monotone sequence number
  (:meth:`decisions_since` lets an auditor tail it without gaps — the
  exact decision accounting the benchmark asserts);
* the deadline budget: every decision carries the controller's measured
  event-to-decision latency, and misses are counted, not hidden.

The scale arithmetic is :func:`repro.network.dtm.apply_action` — the
same float ops the offline E4 loop runs — so a decision stream replayed
into the batch controller lands on bit-identical scales.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro import telemetry
from repro.network.dtm import DTM_ACTIONS, DtmPolicy, apply_action

_THROTTLES = telemetry.counter(
    "dtm.throttles", unit="decisions", help="Applied dtm.throttle decisions"
)
_RELEASES = telemetry.counter(
    "dtm.releases", unit="decisions", help="Applied dtm.release decisions"
)
_DUPLICATES = telemetry.counter(
    "dtm.duplicates",
    unit="decisions",
    help="Decisions answered idempotently (round already decided)",
)
_DEADLINE_MISS = telemetry.counter(
    "dtm.deadline_miss",
    unit="decisions",
    help="Decisions whose event-to-decision latency exceeded the deadline budget",
)
_DECISION_MS = telemetry.histogram(
    "dtm.decision_latency_ms",
    unit="ms",
    help="Controller-measured event-to-decision latency per applied decision",
)

#: Default bound on the in-memory decision log.
DECISION_LOG = 4096


@dataclass(frozen=True)
class DtmDecision:
    """One applied (or idempotently replayed) control-plane decision.

    ``seq`` is the table-wide monotone sequence number (``0`` on a
    replay that found no prior applied decision to point at);
    ``applied`` is False when round idempotence answered from standing
    state instead of moving the scale.
    """

    seq: int
    stack: int
    tier: int
    round: int
    action: str
    scale: float
    applied: bool
    latency_ms: Optional[float] = None

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "seq": self.seq,
            "stack": self.stack,
            "tier": self.tier,
            "round": self.round,
            "action": self.action,
            "scale": self.scale,
            "applied": self.applied,
        }
        if self.latency_ms is not None:
            record["latency_ms"] = self.latency_ms
        return record


class DtmTable:
    """Thread-safe per-(stack, tier) scale table with decision accounting."""

    def __init__(
        self,
        policy: Optional[DtmPolicy] = None,
        deadline_ms: float = 50.0,
        log: int = DECISION_LOG,
    ) -> None:
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if log < 1:
            raise ValueError("log must be >= 1")
        self.policy = policy if policy is not None else DtmPolicy()
        self.deadline_ms = deadline_ms
        self._lock = threading.Lock()
        self._scales: Dict[Tuple[int, int], float] = {}
        self._last_round: Dict[Tuple[int, int], int] = {}
        self._last_seq: Dict[Tuple[int, int], int] = {}
        self._log: Deque[DtmDecision] = deque(maxlen=log)
        self._seq = 0
        self.throttles = 0
        self.releases = 0
        self.duplicates = 0
        self.deadline_misses = 0

    # ------------------------------------------------------------- decisions

    def apply(
        self,
        stack: int,
        tier: int,
        round_index: int,
        action: str,
        latency_ms: Optional[float] = None,
    ) -> DtmDecision:
        """Apply one decision verb, exactly once per (stack, tier, round).

        Raises:
            ValueError: on an unknown action or a negative round.
        """
        if action not in DTM_ACTIONS:
            raise ValueError(
                f"unknown DTM action {action!r}; known: {DTM_ACTIONS}"
            )
        if round_index < 0:
            raise ValueError("round must be >= 0")
        key = (stack, tier)
        with self._lock:
            last = self._last_round.get(key)
            if last is not None and round_index <= last:
                self.duplicates += 1
                decision = DtmDecision(
                    seq=self._last_seq.get(key, 0),
                    stack=stack,
                    tier=tier,
                    round=round_index,
                    action=action,
                    scale=self._scales.get(key, 1.0),
                    applied=False,
                    latency_ms=latency_ms,
                )
            else:
                scale = apply_action(
                    self.policy, self._scales.get(key, 1.0), action
                )
                self._seq += 1
                self._scales[key] = scale
                self._last_round[key] = round_index
                self._last_seq[key] = self._seq
                decision = DtmDecision(
                    seq=self._seq,
                    stack=stack,
                    tier=tier,
                    round=round_index,
                    action=action,
                    scale=scale,
                    applied=True,
                    latency_ms=latency_ms,
                )
                self._log.append(decision)
                if action == "throttle":
                    self.throttles += 1
                else:
                    self.releases += 1
                if latency_ms is not None and latency_ms > self.deadline_ms:
                    self.deadline_misses += 1
        if decision.applied:
            (_THROTTLES if action == "throttle" else _RELEASES).inc()
            if latency_ms is not None:
                _DECISION_MS.observe(latency_ms)
                if latency_ms > self.deadline_ms:
                    _DEADLINE_MISS.inc()
        else:
            _DUPLICATES.inc()
        return decision

    # --------------------------------------------------------------- queries

    def scale(self, stack: int, tier: int) -> float:
        """The standing power fraction of one tier (1.0 when untouched)."""
        with self._lock:
            return self._scales.get((stack, tier), 1.0)

    def scales(self) -> Dict[str, float]:
        """Every touched tier's scale, keyed ``"stack:tier"`` (wire form)."""
        with self._lock:
            return {
                f"{stack}:{tier}": scale
                for (stack, tier), scale in sorted(self._scales.items())
            }

    def decisions_since(self, seq: int = 0, limit: int = DECISION_LOG) -> List[Dict[str, Any]]:
        """Applied decisions with ``seq`` strictly greater than ``seq``."""
        if limit < 1:
            raise ValueError("limit must be >= 1")
        with self._lock:
            tail = [d.to_record() for d in self._log if d.seq > seq]
        return tail[:limit]

    def status(self) -> Dict[str, Any]:
        """The ``dtm.status`` body (policy, scales, exact accounting)."""
        with self._lock:
            return {
                "policy": {
                    "throttle_c": self.policy.throttle_c,
                    "release_c": self.policy.release_c,
                    "decrease_factor": self.policy.decrease_factor,
                    "increase_step": self.policy.increase_step,
                    "floor": self.policy.floor,
                },
                "deadline_ms": self.deadline_ms,
                "seq": self._seq,
                "scales": {
                    f"{stack}:{tier}": scale
                    for (stack, tier), scale in sorted(self._scales.items())
                },
                "throttles": self.throttles,
                "releases": self.releases,
                "duplicates": self.duplicates,
                "deadline_misses": self.deadline_misses,
                "throttled_tiers": sum(
                    1 for scale in self._scales.values() if scale < 1.0
                ),
            }

    def reset(self) -> int:
        """Drop every scale and decision back to full power; returns seq."""
        with self._lock:
            seq = self._seq
            self._scales.clear()
            self._last_round.clear()
            self._last_seq.clear()
            self._log.clear()
        return seq
