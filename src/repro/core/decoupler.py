"""Process decoupling: inverting ring frequencies into threshold shifts.

Given the measured (f_PSRO-N, f_PSRO-P) pair and a temperature estimate,
find the (dV_tn, dV_tp) the typical model would need to produce those
frequencies.  The on-chip-realistic implementation is a coarse LUT seed
followed by a short 2-D Newton refinement on the model — mirroring how the
silicon stores a characterisation grid and interpolates.

Because the sensitivity matrix is diagonally dominant by construction
(PSRO-N barely sees V_tp and vice versa — experiment R-F2), Newton from the
LUT seed converges in a handful of iterations everywhere inside the
characterised box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.errors import ExtractionDivergedError
from repro.core.sensing_model import SensingModel


@dataclass(frozen=True)
class ProcessLut:
    """Precomputed (dV_tn, dV_tp) -> (f_N, f_P) characterisation grid.

    Built once at "design time" for a reference temperature and supply;
    :meth:`seed` inverts it by nearest-neighbour search, which is exactly
    as dumb as the hardware equivalent and only has to land Newton inside
    its convergence basin.
    """

    dvtn_axis: np.ndarray
    dvtp_axis: np.ndarray
    f_n_grid: np.ndarray
    f_p_grid: np.ndarray

    @classmethod
    def build(
        cls,
        model: SensingModel,
        temp_k: float = 300.0,
        vdd: Optional[float] = None,
        points: Optional[int] = None,
    ) -> "ProcessLut":
        """Characterise the model over its validity box.

        Args:
            model: The design-time sensing model.
            temp_k: Reference temperature of the characterisation.
            vdd: Supply of the characterisation (``None`` = nominal).
            points: Grid points per axis (``None`` = the config's value).
        """
        points = model.config.lut_points_per_axis if points is None else points
        if points < 2:
            raise ValueError("the LUT needs at least two points per axis")
        axis = np.linspace(-model.vt_box, model.vt_box, points)
        f_n = np.empty((points, points))
        f_p = np.empty((points, points))
        for i, dvtn in enumerate(axis):
            for j, dvtp in enumerate(axis):
                f_n[i, j], f_p[i, j] = model.process_frequencies(
                    float(dvtn), float(dvtp), temp_k, vdd
                )
        return cls(dvtn_axis=axis, dvtp_axis=axis.copy(), f_n_grid=f_n, f_p_grid=f_p)

    def seed(self, f_n: float, f_p: float) -> Tuple[float, float]:
        """Nearest grid point in relative-frequency distance."""
        err_n = (self.f_n_grid - f_n) / self.f_n_grid
        err_p = (self.f_p_grid - f_p) / self.f_p_grid
        cost = err_n**2 + err_p**2
        i, j = np.unravel_index(int(np.argmin(cost)), cost.shape)
        return float(self.dvtn_axis[i]), float(self.dvtp_axis[j])


def extract_process(
    model: SensingModel,
    f_n_measured: float,
    f_p_measured: float,
    temp_k: float,
    vdd: Optional[float] = None,
    lut: Optional[ProcessLut] = None,
    iterations: Optional[int] = None,
    tolerance_hz: float = 1.0,
) -> Tuple[float, float]:
    """Extract (dV_tn, dV_tp) from measured process-ring frequencies.

    Args:
        model: The design-time sensing model.
        f_n_measured: Measured PSRO-N frequency in hertz.
        f_p_measured: Measured PSRO-P frequency in hertz.
        temp_k: Current temperature estimate in kelvin.
        vdd: Supply during the measurement (``None`` = nominal).
        lut: Optional prebuilt LUT for seeding; without it Newton starts
            from the typical point (0, 0), which also converges but models
            a LUT-less (cheaper, slower-locking) implementation.
        iterations: Newton iteration budget (``None`` = the config's value).
        tolerance_hz: Early-exit threshold on the frequency residual.

    Returns:
        The extracted ``(dvtn, dvtp)`` in volts.

    Raises:
        ExtractionDivergedError: If the iterate leaves the characterised box.
    """
    if f_n_measured <= 0.0 or f_p_measured <= 0.0:
        raise ValueError("measured frequencies must be positive")
    iterations = model.config.newton_iterations if iterations is None else iterations

    if lut is not None:
        dvtn, dvtp = lut.seed(f_n_measured, f_p_measured)
    else:
        dvtn, dvtp = 0.0, 0.0

    target = np.array([f_n_measured, f_p_measured])
    for _ in range(iterations):
        f_model = np.array(model.process_frequencies(dvtn, dvtp, temp_k, vdd))
        residual = f_model - target
        if np.max(np.abs(residual)) < tolerance_hz:
            break
        jac = model.process_jacobian(dvtn, dvtp, temp_k, vdd)
        try:
            step = np.linalg.solve(jac, residual)
        except np.linalg.LinAlgError as exc:
            raise ExtractionDivergedError(
                f"singular sensitivity matrix at dvtn={dvtn:.4f}, dvtp={dvtp:.4f}"
            ) from exc
        dvtn -= float(step[0])
        dvtp -= float(step[1])
        # Clamp to a slightly inflated box so a final iteration may pull a
        # borderline iterate back inside before we declare divergence.
        margin = 1.5 * model.vt_box
        if abs(dvtn) > margin or abs(dvtp) > margin:
            raise ExtractionDivergedError(
                f"iterate left the characterised box: dvtn={dvtn:.4f}, dvtp={dvtp:.4f}"
            )

    if not model.inside_box(dvtn, dvtp):
        raise ExtractionDivergedError(
            f"extraction settled outside the characterised box: "
            f"dvtn={dvtn:.4f}, dvtp={dvtp:.4f}"
        )
    return dvtn, dvtp
