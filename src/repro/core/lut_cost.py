"""LUT storage-cost analysis: what the on-chip characterisation costs.

The self-calibration engine stores a (dV_tn, dV_tp) -> (f_N, f_P)
characterisation grid.  On chip that grid is ROM/fuse bits, and its
resolution is a real design knob:

* too coarse, and the Newton seed lands outside the convergence basin (or
  a seed-only 'LUT-interpolation' implementation loses accuracy);
* too fine, and the macro's area is ROM, not sensor.

This module computes the storage bill for a LUT configuration and measures
the accuracy of a cheap *seed-only* implementation (bilinear LUT inversion
with no Newton refinement) versus the shipped LUT+Newton scheme, so the
design point can be justified quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.decoupler import ProcessLut, extract_process
from repro.core.sensing_model import SensingModel


@dataclass(frozen=True)
class LutCost:
    """Storage bill of one LUT configuration.

    Attributes:
        points_per_axis: Grid resolution.
        entries: Total stored frequency pairs.
        bits_per_entry: Storage width per frequency sample.
        total_bits: The ROM bill in bits.
    """

    points_per_axis: int
    entries: int
    bits_per_entry: int
    total_bits: int

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


def lut_storage(points_per_axis: int, bits_per_entry: int = 16) -> LutCost:
    """Compute the ROM bill of a LUT configuration.

    Each grid point stores two frequency samples (f_N, f_P) at
    ``bits_per_entry`` each.
    """
    if points_per_axis < 2:
        raise ValueError("need at least two points per axis")
    if bits_per_entry < 4:
        raise ValueError("bits_per_entry must be >= 4")
    entries = 2 * points_per_axis * points_per_axis
    return LutCost(
        points_per_axis=points_per_axis,
        entries=entries,
        bits_per_entry=bits_per_entry,
        total_bits=entries * bits_per_entry,
    )


def seed_only_extraction(
    lut: ProcessLut, f_n_measured: float, f_p_measured: float
) -> Tuple[float, float]:
    """LUT-only inversion: nearest seed plus local bilinear refinement.

    The cheapest hardware implementation — no Newton datapath at all.  A
    local linearisation around the nearest grid cell solves the 2x2 system
    from the stored neighbours' finite differences.
    """
    dvtn0, dvtp0 = lut.seed(f_n_measured, f_p_measured)
    i = int(np.argmin(np.abs(lut.dvtn_axis - dvtn0)))
    j = int(np.argmin(np.abs(lut.dvtp_axis - dvtp0)))
    i = min(max(i, 1), lut.dvtn_axis.size - 2)
    j = min(max(j, 1), lut.dvtp_axis.size - 2)

    dn = lut.dvtn_axis[i + 1] - lut.dvtn_axis[i - 1]
    dp = lut.dvtp_axis[j + 1] - lut.dvtp_axis[j - 1]
    jac = np.array(
        [
            [
                (lut.f_n_grid[i + 1, j] - lut.f_n_grid[i - 1, j]) / dn,
                (lut.f_n_grid[i, j + 1] - lut.f_n_grid[i, j - 1]) / dp,
            ],
            [
                (lut.f_p_grid[i + 1, j] - lut.f_p_grid[i - 1, j]) / dn,
                (lut.f_p_grid[i, j + 1] - lut.f_p_grid[i, j - 1]) / dp,
            ],
        ]
    )
    residual = np.array(
        [
            lut.f_n_grid[i, j] - f_n_measured,
            lut.f_p_grid[i, j] - f_p_measured,
        ]
    )
    step = np.linalg.solve(jac, residual)
    return float(lut.dvtn_axis[i] - step[0]), float(lut.dvtp_axis[j] - step[1])


def compare_implementations(
    model: SensingModel,
    points_per_axis: int,
    probe_points: int = 9,
    temp_k: float = 300.0,
) -> Tuple[float, float, LutCost]:
    """Worst extraction error of seed-only vs LUT+Newton at one LUT size.

    Args:
        model: The design-time sensing model.
        points_per_axis: LUT resolution under test.
        probe_points: Probe grid per axis across the validity box
            (off-grid points, the hard case for interpolation).
        temp_k: Probe temperature.

    Returns:
        ``(seed_only_worst_v, newton_worst_v, storage)`` — worst absolute
        dV_t error of each implementation in volts, plus the ROM bill.
    """
    lut = ProcessLut.build(model, temp_k=temp_k, points=points_per_axis)
    span = 0.9 * model.vt_box
    probes = np.linspace(-span, span, probe_points)
    worst_seed = 0.0
    worst_newton = 0.0
    for dvtn in probes:
        for dvtp in probes:
            f_n, f_p = model.process_frequencies(float(dvtn), float(dvtp), temp_k)
            got_n, got_p = seed_only_extraction(lut, f_n, f_p)
            worst_seed = max(worst_seed, abs(got_n - dvtn), abs(got_p - dvtp))
            ref_n, ref_p = extract_process(model, f_n, f_p, temp_k, lut=lut)
            worst_newton = max(worst_newton, abs(ref_n - dvtn), abs(ref_p - dvtp))
    return worst_seed, worst_newton, lut_storage(points_per_axis)
