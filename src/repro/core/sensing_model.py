"""The design-time sensing model: typical-bank response surfaces.

At design time the sensor's authors characterise the *typical* oscillator
bank — no mismatch, nominal corner — across threshold shifts, temperature
and supply, and burn the result into on-chip logic (LUT plus small
arithmetic).  :class:`SensingModel` is that characterisation: it wraps a
mismatch-free :class:`~repro.circuits.OscillatorBank` and answers the two
questions the calibration engine asks:

* "what frequencies *would* the typical bank produce at process point
  (dV_tn, dV_tp), temperature T, supply V_DD?" (forward model), and
* "how do the process-ring frequencies move per volt of threshold shift?"
  (Jacobian, for Newton inversion).

One physical subtlety is encoded here: the model cannot observe mobility
independently, so it assumes the foundry's standard threshold-mobility
coupling (a fast-V_t die is also a high-mobility die).  Dies that violate
the coupling contribute residual error — part of the paper's error budget,
not a free lunch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.circuits.oscillator_bank import OscillatorBank, build_oscillator_bank
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.device.technology import Technology
from repro.variation.corners import monte_carlo_corner


@dataclass(frozen=True)
class SensingModel:
    """Forward frequency model of the typical (mismatch-free) bank.

    Attributes:
        technology: Technology the sensor is designed in.
        config: Sensor design parameters (stage counts).
        vt_box: Half-width of the characterised (dV_tn, dV_tp) box, volts.
            Extractions outside the box are declared diverged.
    """

    technology: Technology
    config: SensorConfig = field(default_factory=SensorConfig)
    vt_box: float = 0.080

    def __post_init__(self) -> None:
        bank = build_oscillator_bank(
            self.technology,
            die=None,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
        )
        # Frozen dataclass: stash the derived bank via object.__setattr__.
        object.__setattr__(self, "_bank", bank)

    @property
    def bank(self) -> OscillatorBank:
        """The typical oscillator bank the model is characterised from."""
        return self._bank

    def environment(
        self, dvtn: float, dvtp: float, temp_k: float, vdd: Optional[float] = None
    ) -> Environment:
        """Typical-die environment at a hypothetical process point.

        Mobility is tied to threshold through the foundry coupling (see
        module docstring); the calibration logic has no independent
        mobility observable.
        """
        corner = monte_carlo_corner(dvtn, dvtp)
        return Environment(
            temp_k=temp_k,
            vdd=self.technology.vdd if vdd is None else vdd,
            dvtn=dvtn,
            dvtp=dvtp,
            mun_scale=corner.mun_scale,
            mup_scale=corner.mup_scale,
        )

    def process_frequencies(
        self, dvtn: float, dvtp: float, temp_k: float, vdd: Optional[float] = None
    ) -> Tuple[float, float]:
        """Model (f_PSRO-N, f_PSRO-P) at a process point, in hertz."""
        env = self.environment(dvtn, dvtp, temp_k, vdd)
        return self._bank.psro_n.frequency(env), self._bank.psro_p.frequency(env)

    def tsro_frequency(
        self, dvtn: float, dvtp: float, temp_k: float, vdd: Optional[float] = None
    ) -> float:
        """Model TSRO frequency at a process point, in hertz."""
        env = self.environment(dvtn, dvtp, temp_k, vdd)
        return self._bank.tsro.frequency(env)

    def process_jacobian(
        self,
        dvtn: float,
        dvtp: float,
        temp_k: float,
        vdd: Optional[float] = None,
        delta: float = 0.5e-3,
    ) -> np.ndarray:
        """2x2 Jacobian d(f_N, f_P)/d(dV_tn, dV_tp) in Hz/V.

        Central differences on the forward model; ``delta`` is 0.5 mV, far
        inside the model's smooth region.
        """
        jac = np.empty((2, 2))
        for col, (dn, dp) in enumerate(((delta, 0.0), (0.0, delta))):
            f_hi = self.process_frequencies(dvtn + dn, dvtp + dp, temp_k, vdd)
            f_lo = self.process_frequencies(dvtn - dn, dvtp - dp, temp_k, vdd)
            jac[0, col] = (f_hi[0] - f_lo[0]) / (2.0 * delta)
            jac[1, col] = (f_hi[1] - f_lo[1]) / (2.0 * delta)
        return jac

    def decoupling_ratio(self, temp_k: float, vdd: Optional[float] = None) -> float:
        """Diagonal dominance of the sensitivity matrix at a condition.

        The ratio of the smaller diagonal to the larger off-diagonal
        *relative* sensitivity; the larger it is, the better conditioned the
        process decoupling.  Reported in experiment R-F2.
        """
        f_n0, f_p0 = self.process_frequencies(0.0, 0.0, temp_k, vdd)
        jac = self.process_jacobian(0.0, 0.0, temp_k, vdd)
        rel = np.abs(jac / np.array([[f_n0], [f_p0]]))
        diag = min(rel[0, 0], rel[1, 1])
        off = max(rel[0, 1], rel[1, 0])
        if off == 0.0:
            return np.inf
        return float(diag / off)

    def inside_box(self, dvtn: float, dvtp: float) -> bool:
        """Whether a process point lies inside the characterised box."""
        return abs(dvtn) <= self.vt_box and abs(dvtp) <= self.vt_box
