"""The paper's contribution: the self-calibrated process-temperature sensor.

* ``sensing_model`` — the design-time characterisation of the typical
  oscillator bank: the frequency response surfaces and Jacobians the
  on-chip calibration logic is derived from.
* ``decoupler`` — inversion of the (PSRO-N, PSRO-P) frequencies into
  (dV_tn, dV_tp): LUT seeding plus 2-D Newton refinement.
* ``temperature`` — the process-corrected TSRO-to-temperature estimator.
* ``calibration`` — the self-calibration engine alternating process
  extraction and temperature estimation until both converge.
* ``sensor`` — :class:`PTSensor`, the top-level macro: oscillator bank,
  counters, calibration engine and energy accounting composed into the
  object a user instantiates per die.
"""

from repro.core.calibration import CalibrationState, SelfCalibrationEngine
from repro.core.decoupler import ProcessLut, extract_process
from repro.core.drift import DriftAnchoredModel
from repro.core.errors import (
    CalibrationError,
    ExtractionDivergedError,
    SensorError,
    TemperatureRangeError,
)
from repro.core.sensing_model import SensingModel
from repro.core.sensor import PTSensor, SensorReading
from repro.core.supply import SupplyAwareEngine, SupplyCalibrationState
from repro.core.temperature import estimate_temperature, estimate_temperature_clamped
from repro.core.tracking import TrackingPolicy, TrackingReading, TrackingSensor

__all__ = [
    "CalibrationError",
    "CalibrationState",
    "DriftAnchoredModel",
    "ExtractionDivergedError",
    "PTSensor",
    "ProcessLut",
    "SelfCalibrationEngine",
    "SensingModel",
    "SensorError",
    "SensorReading",
    "SupplyAwareEngine",
    "SupplyCalibrationState",
    "TemperatureRangeError",
    "TrackingPolicy",
    "TrackingReading",
    "TrackingSensor",
    "estimate_temperature",
    "estimate_temperature_clamped",
    "extract_process",
]
