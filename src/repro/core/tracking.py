"""Runtime tracking mode: cheap temperature reads on a stored calibration.

The paper's full conversion re-extracts the process point every time — the
right thing at power-on, but wasteful for continuous thermal monitoring:
a die's process point does not move between samples (it drifts over months,
via aging, not milliseconds).  The tracking mode splits the sensor's
operation the way a deployed monitoring network would:

* **full conversion** (the paper's 367.5 pJ-class read) at power-on and
  periodically thereafter — refreshes the stored (dV_tn, dV_tp);
* **fast conversion** in between — only the TSRO runs, inverted against the
  *stored* process point.  The PSRO rings stay power-gated, cutting the
  per-sample energy by roughly the two PSRO windows (~90 % of the budget).

The recalibration cadence bounds how much aging/supply drift can accumulate
between refreshes; experiment R-E3 quantifies the energy/accuracy trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import telemetry
from repro.circuits.ring_oscillator import Environment
from repro.faults.runtime import active_injector
from repro.core.errors import SensorError
from repro.core.sensor import PTSensor, SensorReading
from repro.core.temperature import estimate_temperature_clamped
from repro.readout.energy import ConversionEnergy, conversion_energy
from repro.units import celsius_to_kelvin, kelvin_to_celsius

_FULL_READS = telemetry.counter(
    "core.tracking.full_reads",
    unit="reads",
    help="Tracking-mode samples served by a full conversion",
)
_FAST_READS = telemetry.counter(
    "core.tracking.fast_reads",
    unit="reads",
    help="Tracking-mode samples served by the TSRO-only fast path",
)
_FAST_FAILURES = telemetry.counter(
    "core.tracking.fast_failures",
    unit="reads",
    help="Fast reads that raised a range error",
)


@dataclass(frozen=True)
class TrackingPolicy:
    """When the tracking sensor refreshes its stored calibration.

    Attributes:
        recalibration_interval: Full conversion every N reads (N >= 1;
            1 degenerates to the paper's always-full behaviour).
        max_fast_failures: Consecutive fast-read failures (range errors)
            that force an early full conversion.
    """

    recalibration_interval: int = 64
    max_fast_failures: int = 2

    def __post_init__(self) -> None:
        if self.recalibration_interval < 1:
            raise ValueError("recalibration_interval must be >= 1")
        if self.max_fast_failures < 1:
            raise ValueError("max_fast_failures must be >= 1")


@dataclass(frozen=True)
class TrackingReading:
    """One tracking-mode sample.

    Attributes:
        temperature_c: Estimated junction temperature, Celsius.
        mode: ``"full"`` or ``"fast"``.
        energy_j: Energy of this sample in joules.
        dvtn: Process state used for the inversion (stored or fresh), volts.
        dvtp: Process state used for the inversion, volts.
    """

    temperature_c: float
    mode: str
    energy_j: float
    dvtn: float
    dvtp: float


class TrackingSensor:
    """A PT sensor operated in full/fast tracking mode.

    Args:
        sensor: The underlying macro.
        policy: Recalibration cadence; ``None`` uses the defaults.
    """

    def __init__(self, sensor: PTSensor, policy: Optional[TrackingPolicy] = None) -> None:
        self.sensor = sensor
        self.policy = policy if policy is not None else TrackingPolicy()
        self._stored_dvtn: Optional[float] = None
        self._stored_dvtp: Optional[float] = None
        self._reads_since_full = 0
        self._fast_failures = 0

    @property
    def calibrated(self) -> bool:
        """Whether a stored process point exists."""
        return self._stored_dvtn is not None

    def _fast_energy(self, reading_energy: ConversionEnergy) -> float:
        """Energy of a fast conversion: TSRO phase + its counter share."""
        return (
            reading_energy.tsro
            + reading_energy.counters / 3.0
            + reading_energy.digital / 2.0
        )

    def _full_read(self, env: Environment) -> TrackingReading:
        reading: SensorReading = self.sensor.read_environment(env)
        self._stored_dvtn = reading.dvtn
        self._stored_dvtp = reading.dvtp
        self._reads_since_full = 0
        self._fast_failures = 0
        _FULL_READS.inc()
        return TrackingReading(
            temperature_c=reading.temperature_c,
            mode="full",
            energy_j=reading.energy.total,
            dvtn=reading.dvtn,
            dvtp=reading.dvtp,
        )

    def _fast_read(self, env: Environment) -> TrackingReading:
        # The fast path bypasses PTSensor.read_environment, so active
        # fault plans hook here instead: environment faults (droop,
        # runaway) before the TSRO runs, output faults (stuck, drift)
        # on the published sample.  Full reads inherit both hooks from
        # the sensor macro itself.
        injector = active_injector()
        if injector is not None:
            env = injector.perturb_environment(self.sensor.die_id, env)
        f_t = self.sensor.bank.tsro.frequency(env)
        count = self.sensor._timer_t.count(f_t, self.sensor._rng)
        f_t_hat = self.sensor._timer_t.frequency_from_count(count)
        temp_k = estimate_temperature_clamped(
            self.sensor.model, f_t_hat, self._stored_dvtn, self._stored_dvtp
        )
        full_energy = conversion_energy(self.sensor.bank, env, self.sensor.config)
        self._reads_since_full += 1
        _FAST_READS.inc()
        reading = TrackingReading(
            temperature_c=kelvin_to_celsius(temp_k),
            mode="fast",
            energy_j=self._fast_energy(full_energy),
            dvtn=self._stored_dvtn,
            dvtp=self._stored_dvtp,
        )
        if injector is not None:
            reading = injector.perturb_reading(self.sensor.die_id, reading)
        return reading

    def read(self, temp_c, vdd: Optional[float] = None) -> TrackingReading:
        """One sample: fast when the stored calibration is fresh enough.

        Falls back to a full conversion at power-on, on schedule, or after
        repeated fast-read failures.  ``temp_c`` is a Celsius temperature,
        or a full :class:`Environment` — the common environment-style call
        form shared with :meth:`PTSensor.read` and
        :func:`repro.batch.read_population`.
        """
        if isinstance(temp_c, Environment):
            if vdd is not None:
                raise ValueError(
                    "pass vdd inside the Environment, not alongside it"
                )
            env = temp_c
        else:
            env = self.sensor.physical_environment(celsius_to_kelvin(temp_c), vdd)
        due = (
            not self.calibrated
            or self._reads_since_full >= self.policy.recalibration_interval - 1
            or self._fast_failures >= self.policy.max_fast_failures
        )
        if due:
            return self._full_read(env)
        try:
            return self._fast_read(env)
        except SensorError:
            self._fast_failures += 1
            _FAST_FAILURES.inc()
            if self._fast_failures >= self.policy.max_fast_failures:
                return self._full_read(env)
            raise
