"""Supply-aware self-calibration: the 2013 follow-up, implemented.

Experiment R-F8 shows the paper-era sensor's dominant residual: it assumes
nominal V_DD, and every percent of supply droop costs about a degree.  The
same group's 2013 paper ("Near-/Sub-Vth PVT sensors with dynamic voltage
selection") closes that hole by sensing voltage too.  This module implements
the natural version of that idea inside this sensor's architecture.

The macro already has a fourth ring — the balanced reference ring — whose
frequency is strongly supply-sensitive.  Four measurements
(f_N, f_P, f_T, f_REF) against four unknowns (dV_tn, dV_tp, T, V_DD) form a
square system, solved here by a damped 4-D Newton iteration on
log-frequency residuals:

    r(x) = ln f_model(x) - ln f_measured,   x = (dV_tn, dV_tp, T, V_DD)

Log residuals equalise the scales of the four rings (the TSRO spans 30x
more absolute frequency than its information content warrants), and the
per-step damping caps keep the iteration inside the model's characterised
region.  The paper's 2-D alternation cannot be extended naively — the
reference ring confounds supply with process at similar gains, so
Gauss-Seidel style sweeps converge to a wrong fixed point; the joint solve
is the correct structure (the scaled system's condition number is ~55:
ill-conditioned enough to punish splitting, fine for Newton).

This is an **extension** beyond the reproduced paper and is flagged as such
in DESIGN.md; experiment R-E1 quantifies what it buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.calibration import SelfCalibrationEngine
from repro.core.decoupler import ProcessLut
from repro.core.errors import CalibrationError, SensorError
from repro.core.sensing_model import SensingModel
from repro.units import celsius_to_kelvin

# Finite-difference scales per unknown: (V, V, K, V).
_FD_SCALES = np.array([1e-3, 1e-3, 0.5, 5e-3])
# Per-iteration damping caps, same units.
_STEP_CAPS = np.array([0.02, 0.02, 30.0, 0.05])


@dataclass(frozen=True)
class SupplyCalibrationState:
    """Converged output of one supply-aware calibration run.

    Attributes:
        dvtn: Extracted NMOS threshold shift, volts.
        dvtp: Extracted PMOS threshold-magnitude shift, volts.
        temp_k: Estimated junction temperature, kelvin.
        vdd: Estimated supply voltage, volts.
        rounds_used: Newton iterations executed.
        converged: Whether the residual settled below tolerance.
    """

    dvtn: float
    dvtp: float
    temp_k: float
    vdd: float
    rounds_used: int
    converged: bool


@dataclass(frozen=True)
class SupplyAwareEngine:
    """Joint (process, temperature, supply) estimation from four rings.

    Attributes:
        model: The design-time sensing model.
        lut: Accepted for interface parity with the paper engine (the joint
            Newton needs no seeding; kept so callers can pass one setup
            object around).
        vdd_search_fraction: Half-width of the supply validity window as a
            fraction of nominal (a sensor spec: how much droop it claims to
            handle).
        tolerance: Convergence threshold on the worst log-frequency
            residual (1e-6 = 0.0001 % frequency match).
        max_rounds: Newton iteration budget.
    """

    model: SensingModel
    lut: Optional[ProcessLut] = None
    vdd_search_fraction: float = 0.15
    tolerance: float = 1e-6
    max_rounds: int = 25

    def _log_frequencies(self, x: np.ndarray) -> np.ndarray:
        dvtn, dvtp, temp_k, vdd = x
        env = self.model.environment(float(dvtn), float(dvtp), float(temp_k), float(vdd))
        bank = self.model.bank
        return np.log(
            [
                bank.psro_n.frequency(env),
                bank.psro_p.frequency(env),
                bank.tsro.frequency(env),
                bank.reference.frequency(env),
            ]
        )

    def _bounds(self) -> tuple:
        box = self.model.vt_box
        t_lo = celsius_to_kelvin(self.model.config.temp_min_c) - 15.0
        t_hi = celsius_to_kelvin(self.model.config.temp_max_c) + 15.0
        nominal = self.model.technology.vdd
        v_lo = nominal * (1.0 - self.vdd_search_fraction)
        v_hi = nominal * (1.0 + self.vdd_search_fraction)
        lo = np.array([-box, -box, t_lo, v_lo])
        hi = np.array([box, box, t_hi, v_hi])
        return lo, hi

    def run(
        self,
        f_n_measured: float,
        f_p_measured: float,
        f_t_measured: float,
        f_ref_measured: float,
        initial_temp_k: float = 300.0,
    ) -> SupplyCalibrationState:
        """Execute the four-ring joint estimation.

        Raises:
            CalibrationError: If the Newton iteration exhausts its budget
                without meeting the residual tolerance (typically: the die
                or the droop is outside the characterised region, and the
                solution is pinned to a bound).
        """
        if min(f_n_measured, f_p_measured, f_t_measured, f_ref_measured) <= 0.0:
            raise ValueError("all measured frequencies must be positive")

        target = np.log([f_n_measured, f_p_measured, f_t_measured, f_ref_measured])
        lo, hi = self._bounds()
        x = np.array([0.0, 0.0, initial_temp_k, self.model.technology.vdd])

        rounds_used = 0
        for rounds_used in range(1, self.max_rounds + 1):
            residual = self._log_frequencies(x) - target
            if float(np.max(np.abs(residual))) < self.tolerance:
                return SupplyCalibrationState(
                    dvtn=float(x[0]),
                    dvtp=float(x[1]),
                    temp_k=float(x[2]),
                    vdd=float(x[3]),
                    rounds_used=rounds_used,
                    converged=True,
                )
            jacobian = np.zeros((4, 4))
            for col in range(4):
                delta = np.zeros(4)
                delta[col] = _FD_SCALES[col]
                jacobian[:, col] = (
                    self._log_frequencies(x + delta) - self._log_frequencies(x - delta)
                ) / (2.0 * _FD_SCALES[col])
            try:
                step = np.linalg.solve(jacobian, residual)
            except np.linalg.LinAlgError as exc:
                raise CalibrationError(
                    "singular 4x4 sensitivity at the current iterate"
                ) from exc
            step = np.clip(step, -_STEP_CAPS, _STEP_CAPS)
            x = np.clip(x - step, lo, hi)

        raise CalibrationError(
            f"supply-aware calibration did not converge in {rounds_used} rounds "
            f"(worst residual {float(np.max(np.abs(residual))):.2e})"
        )

    def run_or_fallback(
        self,
        f_n_measured: float,
        f_p_measured: float,
        f_t_measured: float,
        f_ref_measured: float,
        initial_temp_k: float = 300.0,
    ) -> SupplyCalibrationState:
        """Run supply-aware estimation, degrading to the paper scheme.

        If the joint solve fails (e.g. droop beyond the validity window),
        fall back to the paper's nominal-supply engine so the sensor still
        produces a reading; if even that diverges (the operating point is
        outside everything the design was characterised for), return a
        pegged reading rather than crash — a monitoring network must keep
        reporting *something* diagnosable.  Degraded results are marked
        ``converged=False``.
        """
        try:
            return self.run(
                f_n_measured,
                f_p_measured,
                f_t_measured,
                f_ref_measured,
                initial_temp_k,
            )
        except (SensorError, ValueError):
            pass
        try:
            fallback = SelfCalibrationEngine(self.model, lut=self.lut).run(
                f_n_measured, f_p_measured, f_t_measured
            )
            return SupplyCalibrationState(
                dvtn=fallback.dvtn,
                dvtp=fallback.dvtp,
                temp_k=fallback.temp_k,
                vdd=self.model.technology.vdd,
                rounds_used=fallback.rounds_used,
                converged=False,
            )
        except SensorError:
            return SupplyCalibrationState(
                dvtn=0.0,
                dvtp=0.0,
                temp_k=initial_temp_k,
                vdd=self.model.technology.vdd,
                rounds_used=0,
                converged=False,
            )
