"""The self-calibration engine: joint process/temperature lock-in.

This is the heart of the paper.  A conventional RO thermal sensor needs
two-point factory calibration in a temperature chamber because its RO
frequency confounds process and temperature.  The paper's sensor breaks the
confounding *on chip*: the process rings are first-order
temperature-insensitive (ZTC bias) and the temperature ring is
process-correctable, so alternating the two estimators converges to a joint
(dV_tn, dV_tp, T) fix with no external reference of any kind:

    T_hat  <- nominal
    repeat `calibration_rounds` times:
        (dV_tn, dV_tp) <- extract_process(f_N, f_P | T_hat)
        T_hat          <- estimate_temperature(f_T | dV_tn, dV_tp)

Convergence is geometric with ratio ~ (PSRO temperature sensitivity) x
(TSRO inversion gain), which the ZTC bias makes ~1e-2 — two or three rounds
suffice (ablated in experiment R-A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.decoupler import ProcessLut, extract_process
from repro.core.errors import CalibrationError
from repro.core.sensing_model import SensingModel
from repro.core.temperature import estimate_temperature


@dataclass(frozen=True)
class CalibrationState:
    """The converged output of one self-calibration run.

    Attributes:
        dvtn: Extracted NMOS threshold shift, volts.
        dvtp: Extracted PMOS threshold-magnitude shift, volts.
        temp_k: Jointly estimated junction temperature, kelvin.
        rounds_used: Alternation rounds actually executed.
        converged: Whether the temperature iterate moved less than the
            convergence threshold in the final round.
    """

    dvtn: float
    dvtp: float
    temp_k: float
    rounds_used: int
    converged: bool


@dataclass(frozen=True)
class SelfCalibrationEngine:
    """Runs the alternating process/temperature estimation loop.

    Attributes:
        model: The design-time sensing model (shared across all sensor
            instances of a design — it is burned into the netlist).
        lut: Optional process LUT for Newton seeding.
        convergence_k: Temperature movement below which a round is
            declared converged, kelvin.
    """

    model: SensingModel
    lut: Optional[ProcessLut] = None
    convergence_k: float = 0.05

    def run(
        self,
        f_n_measured: float,
        f_p_measured: float,
        f_t_measured: float,
        vdd: Optional[float] = None,
        initial_temp_k: float = 300.0,
        rounds: Optional[int] = None,
    ) -> CalibrationState:
        """Execute the self-calibration loop on one set of measurements.

        Args:
            f_n_measured: Measured PSRO-N frequency, hertz.
            f_p_measured: Measured PSRO-P frequency, hertz.
            f_t_measured: Measured TSRO frequency, hertz.
            vdd: Supply during the measurement (``None`` = nominal).
            initial_temp_k: Starting temperature assumption.
            rounds: Alternation budget (``None`` = the config's value).

        Returns:
            The converged :class:`CalibrationState`.

        Raises:
            CalibrationError: If the loop exhausts its budget while the
                temperature iterate is still moving by more than the
                convergence threshold.
        """
        rounds = self.model.config.calibration_rounds if rounds is None else rounds
        temp_k = initial_temp_k
        dvtn = dvtp = 0.0
        converged = False
        rounds_used = 0
        for rounds_used in range(1, rounds + 1):
            dvtn, dvtp = extract_process(
                self.model, f_n_measured, f_p_measured, temp_k, vdd, lut=self.lut
            )
            new_temp_k = estimate_temperature(
                self.model, f_t_measured, dvtn, dvtp, vdd
            )
            moved = abs(new_temp_k - temp_k)
            temp_k = new_temp_k
            if moved < self.convergence_k:
                converged = True
                break
        if not converged and rounds >= 2:
            raise CalibrationError(
                f"self-calibration still moving {moved:.3f} K after "
                f"{rounds_used} rounds"
            )
        return CalibrationState(
            dvtn=dvtn,
            dvtp=dvtp,
            temp_k=temp_k,
            rounds_used=rounds_used,
            converged=converged,
        )
