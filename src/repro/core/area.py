"""Macro area accounting: the silicon bill of the sensor.

Sensor papers quote area next to energy; this module assembles the macro's
area from the same design objects everything else uses — the stage
geometries (transistor W x L with a layout overhead for wells, contacts and
spacing), the counter flip-flops, the calibration ROM (from the LUT cost
model) and the bias/control overhead — so the figure moves when the design
does.

The absolute number is a layout-free estimate (no standard-cell library
here), but its *structure* is right: the TSRO's deliberately huge limiting
devices and the calibration ROM are visible as the area they really are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.circuits.inverter import (
    BalancedStage,
    NmosSensingStage,
    PmosSensingStage,
    StarvedStage,
)
from repro.config import SensorConfig
from repro.core.lut_cost import lut_storage
from repro.device.technology import Technology

# Active-to-layout blow-up: wells, contacts, poly pitch, routing.
LAYOUT_OVERHEAD = 6.0
# One 65 nm-class flip-flop including local routing, m^2.
FLIPFLOP_AREA = 4.0e-12
# One ROM bit, m^2.
ROM_BIT_AREA = 0.3e-12
# Bias generators, level shifters, control FSM: lumped fixed block, m^2.
CONTROL_OVERHEAD_AREA = 400e-12


@dataclass(frozen=True)
class MacroArea:
    """Area breakdown of one sensor macro, all fields in square metres.

    Attributes:
        oscillators: All four rings' active area (with layout overhead).
        counters: Counter flip-flops.
        rom: Calibration LUT storage.
        control: Bias generation and FSM overhead.
    """

    oscillators: float
    counters: float
    rom: float
    control: float

    @property
    def total(self) -> float:
        return self.oscillators + self.counters + self.rom + self.control

    @property
    def total_mm2(self) -> float:
        return self.total * 1e6

    def as_rows(self) -> List[Tuple[str, float]]:
        """(label, m^2) rows, largest first."""
        rows = [
            ("oscillators", self.oscillators),
            ("counters", self.counters),
            ("calibration ROM", self.rom),
            ("bias/control", self.control),
        ]
        return sorted(rows, key=lambda row: row[1], reverse=True)


def _stage_active_area(devices) -> float:
    return sum(dev.width * dev.length for dev in devices)


def estimate_macro_area(
    technology: Technology, config: SensorConfig = None
) -> MacroArea:
    """Assemble the macro's area from the reference design's geometry."""
    config = config if config is not None else SensorConfig()
    nmos, pmos = technology.nmos, technology.pmos

    n_stage = NmosSensingStage()
    p_stage = PmosSensingStage()
    t_stage = StarvedStage()
    ref_stage = BalancedStage()

    per_stage = {
        "psro_n": _stage_active_area(
            [n_stage.sensing_device(nmos)] * n_stage.stack
            + [nmos.scaled(width_scale=n_stage.switch_units)]
            + [pmos.scaled(width_scale=n_stage.pmos_units)]
        ),
        "psro_p": _stage_active_area(
            [p_stage.sensing_device(pmos)] * p_stage.stack
            + [pmos.scaled(width_scale=p_stage.switch_units)]
            + [nmos.scaled(width_scale=p_stage.nmos_units)]
        ),
        "tsro": _stage_active_area(
            list(t_stage.limiting_devices(nmos, pmos))
            + [
                nmos.scaled(width_scale=t_stage.switch_units),
                pmos.scaled(width_scale=t_stage.switch_units),
            ]
        ),
        "ref": _stage_active_area(list(ref_stage.devices(nmos, pmos))),
    }
    oscillators = LAYOUT_OVERHEAD * (
        config.psro_stages * (per_stage["psro_n"] + per_stage["psro_p"] + per_stage["ref"])
        + config.tsro_stages * per_stage["tsro"]
    )

    counter_bits = 2 * config.psro_counter_bits + config.tsro_counter_bits
    counters = counter_bits * FLIPFLOP_AREA

    rom_bits = lut_storage(config.lut_points_per_axis).total_bits
    rom = rom_bits * ROM_BIT_AREA

    return MacroArea(
        oscillators=oscillators,
        counters=counters,
        rom=rom,
        control=CONTROL_OVERHEAD_AREA,
    )
