"""The top-level PT-sensor macro.

:class:`PTSensor` composes everything the paper's chip contains — the
oscillator bank (with this die's frozen mismatch), the counters, the
self-calibration engine and the energy accounting — into the object a user
instantiates once per die/tier and then reads like an instrument.

The physical world enters through the ``temp_c``/``vdd`` arguments of
:meth:`PTSensor.read` (or a thermal-solver-supplied environment via
:meth:`PTSensor.read_environment`); everything downstream of the oscillator
frequencies is exactly what the silicon would compute from its own counter
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.circuits.digital import WindowCounter
from repro.faults.runtime import active_injector
from repro.circuits.oscillator_bank import (
    OscillatorBank,
    build_oscillator_bank,
    environment_for_die,
)
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig
from repro.core.calibration import CalibrationState, SelfCalibrationEngine
from repro.core.decoupler import ProcessLut
from repro.core.sensing_model import SensingModel
from repro.device.technology import Technology
from repro.readout.counter import PeriodTimer
from repro.readout.energy import ConversionEnergy, conversion_energy
from repro.readout.interface import SensorFrame, encode_frame
from repro.units import celsius_to_kelvin, kelvin_to_celsius
from repro.variation.montecarlo import DieSample

_CONVERSIONS = telemetry.counter(
    "core.conversions", unit="conversions", help="Full PT conversions executed"
)
_CONVERGENCE_FAILURES = telemetry.counter(
    "core.convergence_failures",
    unit="conversions",
    help="Conversions whose self-calibration did not converge",
)
_CALIBRATION_ROUNDS = telemetry.histogram(
    "core.calibration_rounds",
    unit="rounds",
    help="Self-calibration rounds used per conversion",
)
_CONVERSION_ENERGY = telemetry.histogram(
    "core.conversion_energy_pj", unit="pJ", help="Energy per full conversion"
)


@dataclass(frozen=True)
class SensorReading:
    """One complete PT conversion result.

    Attributes:
        temperature_c: Estimated junction temperature, Celsius.
        dvtn: Extracted NMOS threshold shift, volts.
        dvtp: Extracted PMOS threshold-magnitude shift, volts.
        counts_n: PSRO-N window count.
        counts_p: PSRO-P window count.
        counts_ref: Reference-clock count of the TSRO period timer.
        energy: Per-block energy breakdown of the conversion.
        conversion_time: Wall-clock duration of the conversion, seconds.
        rounds_used: Self-calibration rounds executed.
        converged: Whether self-calibration converged.
    """

    temperature_c: float
    dvtn: float
    dvtp: float
    counts_n: int
    counts_p: int
    counts_ref: int
    energy: ConversionEnergy
    conversion_time: float
    rounds_used: int
    converged: bool

    @property
    def temperature_k(self) -> float:
        """Estimated junction temperature in kelvin."""
        return celsius_to_kelvin(self.temperature_c)


class PTSensor:
    """One self-calibrated process-temperature sensor macro.

    Args:
        technology: Technology the sensor is manufactured in.
        config: Design parameters; ``None`` uses the reference design.
        die: Monte-Carlo die this instance is manufactured on; ``None``
            instantiates the typical (mismatch-free) sensor.
        location: Sensor site coordinates on the die, metres.
        die_id: Tier/die identifier carried in the output frame.
        sensing_model: Shared design-time model; built on demand.  Pass one
            explicitly when constructing many sensors of the same design —
            the model (and its LUT) is per-design, not per-die.
        lut: Shared process LUT; built on demand from the sensing model.
        seed: Seed of the sensor's private measurement-noise stream
            (counter phase randomness).  Derived from the die's mismatch
            seed when a die is given, so populations stay reproducible.
    """

    def __init__(
        self,
        technology: Technology,
        config: Optional[SensorConfig] = None,
        die: Optional[DieSample] = None,
        location: Tuple[float, float] = (2.5e-3, 2.5e-3),
        die_id: int = 0,
        sensing_model: Optional[SensingModel] = None,
        lut: Optional[ProcessLut] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.technology = technology
        self.config = config if config is not None else SensorConfig()
        self.die = die
        self.location = location
        self.die_id = die_id

        self.bank: OscillatorBank = build_oscillator_bank(
            technology,
            die=die,
            psro_stages=self.config.psro_stages,
            tsro_stages=self.config.tsro_stages,
        )
        self.model = (
            sensing_model
            if sensing_model is not None
            else SensingModel(technology, self.config)
        )
        self.lut = lut if lut is not None else ProcessLut.build(self.model)
        self.engine = SelfCalibrationEngine(self.model, lut=self.lut)

        self._counter_n = WindowCounter(
            window=self.config.psro_window, bits=self.config.psro_counter_bits
        )
        self._counter_p = WindowCounter(
            window=self.config.psro_window, bits=self.config.psro_counter_bits
        )
        self._timer_t = PeriodTimer(
            periods=self.config.tsro_periods,
            ref_clock_hz=self.config.ref_clock_hz,
            bits=self.config.tsro_counter_bits,
        )

        if seed is None:
            seed = 1 if die is None else die.mismatch_seed ^ 0x5EED
        self._rng = np.random.default_rng(seed)

    def physical_environment(self, temp_k: float, vdd: Optional[float] = None) -> Environment:
        """The true environment of this sensor site at a condition."""
        vdd = self.technology.vdd if vdd is None else vdd
        if self.die is None:
            return Environment(temp_k=temp_k, vdd=vdd)
        return environment_for_die(self.die, self.location, temp_k, vdd)

    def read(
        self,
        temp_c,
        vdd: Optional[float] = None,
        deterministic: bool = False,
        assume_vdd: Optional[float] = None,
    ) -> SensorReading:
        """Run one full conversion at a true junction temperature.

        Args:
            temp_c: True junction temperature at the sensor site, Celsius —
                or a full :class:`Environment`, which is forwarded to
                :meth:`read_environment` unchanged (the common
                environment-style call form shared with
                :class:`repro.core.tracking.TrackingSensor` and
                :func:`repro.batch.read_population`).
            vdd: True supply voltage (``None`` = nominal).
            deterministic: Suppress counter phase randomness (mid-phase
                counts); used by tests and characterisation sweeps.
            assume_vdd: Supply voltage the *calibration logic* assumes.
                ``None`` = nominal (the paper's behaviour).  In a DVFS
                system the power manager knows the setpoint and tells the
                sensor — the "dynamic voltage selection" of the group's
                2013 follow-up; pass the setpoint here to model it.

        Returns:
            The :class:`SensorReading` the macro would publish.
        """
        if isinstance(temp_c, Environment):
            if vdd is not None:
                raise ValueError(
                    "pass vdd inside the Environment, not alongside it"
                )
            env = temp_c
        else:
            env = self.physical_environment(celsius_to_kelvin(temp_c), vdd)
        return self.read_environment(
            env, deterministic=deterministic, assume_vdd=assume_vdd
        )

    def read_environment(
        self,
        env: Environment,
        deterministic: bool = False,
        assume_vdd: Optional[float] = None,
    ) -> SensorReading:
        """Run one full conversion under an explicit physical environment.

        This is the entry point for thermal-solver-driven simulation: the
        solver computes the junction temperature field and hands each sensor
        its local environment.

        When a fault plan is active (:func:`repro.faults.inject`), faults
        targeting this sensor's ``die_id`` apply here: supply droop and
        thermal runaway perturb the physical environment before the
        oscillators see it, and stuck/drifting-output faults override the
        published reading afterwards.
        """
        injector = active_injector()
        if injector is not None:
            env = injector.perturb_environment(self.die_id, env)
        rng = None if deterministic else self._rng

        with telemetry.span(
            "core.conversion", die_id=self.die_id, temp_k=env.temp_k, vdd=env.vdd
        ) as trace:
            frequencies = self.bank.frequencies(env)
            counts_n = self._counter_n.count(frequencies.psro_n, rng)
            counts_p = self._counter_p.count(frequencies.psro_p, rng)
            counts_ref = self._timer_t.count(frequencies.tsro, rng)

            f_n_hat = self._counter_n.frequency_from_count(counts_n)
            f_p_hat = self._counter_p.frequency_from_count(counts_p)
            f_t_hat = self._timer_t.frequency_from_count(counts_ref)

            # Unless told the DVFS setpoint (assume_vdd), the sensor does not
            # know the true supply and assumes nominal; droop then shows up as
            # residual error (experiment R-F8), exactly as in the silicon.
            state: CalibrationState = self.engine.run(
                f_n_hat, f_p_hat, f_t_hat, vdd=assume_vdd
            )

            energy = conversion_energy(self.bank, env, self.config)
            conversion_time = self.config.conversion_time(frequencies.tsro)

            _CONVERSIONS.inc()
            _CALIBRATION_ROUNDS.observe(state.rounds_used)
            _CONVERSION_ENERGY.observe(energy.total * 1e12)
            if not state.converged:
                _CONVERGENCE_FAILURES.inc()
            trace.set(
                rounds_used=state.rounds_used,
                converged=state.converged,
                energy_pj=energy.total * 1e12,
            )

            reading = SensorReading(
                temperature_c=kelvin_to_celsius(state.temp_k),
                dvtn=state.dvtn,
                dvtp=state.dvtp,
                counts_n=counts_n,
                counts_p=counts_p,
                counts_ref=counts_ref,
                energy=energy,
                conversion_time=conversion_time,
                rounds_used=state.rounds_used,
                converged=state.converged,
            )
            if injector is not None:
                reading = injector.perturb_reading(self.die_id, reading)
            return reading

    def frame(self, reading: SensorReading) -> int:
        """Encode a reading into the 40-bit TSV-bus frame."""
        return encode_frame(
            SensorFrame(
                die_id=self.die_id,
                dvtn=reading.dvtn,
                dvtp=reading.dvtp,
                temperature_c=reading.temperature_c,
                valid=reading.converged,
            )
        )

    def self_test(self, temp_c: float, vdd: Optional[float] = None):
        """Run the power-on BIST: two back-to-back measurements, judged.

        Returns the :class:`repro.readout.SelfTestReport`; a monitoring
        network should refuse readings from a macro whose BIST fails.
        """
        from repro.readout.selftest import SensorSelfTest

        env = self.physical_environment(celsius_to_kelvin(temp_c), vdd)

        def measure():
            freqs = self.bank.frequencies(env)
            from repro.circuits.oscillator_bank import BankFrequencies

            return BankFrequencies(
                psro_n=self._counter_n.frequency_from_count(
                    self._counter_n.count(freqs.psro_n, self._rng)
                ),
                psro_p=self._counter_p.frequency_from_count(
                    self._counter_p.count(freqs.psro_p, self._rng)
                ),
                tsro=self._timer_t.frequency_from_count(
                    self._timer_t.count(freqs.tsro, self._rng)
                ),
                reference=freqs.reference,
            )

        return SensorSelfTest(self.model).run(measure(), measure())

    def design_key(self) -> Tuple:
        """Hashable identity of this sensor's *design* (not its die).

        Two sensors share a design when they were taped out identically —
        same configuration, technology and per-ring stage models — even
        though each instance carries its own frozen mismatch.  The batch
        engine (:func:`repro.batch.read_population`,
        :func:`repro.batch.read_paired`) and the serving layer
        (:mod:`repro.serve`) only coalesce sensors whose design keys match.
        """
        return (
            self.config,
            self.technology,
            self.bank.psro_n.stage,
            self.bank.psro_p.stage,
            self.bank.tsro.stage,
        )

    def true_process_shifts(self) -> Tuple[float, float]:
        """Ground-truth systematic (dV_tn, dV_tp) at this sensor site.

        What the extraction *should* report; experiments compare readings
        against this.  Typical sensors return (0, 0).
        """
        if self.die is None:
            return 0.0, 0.0
        return self.die.vt_shifts_at(*self.location)
