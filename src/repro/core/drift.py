"""Drift-anchored recalibration: separating aging from manufacturing.

The design-time sensing model ties mobility to threshold through the
foundry's manufacturing correlation (a fast-V_t die is a high-mobility
die).  BTI aging breaks that tie: it raises thresholds *without* touching
mobility.  A sensor that re-extracts an aged die against the plain model
therefore misattributes part of the drift to mobility and loses accuracy
(measured in experiment R-E2's "naive" column).

The fix costs one register pair: store the **time-zero extraction** as the
die's manufacturing anchor.  At later power-ons, evaluate the model with

* mobility coupled to the *anchor* (the manufacturing point, where the
  coupling is physically valid), and
* thresholds at the *current* hypothesis (anchor + drift, where drift is
  V_t-only — exactly BTI's physics).

:class:`DriftAnchoredModel` is that model; running the unchanged
self-calibration engine on it recovers both the temperature accuracy class
and the true drift magnitude on aged dies.  This is a reconstruction
extension (flagged in DESIGN.md), but a small one: it reuses every piece of
the paper's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.circuits.ring_oscillator import Environment
from repro.core.sensing_model import SensingModel
from repro.variation.corners import monte_carlo_corner


@dataclass(frozen=True)
class DriftAnchoredModel(SensingModel):
    """Sensing model with mobility frozen at a manufacturing anchor.

    Attributes:
        anchor_dvtn: Time-zero extracted NMOS threshold shift, volts.
        anchor_dvtp: Time-zero extracted PMOS threshold-magnitude shift,
            volts.
    """

    anchor_dvtn: float = 0.0
    anchor_dvtp: float = 0.0

    @classmethod
    def from_time_zero(
        cls, model: SensingModel, anchor_dvtn: float, anchor_dvtp: float
    ) -> "DriftAnchoredModel":
        """Anchor a plain model at a die's time-zero extraction."""
        return cls(
            technology=model.technology,
            config=model.config,
            vt_box=model.vt_box,
            anchor_dvtn=anchor_dvtn,
            anchor_dvtp=anchor_dvtp,
        )

    def environment(
        self, dvtn: float, dvtp: float, temp_k: float, vdd: Optional[float] = None
    ) -> Environment:
        """Model environment: anchored mobility, current thresholds."""
        corner = monte_carlo_corner(self.anchor_dvtn, self.anchor_dvtp)
        return Environment(
            temp_k=temp_k,
            vdd=self.technology.vdd if vdd is None else vdd,
            dvtn=dvtn,
            dvtp=dvtp,
            mun_scale=corner.mun_scale,
            mup_scale=corner.mup_scale,
        )

    def drift_from(self, dvtn: float, dvtp: float) -> tuple:
        """Aging drift implied by a current extraction, volts."""
        return dvtn - self.anchor_dvtn, dvtp - self.anchor_dvtp
