"""Process-corrected temperature estimation from the TSRO frequency.

The TSRO frequency is exponential in temperature *and* strongly dependent on
the die's thresholds — an uncorrected TSRO is a bad thermometer (experiment
R-F4's "before" curve).  With the extracted (dV_tn, dV_tp) plugged into the
typical model, the model's f_TSRO(T) curve becomes die-specific and can be
inverted for temperature.  The curve is strictly monotone increasing in T
over any physical range, so bracketed root finding is exact and robust.
"""

from __future__ import annotations

from typing import Optional

from scipy import optimize

from repro.core.errors import TemperatureRangeError
from repro.core.sensing_model import SensingModel
from repro.units import celsius_to_kelvin

# How far beyond the specified range the estimator searches before
# declaring the reading out of range.  Sensors report slightly beyond spec
# rather than failing at the boundary.
_RANGE_GUARD_K = 15.0


def estimate_temperature(
    model: SensingModel,
    f_t_measured: float,
    dvtn: float,
    dvtp: float,
    vdd: Optional[float] = None,
    tolerance_k: float = 1e-4,
) -> float:
    """Invert the die-corrected TSRO curve for temperature.

    Args:
        model: The design-time sensing model.
        f_t_measured: Measured TSRO frequency in hertz.
        dvtn: Extracted NMOS threshold shift of the die, volts.
        dvtp: Extracted PMOS threshold-magnitude shift, volts.
        vdd: Supply during the measurement (``None`` = nominal).
        tolerance_k: Root-finding tolerance in kelvin.

    Returns:
        The estimated junction temperature in kelvin.

    Raises:
        TemperatureRangeError: If the reading falls outside the specified
            range (plus a small guard band).
    """
    if f_t_measured <= 0.0:
        raise ValueError("measured TSRO frequency must be positive")

    lo = celsius_to_kelvin(model.config.temp_min_c) - _RANGE_GUARD_K
    hi = celsius_to_kelvin(model.config.temp_max_c) + _RANGE_GUARD_K

    def residual(temp_k: float) -> float:
        return model.tsro_frequency(dvtn, dvtp, temp_k, vdd) - f_t_measured

    res_lo, res_hi = residual(lo), residual(hi)
    if res_lo > 0.0 or res_hi < 0.0:
        raise TemperatureRangeError(
            f"TSRO frequency {f_t_measured/1e6:.3f} MHz maps outside "
            f"[{model.config.temp_min_c}, {model.config.temp_max_c}] degC"
        )
    return float(optimize.brentq(residual, lo, hi, xtol=tolerance_k))


def estimate_temperature_clamped(
    model: SensingModel,
    f_t_measured: float,
    dvtn: float,
    dvtp: float,
    vdd: Optional[float] = None,
) -> float:
    """Like :func:`estimate_temperature` but saturating at the range edges.

    Hardware sensors report a pegged code rather than raising; baseline
    sensors with large uncorrected process error need this behaviour to be
    evaluated across the full range at all.
    """
    try:
        return estimate_temperature(model, f_t_measured, dvtn, dvtp, vdd)
    except TemperatureRangeError:
        lo = celsius_to_kelvin(model.config.temp_min_c) - _RANGE_GUARD_K
        f_lo = model.tsro_frequency(dvtn, dvtp, lo, vdd)
        if f_t_measured < f_lo:
            return lo
        return celsius_to_kelvin(model.config.temp_max_c) + _RANGE_GUARD_K
