"""Sensor self-heating: does the measurement perturb the measurand?

The PSRO rings burn ~250 uW each while measuring.  Dissipated in a small
macro, that is a real power density — if the conversion noticeably heated
the macro, the sensor would read its own waste heat instead of the die.
This module quantifies the effect with the thermal substrate:

* the *steady-state* self-heating if the rings ran forever (the worst
  case), from a local spreading-resistance solve, and
* the *transient* rise actually accumulated during one conversion window,
  which is far smaller because silicon's local thermal time constant
  (~milliseconds) dwarfs the microsecond windows.

The analysis justifies a design decision the paper's energy numbers imply:
duty-cycled microsecond windows keep self-heating microkelvin-class, so it
is correctly ignored in the error budget (asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.thermal.grid import ThermalLayer, build_stack_grid
from repro.thermal.materials import BEOL, SILICON
from repro.thermal.power import hotspot_power_map
from repro.thermal.solver import steady_state, thermal_time_constant, transient


@dataclass(frozen=True)
class SelfHeatingReport:
    """Self-heating of the sensor macro during conversion.

    Attributes:
        steady_rise_k: Local temperature rise if the rings ran forever.
        transient_rise_k: Rise actually accumulated over one conversion.
        local_time_constant_s: Thermal time constant of the macro
            neighbourhood.
        duty_cycled_rise_k: Average rise at a continuous conversion rate
            (steady rise x duty cycle).
    """

    steady_rise_k: float
    transient_rise_k: float
    local_time_constant_s: float
    duty_cycled_rise_k: float


def analyse_self_heating(
    macro_power_w: float = 550e-6,
    macro_size_m: float = 60e-6,
    conversion_time_s: float = 6.3e-6,
    conversion_rate_hz: float = 1000.0,
    die_size_m: float = 5e-3,
    grid_cells: int = 24,
) -> SelfHeatingReport:
    """Quantify the macro's self-heating with the thermal solver.

    Args:
        macro_power_w: Power of the active rings during conversion (both
            PSROs, worst case).
        macro_size_m: Macro edge length (the heat source footprint).
        conversion_time_s: One conversion's duration.
        conversion_rate_hz: Background conversion rate for the duty-cycled
            average.
        die_size_m: Die edge length.
        grid_cells: Lateral solver resolution.

    Returns:
        The :class:`SelfHeatingReport`.
    """
    if macro_power_w <= 0.0 or macro_size_m <= 0.0:
        raise ValueError("macro power and size must be positive")
    layers = [
        ThermalLayer("die.si", 150e-6, SILICON, heat_source=True),
        ThermalLayer("die.beol", 8e-6, BEOL),
    ]
    grid = build_stack_grid(
        layers, die_size_m, die_size_m, nx=grid_cells, ny=grid_cells
    )
    centre = die_size_m / 2.0
    pmap = hotspot_power_map(
        grid_cells,
        grid_cells,
        die_size_m,
        die_size_m,
        [(centre - macro_size_m / 2.0, centre - macro_size_m / 2.0,
          macro_size_m, macro_size_m, macro_power_w)],
    )
    power = {"die.si": pmap}

    steady = steady_state(grid, power)
    steady_rise = steady.at("die.si", centre, centre) - grid.ambient_k

    tau = thermal_time_constant(grid)
    # One conversion is a tiny fraction of tau; a single implicit step of
    # exactly the conversion duration bounds the transient rise.
    step = transient(grid, lambda t: power, dt=conversion_time_s, steps=1)[0]
    transient_rise = step.at("die.si", centre, centre) - grid.ambient_k

    duty = min(1.0, conversion_time_s * conversion_rate_hz)
    return SelfHeatingReport(
        steady_rise_k=float(steady_rise),
        transient_rise_k=float(transient_rise),
        local_time_constant_s=float(tau),
        duty_cycled_rise_k=float(steady_rise * duty),
    )
