"""Exceptions raised by the sensor core."""

from __future__ import annotations


class SensorError(Exception):
    """Base class for all sensor-core failures."""


class ExtractionDivergedError(SensorError):
    """The process extraction left the model's validity region.

    Raised when the Newton iteration walks outside the characterised
    (dV_tn, dV_tp) box, which in hardware corresponds to a die so far off
    the model that the stored LUT cannot represent it.
    """


class TemperatureRangeError(SensorError):
    """A TSRO reading maps outside the specified temperature range."""


class CalibrationError(SensorError):
    """The self-calibration engine failed to converge."""
