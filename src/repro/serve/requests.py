"""Typed requests and results of the sensor-readout service.

A :class:`ReadRequest` is one question a client asks the monitored stack;
a :class:`ReadResult` is the service's answer, carrying one
:class:`TierReading` per tier the request touched plus the serving
metadata (batching, caching, latency) the load generator and access log
report on.

Four request kinds cover the paper's polling patterns:

``POINT_READ``
    One tier, one operating point — the bread-and-butter request.
``VT_EXTRACT``
    Same conversion, but the caller is after the extracted process point
    ``(dV_tn, dV_tp)`` rather than the temperature.
``TIER_SCAN``
    A subset of tiers (or the whole stack) at one shared condition.
``STACK_POLL``
    Every tier at its own junction temperature — the
    :class:`~repro.network.aggregator.StackMonitor` round, as a request.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple


class RequestKind(enum.Enum):
    """What a :class:`ReadRequest` asks of the stack."""

    POINT_READ = "point_read"
    VT_EXTRACT = "vt_extract"
    TIER_SCAN = "tier_scan"
    STACK_POLL = "stack_poll"


@dataclass(frozen=True)
class ReadRequest:
    """One client request against the serving stack.

    Build instances through the classmethod constructors
    (:meth:`point`, :meth:`vt`, :meth:`scan`, :meth:`poll`) — they fill
    the kind-dependent fields consistently.

    Attributes:
        kind: The request kind.
        temp_c: Operating (junction) temperature in Celsius; for
            ``STACK_POLL`` the default for tiers absent from ``temps_c``.
        tier: Target tier for ``POINT_READ`` / ``VT_EXTRACT``.
        tiers: Target tiers for ``TIER_SCAN``; ``None`` means every tier.
        temps_c: Per-tier temperatures for ``STACK_POLL``.
        vdd: True supply voltage (``None`` = nominal).
        assume_vdd: Supply the calibration logic assumes (DVFS setpoint);
            see :meth:`repro.core.sensor.PTSensor.read`.
        deadline_s: Absolute service-clock deadline.  A request still
            queued past its deadline is *shed* (admission control), never
            evaluated.
    """

    kind: RequestKind
    temp_c: float = 25.0
    tier: Optional[int] = None
    tiers: Optional[Tuple[int, ...]] = None
    temps_c: Optional[Mapping[int, float]] = None
    vdd: Optional[float] = None
    assume_vdd: Optional[float] = None
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind in (RequestKind.POINT_READ, RequestKind.VT_EXTRACT):
            if self.tier is None:
                raise ValueError(f"{self.kind.value} requires a tier")
        if self.kind is not RequestKind.TIER_SCAN and self.tiers is not None:
            raise ValueError("tiers is a TIER_SCAN field")
        if self.kind is not RequestKind.STACK_POLL and self.temps_c is not None:
            raise ValueError("temps_c is a STACK_POLL field")
        if self.temps_c is not None:
            object.__setattr__(self, "temps_c", dict(self.temps_c))
        if self.tiers is not None:
            object.__setattr__(self, "tiers", tuple(self.tiers))

    @classmethod
    def point(
        cls,
        tier: int,
        temp_c: float,
        vdd: Optional[float] = None,
        assume_vdd: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> "ReadRequest":
        """One tier's temperature at one operating point."""
        return cls(
            kind=RequestKind.POINT_READ,
            tier=tier,
            temp_c=temp_c,
            vdd=vdd,
            assume_vdd=assume_vdd,
            deadline_s=deadline_s,
        )

    @classmethod
    def vt(
        cls,
        tier: int,
        temp_c: float,
        vdd: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> "ReadRequest":
        """One tier's extracted process point ``(dV_tn, dV_tp)``."""
        return cls(
            kind=RequestKind.VT_EXTRACT,
            tier=tier,
            temp_c=temp_c,
            vdd=vdd,
            deadline_s=deadline_s,
        )

    @classmethod
    def scan(
        cls,
        temp_c: float,
        tiers: Optional[Tuple[int, ...]] = None,
        vdd: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> "ReadRequest":
        """A set of tiers (default all) at one shared condition."""
        return cls(
            kind=RequestKind.TIER_SCAN,
            temp_c=temp_c,
            tiers=None if tiers is None else tuple(tiers),
            vdd=vdd,
            deadline_s=deadline_s,
        )

    @classmethod
    def poll(
        cls,
        temps_c: Mapping[int, float],
        default_temp_c: float = 25.0,
        vdd: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> "ReadRequest":
        """The full stack, each tier at its own junction temperature."""
        return cls(
            kind=RequestKind.STACK_POLL,
            temp_c=default_temp_c,
            temps_c=dict(temps_c),
            vdd=vdd,
            deadline_s=deadline_s,
        )


@dataclass(frozen=True)
class TierReading:
    """One tier's answer inside a :class:`ReadResult`.

    ``quality`` is ``"ok"`` for a clean converged conversion and
    ``"degraded"`` when an active fault targeted the tier or the
    self-calibration failed to converge — the serving twin of the stack
    monitor's graceful-degradation flags.
    """

    tier: int
    temperature_c: float
    dvtn: float
    dvtp: float
    converged: bool
    quality: str = "ok"
    cache_hit: bool = False
    conversion_time: float = 0.0
    energy_j: float = 0.0


class ResultStatus(enum.Enum):
    """Terminal state of a served request."""

    OK = "ok"
    DEGRADED = "degraded"
    SHED = "shed"
    ERROR = "error"


@dataclass(frozen=True)
class ReadResult:
    """The service's answer to one :class:`ReadRequest`.

    Attributes:
        request: The request this answers.
        status: ``OK``; ``DEGRADED`` when any tier reading is degraded;
            ``SHED`` when the deadline passed before evaluation (no
            readings); ``ERROR`` for malformed requests (unknown tier).
        readings: One :class:`TierReading` per touched tier, in request
            order.
        batch_size: Number of requests coalesced into the evaluation
            that produced this answer.
        cache_hits: How many of this request's tier readings were served
            from the result cache.
        error: Human-readable reason when ``status`` is ``ERROR``.
        enqueued_at: Service-clock time the request entered the queue.
        completed_at: Service-clock time the answer was published.
    """

    request: ReadRequest
    status: ResultStatus
    readings: Tuple[TierReading, ...] = field(default_factory=tuple)
    batch_size: int = 0
    cache_hits: int = 0
    error: Optional[str] = None
    enqueued_at: float = 0.0
    completed_at: float = 0.0

    @property
    def latency_s(self) -> float:
        """Queue wait plus evaluation time, in service-clock seconds."""
        return self.completed_at - self.enqueued_at

    @property
    def ok(self) -> bool:
        """Whether the request produced usable readings."""
        return self.status in (ResultStatus.OK, ResultStatus.DEGRADED)

    def reading_for(self, tier: int) -> TierReading:
        """The reading of one tier (raises ``KeyError`` if absent)."""
        for reading in self.readings:
            if reading.tier == tier:
                return reading
        raise KeyError(f"no reading for tier {tier}")
