"""Deterministic load generator for the micro-batching readout service.

The generator's default mode is a **virtual-time** discrete-event
simulation: it replays the exact micro-batching policy of
:class:`~repro.serve.scheduler.MicroBatcher` — batch opens at the head
request's arrival, closes at fill or ``max_wait`` — against the *real*
:class:`~repro.serve.engine.ReadEngine` (real conversions, real cache,
real admission accounting), with the clock advanced analytically instead
of slept.  Same seed, same report, bit for bit: latency percentiles,
batch-size histogram, cache hit rate and shed rate are all reproducible,
which is what lets CI assert on them.

Service-time model (virtual mode): tiers are distinct physical sensors
and convert concurrently, but one sensor serves its own conversions
serially — so a batch occupies the stack for
``batch_overhead + max over tiers(sum of that tier's miss conversion
times) + per_reading * readings``.  The naive baseline serves each
request alone: ``scalar_overhead + sum of its conversion times`` —
no coalescing, no cache, no cross-tier concurrency.  The ratio of the
two busy times is the reported ``speedup_vs_scalar``.

``--wall`` instead drives the threaded :class:`SensorReadService` with
real sleeps; useful as an end-to-end smoke of the concurrent runtime,
but its latency numbers are only as reproducible as the host scheduler.
"""

from __future__ import annotations

import heapq
import json
from collections import Counter as TallyCounter
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.admission import AdmissionPolicy
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.engine import ReadEngine
from repro.serve.requests import ReadRequest, ReadResult, ResultStatus
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import SensorReadService, ServeConfig, build_stack_sensors


@dataclass(frozen=True)
class CostModel:
    """Readout-path timing constants of the virtual-time simulation.

    Attributes:
        batch_overhead_s: Fixed controller/framing cost per coalesced
            batch (command distribution over the TSV network).
        scalar_overhead_s: Fixed cost per request on the naive
            one-request-one-readout baseline.
        per_reading_s: Result framing/transfer cost per tier reading.
    """

    batch_overhead_s: float = 50e-6
    scalar_overhead_s: float = 50e-6
    per_reading_s: float = 2e-6


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run, fully specified (and fully seeded).

    Attributes:
        requests: Total requests to issue.
        seed: Seed of the arrival/mix stream (the stack has its own
            seed in ``serve``).
        rate_rps: Open-loop mean arrival rate (Poisson), requests/s.
            Ignored when ``clients`` is set.
        clients: Closed-loop client count; ``None`` selects open loop.
        think_time_s: Closed-loop mean think time between a client's
            completion and its next submit (exponential).
        serve: The serving stack and policies under test.
        cost: Virtual-time service-cost model.
        setpoints: Number of discrete thermal setpoints the request mix
            clusters around (cache locality comes from revisiting them).
        temp_jitter_c: Gaussian jitter around each setpoint, Celsius.
        deadline_ms: Relative deadline attached to every request
            (``None`` disables deadlines, hence shedding).
        point_weight / vt_weight / scan_weight / poll_weight: Request-mix
            weights (normalised internally).
    """

    requests: int = 2000
    seed: int = 20120612
    rate_rps: float = 50.0
    clients: Optional[int] = None
    think_time_s: float = 0.02
    serve: ServeConfig = field(default_factory=ServeConfig)
    cost: CostModel = field(default_factory=CostModel)
    setpoints: int = 6
    temp_jitter_c: float = 0.05
    deadline_ms: Optional[float] = None
    point_weight: float = 0.70
    vt_weight: float = 0.10
    scan_weight: float = 0.10
    poll_weight: float = 0.10

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.rate_rps <= 0.0:
            raise ValueError("rate_rps must be positive")
        if self.clients is not None and self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.setpoints < 1:
            raise ValueError("setpoints must be >= 1")


@dataclass(frozen=True)
class LoadgenReport:
    """What one load-generation run measured."""

    mode: str
    requests: int
    served: int
    ok: int
    degraded: int
    shed: int
    errors: int
    rejected: int
    duration_s: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    batch_histogram: Dict[int, int]
    mean_batch_size: float
    cache: Optional[CacheStats]
    cache_hit_rate: float
    shed_rate: float
    batched_busy_s: float
    naive_busy_s: float
    speedup_vs_scalar: float
    seed: int

    def to_json(self) -> str:
        """The report as one JSON document (stable key order)."""
        payload = {
            "mode": self.mode,
            "requests": self.requests,
            "served": self.served,
            "ok": self.ok,
            "degraded": self.degraded,
            "shed": self.shed,
            "errors": self.errors,
            "rejected": self.rejected,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms,
            "batch_histogram": {str(k): v for k, v in sorted(self.batch_histogram.items())},
            "mean_batch_size": self.mean_batch_size,
            "cache": None
            if self.cache is None
            else {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "expirations": self.cache.expirations,
                "entries": self.cache.entries,
                "hit_rate": self.cache.hit_rate,
            },
            "cache_hit_rate": self.cache_hit_rate,
            "shed_rate": self.shed_rate,
            "batched_busy_s": self.batched_busy_s,
            "naive_busy_s": self.naive_busy_s,
            "speedup_vs_scalar": self.speedup_vs_scalar,
            "seed": self.seed,
        }
        return json.dumps(payload, sort_keys=True)

    def render(self) -> str:
        """A human-readable summary block."""
        lines = [
            f"loadgen: {self.mode} | {self.served}/{self.requests} served "
            f"in {self.duration_s * 1e3:.1f} ms "
            f"({self.throughput_rps:.0f} req/s)",
            f"  status: ok={self.ok} degraded={self.degraded} "
            f"shed={self.shed} errors={self.errors} rejected={self.rejected}",
            "  latency ms: "
            + " ".join(
                f"{k}={self.latency_ms[k]:.3f}"
                for k in ("p50", "p95", "p99", "mean", "max")
            ),
            f"  batches: mean size {self.mean_batch_size:.2f} | histogram "
            + " ".join(f"{k}x{v}" for k, v in sorted(self.batch_histogram.items())),
        ]
        if self.cache is not None:
            lines.append(
                f"  cache: {self.cache.hits} hits / "
                f"{self.cache.hits + self.cache.misses} lookups "
                f"(hit rate {self.cache.hit_rate:.1%}, "
                f"{self.cache.evictions} evictions, "
                f"{self.cache.expirations} expirations)"
            )
        lines.append(
            f"  vs naive scalar serving: busy {self.batched_busy_s * 1e3:.2f} ms "
            f"vs {self.naive_busy_s * 1e3:.2f} ms -> "
            f"{self.speedup_vs_scalar:.1f}x"
        )
        return "\n".join(lines)


# --------------------------------------------------------------- request mix


class RequestMix:
    """Seeded stream of requests shaped like stack-monitoring traffic."""

    def __init__(self, config: LoadgenConfig, tiers: Sequence[int]) -> None:
        self._rng = np.random.default_rng(config.seed)
        self._tiers = tuple(tiers)
        self._setpoints = np.linspace(25.0, 85.0, config.setpoints)
        self._jitter = config.temp_jitter_c
        weights = np.asarray(
            [
                config.point_weight,
                config.vt_weight,
                config.scan_weight,
                config.poll_weight,
            ],
            dtype=float,
        )
        if weights.min() < 0.0 or weights.sum() <= 0.0:
            raise ValueError("request-mix weights must be non-negative, sum > 0")
        self._weights = weights / weights.sum()
        self._deadline_s = (
            None if config.deadline_ms is None else config.deadline_ms / 1e3
        )

    def _temp(self) -> float:
        setpoint = self._setpoints[self._rng.integers(len(self._setpoints))]
        return float(setpoint + self._rng.normal(0.0, self._jitter))

    def next(self, now: float) -> ReadRequest:
        """The next request of the stream, stamped relative to ``now``."""
        deadline = None if self._deadline_s is None else now + self._deadline_s
        kind = int(self._rng.choice(4, p=self._weights))
        if kind == 0:
            tier = int(self._tiers[self._rng.integers(len(self._tiers))])
            return ReadRequest.point(tier, self._temp(), deadline_s=deadline)
        if kind == 1:
            tier = int(self._tiers[self._rng.integers(len(self._tiers))])
            return ReadRequest.vt(tier, self._temp(), deadline_s=deadline)
        if kind == 2:
            count = int(self._rng.integers(2, max(3, len(self._tiers) + 1)))
            picks = self._rng.choice(len(self._tiers), size=min(count, len(self._tiers)), replace=False)
            tiers = tuple(sorted(int(self._tiers[i]) for i in picks))
            return ReadRequest.scan(self._temp(), tiers=tiers, deadline_s=deadline)
        base = self._temp()
        gradient = self._rng.normal(0.0, 1.5, size=len(self._tiers))
        temps = {
            tier: float(base + gradient[i]) for i, tier in enumerate(self._tiers)
        }
        return ReadRequest.poll(temps, default_temp_c=base, deadline_s=deadline)


# ------------------------------------------------------------- cost modelling


def batch_service_time(results: Sequence[ReadResult], cost: CostModel) -> float:
    """Virtual stack-occupancy time of one coalesced batch.

    Tiers convert concurrently (separate physical sensors); each tier
    serialises its own cache-miss conversions; cache hits cost only the
    per-reading framing.
    """
    per_tier: Dict[int, float] = defaultdict(float)
    readings = 0
    for result in results:
        for reading in result.readings:
            readings += 1
            if not reading.cache_hit:
                per_tier[reading.tier] += reading.conversion_time
    busy = max(per_tier.values()) if per_tier else 0.0
    return cost.batch_overhead_s + busy + cost.per_reading_s * readings


def naive_service_time(result: ReadResult, cost: CostModel) -> float:
    """What the same request costs served alone, scalar, uncached."""
    if not result.readings:
        return 0.0
    conversions = sum(reading.conversion_time for reading in result.readings)
    return cost.scalar_overhead_s + conversions


# ----------------------------------------------------------- virtual-time sim


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Run the virtual-time simulation and return its report.

    Open loop (``config.clients is None``): Poisson arrivals at
    ``rate_rps``.  Closed loop: ``clients`` clients, each submitting,
    blocking for its answer, thinking, and submitting again.
    """
    sensors = build_stack_sensors(config.serve.tiers, config.serve.seed)
    cache = (
        ResultCache(
            capacity=config.serve.cache_capacity,
            ttl_s=config.serve.cache_ttl_s,
            temp_resolution_c=config.serve.temp_resolution_c,
            vdd_resolution_v=config.serve.vdd_resolution_v,
        )
        if config.serve.cache_capacity and config.serve.deterministic
        else None
    )
    engine = ReadEngine(
        sensors, cache=cache, deterministic=config.serve.deterministic
    )
    mix = RequestMix(config, engine.tiers)
    policy = config.serve.batch
    depth = config.serve.admission.queue_depth

    arrival_rng = np.random.default_rng(config.seed + 1)
    # Event heap of (time, sequence, request).  Open loop pre-computes the
    # whole arrival process; closed loop seeds one event per client and
    # refills on completion.
    events: List[Tuple[float, int, ReadRequest]] = []
    sequence = 0
    issued = 0

    def push(when: float) -> None:
        nonlocal sequence, issued
        if issued >= config.requests:
            return
        heapq.heappush(events, (when, sequence, mix.next(when)))
        sequence += 1
        issued += 1

    if config.clients is None:
        t = 0.0
        for _ in range(config.requests):
            t += float(arrival_rng.exponential(1.0 / config.rate_rps))
            push(t)
    else:
        for client in range(config.clients):
            push(float(arrival_rng.uniform(0.0, config.think_time_s)))

    queue: "deque[Tuple[float, ReadRequest]]" = deque()
    free_at = 0.0
    rejected = 0
    served: List[ReadResult] = []
    latencies: List[float] = []
    batch_histogram: TallyCounter = TallyCounter()
    batched_busy = 0.0
    naive_busy = 0.0
    first_arrival: Optional[float] = None
    last_finish = 0.0
    counts = {status: 0 for status in ResultStatus}

    def ingest(until: float) -> None:
        """Move every arrival at or before ``until`` into the queue."""
        nonlocal rejected
        while events and events[0][0] <= until:
            when, _, request = heapq.heappop(events)
            if len(queue) >= depth:
                rejected += 1
                continue
            queue.append((when, request))

    while events or queue:
        if not queue:
            ingest(events[0][0])
            if not queue:  # the arrival was rejected (cannot happen empty)
                continue
        head_at = queue[0][0]
        ready = max(free_at, head_at)
        if first_arrival is None:
            first_arrival = head_at
        # The batch opened with its head request; it closes at fill or
        # when the head's wait budget runs out (never before the worker
        # is free).
        close = max(ready, head_at + policy.max_wait_s)
        ingest(ready)
        if len(queue) >= policy.max_batch:
            close = ready  # a full backlog flushes as soon as the worker frees
        while (
            len(queue) < policy.max_batch
            and events
            and events[0][0] <= close
        ):
            when, _, request = heapq.heappop(events)
            if len(queue) >= depth:
                rejected += 1
                continue
            queue.append((when, request))
            if len(queue) >= policy.max_batch:
                close = max(ready, when)
        start = close
        take = min(policy.max_batch, len(queue))
        batch = [queue.popleft() for _ in range(take)]
        results = engine.execute([request for _, request in batch], now=start)
        service = batch_service_time(results, config.cost)
        finish = start + service
        free_at = finish
        last_finish = finish
        batched_busy += service
        batch_histogram[take] += 1
        for (arrived, _), result in zip(batch, results):
            counts[result.status] += 1
            served.append(result)
            naive_busy += naive_service_time(result, config.cost)
            if result.status in (ResultStatus.OK, ResultStatus.DEGRADED):
                latencies.append(finish - arrived)
            if config.clients is not None:
                push(finish + float(arrival_rng.exponential(config.think_time_s)))

    latencies.sort()
    duration = max(last_finish - (first_arrival or 0.0), 0.0)
    cache_stats = cache.stats() if cache is not None else None
    return _build_report(
        mode="virtual-open" if config.clients is None else "virtual-closed",
        config=config,
        served=served,
        counts=counts,
        rejected=rejected,
        latencies=latencies,
        batch_histogram=dict(batch_histogram),
        duration=duration,
        batched_busy=batched_busy,
        naive_busy=naive_busy,
        cache_stats=cache_stats,
    )


# --------------------------------------------------------------- wall-clock


def run_loadgen_wall(
    config: LoadgenConfig, access_log: Optional[str] = None
) -> LoadgenReport:
    """Drive the real threaded service, closed loop, with wall sleeps.

    An end-to-end smoke of the concurrent runtime (threads, condition
    variables, drain).  Latency numbers here depend on the host
    scheduler; use the default virtual mode for reproducible statistics.
    """
    import time

    from repro.serve.admission import QueueFullError

    clients = config.clients or 4
    think_rng = np.random.default_rng(config.seed + 1)
    service = SensorReadService(config=config.serve, access_log=access_log)
    mix = RequestMix(config, service.engine.tiers)
    issued = 0
    rejected = 0
    served: List[ReadResult] = []
    latencies: List[float] = []
    counts = {status: 0 for status in ResultStatus}
    naive_busy = 0.0
    started = time.monotonic()
    try:
        pending = []
        while issued < config.requests or pending:
            while issued < config.requests and len(pending) < clients:
                request = mix.next(time.monotonic())
                try:
                    pending.append(service.submit(request))
                except QueueFullError:
                    rejected += 1
                issued += 1
            future = pending.pop(0)
            result = future.result(timeout=30.0)
            counts[result.status] += 1
            served.append(result)
            naive_busy += naive_service_time(result, config.cost)
            if result.status in (ResultStatus.OK, ResultStatus.DEGRADED):
                latencies.append(result.latency_s)
            think = float(think_rng.exponential(config.think_time_s))
            if think > 0.0 and issued < config.requests:
                time.sleep(min(think, 0.005))
    finally:
        service.close(drain=True)
    duration = time.monotonic() - started
    stats = service.stats()
    latencies.sort()
    batched_busy = sum(
        batch_service_time([r], config.cost) for r in served
    )  # indicative only in wall mode
    return _build_report(
        mode="wall-closed",
        config=config,
        served=served,
        counts=counts,
        rejected=rejected,
        latencies=latencies,
        batch_histogram=stats.batch_size_histogram,
        duration=duration,
        batched_busy=batched_busy,
        naive_busy=naive_busy,
        cache_stats=stats.cache,
    )


# ------------------------------------------------------------------- report


def _build_report(
    mode: str,
    config: LoadgenConfig,
    served: List[ReadResult],
    counts: Dict[ResultStatus, int],
    rejected: int,
    latencies: List[float],
    batch_histogram: Dict[int, int],
    duration: float,
    batched_busy: float,
    naive_busy: float,
    cache_stats: Optional[CacheStats],
) -> LoadgenReport:
    total_served = len(served)
    total_batched = sum(size * n for size, n in batch_histogram.items())
    total_batches = sum(batch_histogram.values())
    cache_lookups = (
        cache_stats.hits + cache_stats.misses if cache_stats is not None else 0
    )
    return LoadgenReport(
        mode=mode,
        requests=config.requests,
        served=total_served,
        ok=counts[ResultStatus.OK],
        degraded=counts[ResultStatus.DEGRADED],
        shed=counts[ResultStatus.SHED],
        errors=counts[ResultStatus.ERROR],
        rejected=rejected,
        duration_s=duration,
        throughput_rps=total_served / duration if duration > 0.0 else 0.0,
        latency_ms={
            "p50": _percentile(latencies, 0.50) * 1e3,
            "p95": _percentile(latencies, 0.95) * 1e3,
            "p99": _percentile(latencies, 0.99) * 1e3,
            "mean": (sum(latencies) / len(latencies) * 1e3) if latencies else 0.0,
            "max": latencies[-1] * 1e3 if latencies else 0.0,
        },
        batch_histogram=batch_histogram,
        mean_batch_size=total_batched / total_batches if total_batches else 0.0,
        cache=cache_stats,
        cache_hit_rate=(
            cache_stats.hits / cache_lookups if cache_lookups else 0.0
        ),
        shed_rate=counts[ResultStatus.SHED] / total_served if total_served else 0.0,
        batched_busy_s=batched_busy,
        naive_busy_s=naive_busy,
        speedup_vs_scalar=naive_busy / batched_busy if batched_busy > 0.0 else 0.0,
        seed=config.seed,
    )
