"""LRU+TTL result cache keyed by quantised operating point.

Two requests for the same tier at "the same" condition should cost one
conversion, not two — but floating-point temperatures rarely repeat
exactly.  The cache therefore quantises the environment to the sensor's
own resolution class before keying: temperatures to ``temp_resolution_c``
and supplies to ``vdd_resolution_v``.  Two requests whose conditions the
silicon could not tell apart share a cache line.

The cache only serves *deterministic-mode* conversions (the service's
default): a noisy conversion consumes the sensor's private rng stream,
so replaying it from a cache would silently change every stream after
it.  Entries expire after ``ttl_s`` service-clock seconds and the least
recently used entry is evicted at capacity.  The clock is injected by
the caller, which is what lets the load generator run the same cache in
virtual time, deterministically.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro import telemetry
from repro.serve.requests import TierReading

_CACHE_HITS = telemetry.counter(
    "serve.cache_hits", unit="lookups", help="Result-cache hits"
)
_CACHE_MISSES = telemetry.counter(
    "serve.cache_misses", unit="lookups", help="Result-cache misses"
)
_CACHE_EVICTIONS = telemetry.counter(
    "serve.cache_evictions", unit="entries", help="LRU evictions from the result cache"
)
_CACHE_EXPIRED = telemetry.counter(
    "serve.cache_expired", unit="entries", help="TTL expiries served as misses"
)


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache instance (process-wide twins live in telemetry)."""

    hits: int
    misses: int
    evictions: int
    expirations: int
    entries: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Thread-safe LRU+TTL cache of :class:`TierReading` values.

    Args:
        capacity: Maximum number of entries; the least recently *used*
            entry is evicted beyond it.
        ttl_s: Entry lifetime in service-clock seconds (``float("inf")``
            disables expiry).
        temp_resolution_c: Temperature quantisation step for keys.
        vdd_resolution_v: Supply quantisation step for keys.
    """

    def __init__(
        self,
        capacity: int = 2048,
        ttl_s: float = 5.0,
        temp_resolution_c: float = 0.25,
        vdd_resolution_v: float = 0.005,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl_s <= 0.0:
            raise ValueError("ttl_s must be positive")
        if temp_resolution_c <= 0.0 or vdd_resolution_v <= 0.0:
            raise ValueError("quantisation resolutions must be positive")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.temp_resolution_c = temp_resolution_c
        self.vdd_resolution_v = vdd_resolution_v
        self._entries: "OrderedDict[Tuple, Tuple[float, TierReading]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def key(
        self,
        tier: int,
        temp_c: float,
        vdd: float,
        assume_vdd: Optional[float] = None,
    ) -> Tuple:
        """The quantised cache key of one (tier, operating point) lookup."""
        return (
            tier,
            round(temp_c / self.temp_resolution_c),
            round(vdd / self.vdd_resolution_v),
            None
            if assume_vdd is None
            else round(assume_vdd / self.vdd_resolution_v),
        )

    def get(self, key: Tuple, now: float) -> Optional[TierReading]:
        """The live entry under ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            stored = self._entries.get(key)
            if stored is not None:
                stored_at, reading = stored
                if now - stored_at < self.ttl_s:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    _CACHE_HITS.inc()
                    return reading
                del self._entries[key]
                self._expirations += 1
                _CACHE_EXPIRED.inc()
            self._misses += 1
            _CACHE_MISSES.inc()
            return None

    def put(self, key: Tuple, reading: TierReading, now: float) -> None:
        """Store a reading, evicting the LRU entry past capacity."""
        with self._lock:
            self._entries[key] = (now, reading)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                _CACHE_EVICTIONS.inc()

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent snapshot of this cache's counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                entries=len(self._entries),
            )
