"""Micro-batching scheduler: coalesce a request stream into batches.

The scheduler trades a bounded amount of queueing delay for batch size:
a batch opens when the first request arrives, and closes when either
``max_batch`` requests have accumulated or ``max_wait_ms`` has elapsed
since the batch opened — the classic micro-batching policy of
serving systems, applied to sensor conversions.

:class:`BatchPolicy` is the pure policy; :class:`MicroBatcher` is the
threaded runtime the embedded service runs (worker threads, condition
variable, graceful drain).  The load generator replays the *same policy*
in virtual time without threads, which is what makes its latency
statistics deterministic.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro import telemetry
from repro.serve.admission import ServiceClosedError
from repro.serve.requests import ReadRequest, ReadResult

_QUEUE_WAIT = telemetry.histogram(
    "serve.queue_wait_ms", unit="ms", help="Time requests spend queued before a batch"
)


@dataclass(frozen=True)
class BatchPolicy:
    """The two knobs of the micro-batching trade-off.

    Attributes:
        max_batch: Largest number of requests coalesced into one
            evaluation.
        max_wait_ms: Longest a batch stays open waiting to fill, in
            milliseconds.  ``0`` degenerates to opportunistic batching:
            take whatever is queued, never wait.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_ms < 0.0:
            raise ValueError("max_wait_ms must be non-negative")

    @property
    def max_wait_s(self) -> float:
        """The wait bound in seconds."""
        return self.max_wait_ms / 1e3


class PendingResult:
    """A write-once future for one submitted request.

    ``context`` is an opaque caller-owned tag carried alongside the
    request (the edge worker stores its wire sequence number there); the
    scheduler never reads it.
    """

    def __init__(
        self, request: ReadRequest, enqueued_at: float, context: object = None
    ) -> None:
        self.request = request
        self.enqueued_at = enqueued_at
        self.context = context
        self._event = threading.Event()
        self._result: Optional[ReadResult] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether a result (or failure) has been published."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ReadResult:
        """Block for the result; raises on timeout or service failure."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not served within the timeout")
        if self._error is not None:
            raise self._error
        return self._result

    def _complete(self, result: ReadResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class MicroBatcher:
    """Worker threads draining a bounded queue in micro-batches.

    Args:
        execute: Callback evaluating one coalesced batch —
            ``execute(requests, now) -> results`` (the
            :meth:`repro.serve.engine.ReadEngine.execute` signature).
        policy: The batching policy.
        clock: Monotonic time source (injectable for tests).
        on_complete: Optional callback ``(pending, result)`` invoked for
            every served request — the service's access-log hook.
        on_fail: Optional callback ``(pending, error)`` invoked for every
            request that *fails* instead of completing (engine exception,
            or queued at a non-draining close) — after the future itself
            is failed.  Embedders that answer requests through
            ``on_complete`` (the edge shard worker) use this to guarantee
            every submitted request gets exactly one reply.
        workers: Worker-thread count.  One worker preserves the strict
            arrival order of rng consumption; more workers trade that
            determinism for pipelining across batches.
    """

    def __init__(
        self,
        execute: Callable[[Sequence[ReadRequest], float], List[ReadResult]],
        policy: BatchPolicy = BatchPolicy(),
        clock: Callable[[], float] = time.monotonic,
        on_complete: Optional[Callable[[PendingResult, ReadResult], None]] = None,
        on_fail: Optional[Callable[[PendingResult, BaseException], None]] = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.policy = policy
        self.clock = clock
        self._execute = execute
        self._on_complete = on_complete
        self._on_fail = on_fail
        self._queue: "deque[PendingResult]" = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._loop, name=f"repro-serve-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # --------------------------------------------------------------- client

    def __len__(self) -> int:
        """Current queue length (racy by nature; used for backpressure)."""
        return len(self._queue)

    def submit(self, pending: PendingResult) -> None:
        """Enqueue an admitted request for the next batch."""
        with self._cv:
            if self._closed:
                raise ServiceClosedError("the service is closed")
            self._queue.append(pending)
            self._cv.notify_all()

    def submit_many(self, pendings: Sequence[PendingResult]) -> None:
        """Enqueue several admitted requests under one lock acquisition.

        The whole group lands in the queue before any worker wakes, so a
        coalesced upstream batch (the edge's batched worker IPC) reaches
        the batch-taking logic as one run of requests rather than a
        trickle of singletons.
        """
        if not pendings:
            return
        with self._cv:
            if self._closed:
                raise ServiceClosedError("the service is closed")
            self._queue.extend(pendings)
            self._cv.notify_all()

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests; optionally serve what is queued.

        With ``drain=True`` (the default) workers finish the queue before
        exiting; with ``drain=False`` queued requests fail with
        :class:`ServiceClosedError`.
        """
        with self._cv:
            if self._closed:
                orphans = []
            else:
                self._closed = True
                orphans = [] if drain else list(self._queue)
                if not drain:
                    self._queue.clear()
            self._cv.notify_all()
        for pending in orphans:
            error = ServiceClosedError("the service closed before serving")
            pending._fail(error)
            if self._on_fail is not None:
                self._on_fail(pending, error)
        for thread in self._threads:
            thread.join()

    # --------------------------------------------------------------- worker

    def _take_batch(self) -> List[PendingResult]:
        """Block for the next batch (empty list means: shut down)."""
        with self._cv:
            while True:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return []
                # The batch opened when its head request arrived; keep it
                # open until it fills or the wait budget runs out.  A
                # closed (draining) batcher flushes immediately.
                deadline = self._queue[0].enqueued_at + self.policy.max_wait_s
                while len(self._queue) < self.policy.max_batch and not self._closed:
                    remaining = deadline - self.clock()
                    if remaining <= 0.0:
                        break
                    self._cv.wait(timeout=remaining)
                    if not self._queue:
                        break  # another worker drained it; start over
                if not self._queue:
                    continue
                take = min(self.policy.max_batch, len(self._queue))
                return [self._queue.popleft() for _ in range(take)]

    def _loop(self) -> None:
        while True:
            batch = self._take_batch()
            if not batch:
                return
            started = self.clock()
            for pending in batch:
                _QUEUE_WAIT.observe((started - pending.enqueued_at) * 1e3)
            try:
                results = self._execute([p.request for p in batch], started)
            except Exception as error:  # noqa: BLE001 - server must not die
                for pending in batch:
                    pending._fail(error)
                    if self._on_fail is not None:
                        self._on_fail(pending, error)
                continue
            completed = self.clock()
            for pending, result in zip(batch, results):
                result = dataclasses.replace(
                    result,
                    enqueued_at=pending.enqueued_at,
                    completed_at=completed,
                )
                pending._complete(result)
                if self._on_complete is not None:
                    self._on_complete(pending, result)
