"""The embedded sensor-readout service: queue, batch, answer, log.

:class:`SensorReadService` is the front door of a monitored stack: it
admits typed :class:`~repro.serve.requests.ReadRequest` objects into a
bounded queue, coalesces them into micro-batches, evaluates each batch
in one vectorised pass, and publishes :class:`ReadResult` futures —
optionally writing one JSON line per served request to an access log
(via the thread-safe :class:`repro.telemetry.JsonlSink`).

The service is *embedded* (in-process, thread-based): the reproduction
has no network edge, but every serving concern short of sockets —
micro-batching, caching, admission control, graceful drain, end-to-end
latency accounting — is real and measured.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.sensor import PTSensor
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.engine import ReadEngine
from repro.serve.requests import ReadRequest, ReadResult, ResultStatus
from repro.serve.scheduler import BatchPolicy, MicroBatcher, PendingResult
from repro.telemetry import JsonlSink


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving stack needs, in one frozen config.

    Attributes:
        tiers: Stack height (one sensor per tier).
        seed: Die-population seed of the served stack.
        batch: Micro-batching policy.
        admission: Admission-control policy.
        cache_capacity: Result-cache entries (0 disables caching).
        cache_ttl_s: Result-cache entry lifetime, service-clock seconds.
        temp_resolution_c: Cache-key temperature quantisation.
        vdd_resolution_v: Cache-key supply quantisation.
        deterministic: Serve deterministic (mid-phase) conversions — the
            default, and required for caching; ``False`` serves noisy
            conversions and bypasses the cache.
        workers: Worker threads draining the queue.
    """

    tiers: int = 8
    seed: int = 2012
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 2048
    cache_ttl_s: float = 5.0
    temp_resolution_c: float = 0.25
    vdd_resolution_v: float = 0.005
    deterministic: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.tiers < 1:
            raise ValueError("tiers must be >= 1")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


def build_stack_sensors(
    tiers: int = 8, seed: int = 2012
) -> Dict[int, PTSensor]:
    """One reference-design sensor per tier of a seeded stack.

    The design-time model and LUT are shared across tiers (they are
    per-design); each tier gets its own Monte-Carlo die and private
    noise stream, exactly like :func:`repro.faults.campaign` stacks.
    """
    from repro.experiments.common import build_sensor, die_population

    dies = die_population(tiers, seed)
    return {tier: build_sensor(die, die_id=tier) for tier, die in enumerate(dies)}


# ------------------------------------------------------------- access logs
#
# Two services in one process pointed at the same access-log path used to
# interleave (and clobber) each other's JSONL records.  The registry below
# uniquifies colliding paths per process; ``{pid}`` / ``{instance}``
# placeholders let multi-process deployments (the edge's shard workers)
# keep per-owner files by construction.

DEFAULT_ACCESS_LOG_PATTERN = "serve-access-{pid}-{instance}.jsonl"

_access_log_lock = threading.Lock()
_access_log_active: set = set()
_access_log_instances = itertools.count()


def resolve_access_log_path(path: str) -> str:
    """Resolve one service's access-log path, collision-free in-process.

    ``{pid}`` and ``{instance}`` placeholders are substituted (process id
    and a process-wide monotonically increasing service instance id).  A
    literal path already claimed by a live service in this process gets
    ``.pid<pid>-<instance>`` inserted before its suffix instead of
    silently sharing the sink.
    """
    instance = next(_access_log_instances)
    if "{pid}" in path or "{instance}" in path:
        path = path.replace("{pid}", str(os.getpid()))
        path = path.replace("{instance}", str(instance))
    with _access_log_lock:
        if path not in _access_log_active:
            _access_log_active.add(path)
            return path
        stem, dot, suffix = path.rpartition(".")
        if not dot:
            stem, suffix = path, "jsonl"
        unique = f"{stem}.pid{os.getpid()}-{instance}.{suffix}"
        while unique in _access_log_active:  # pragma: no cover - defensive
            unique = f"{stem}.pid{os.getpid()}-{next(_access_log_instances)}.{suffix}"
        _access_log_active.add(unique)
        return unique


def _release_access_log_path(path: str) -> None:
    with _access_log_lock:
        _access_log_active.discard(path)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's own accounting."""

    served: int
    errors: int
    degraded: int
    batches: int
    batch_size_histogram: Dict[int, int]
    queue_length: int
    backpressure: float
    admission: AdmissionStats
    cache: Optional[CacheStats]


class SensorReadService:
    """The embedded micro-batching readout service over one stack.

    Args:
        sensors: ``tier -> PTSensor``; ``None`` builds a seeded stack
            from ``config``.
        config: Serving configuration.
        access_log: Path of a JSONL access log (one record per served
            request), or ``None`` for no log.  ``{pid}`` / ``{instance}``
            placeholders are substituted, and a path another live service
            of this process already writes is uniquified — see
            :func:`resolve_access_log_path`; the actual path is exposed
            as :attr:`access_log_path`.
        clock: Monotonic time source (injectable for tests).
        on_result: Optional callback ``(pending, result)`` invoked for
            every served request after the service's own accounting —
            the hook an embedding shard worker answers its clients from.
        on_fail: Optional callback ``(pending, error)`` invoked for every
            request that fails instead of completing (engine exception,
            non-draining close).

    Use as a context manager for guaranteed drain-and-close::

        with SensorReadService(config=ServeConfig(tiers=4)) as service:
            result = service.read(ReadRequest.point(0, 55.0))
    """

    def __init__(
        self,
        sensors: Optional[Dict[int, PTSensor]] = None,
        config: ServeConfig = ServeConfig(),
        access_log: Optional[str] = None,
        clock=time.monotonic,
        on_result: Optional[Callable[[PendingResult, ReadResult], None]] = None,
        on_fail: Optional[Callable[[PendingResult, BaseException], None]] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self._on_result = on_result
        if sensors is None:
            sensors = build_stack_sensors(config.tiers, config.seed)
        self.admission = AdmissionController(config.admission)
        self.cache = (
            ResultCache(
                capacity=config.cache_capacity,
                ttl_s=config.cache_ttl_s,
                temp_resolution_c=config.temp_resolution_c,
                vdd_resolution_v=config.vdd_resolution_v,
            )
            if config.cache_capacity and config.deterministic
            else None
        )
        self.engine = ReadEngine(
            sensors,
            cache=self.cache,
            admission=self.admission,
            deterministic=config.deterministic,
        )
        self.access_log_path = (
            resolve_access_log_path(access_log) if access_log else None
        )
        self._access_sink = (
            JsonlSink(self.access_log_path) if self.access_log_path else None
        )
        self._served = 0
        self._errors = 0
        self._degraded = 0
        self._batcher = MicroBatcher(
            self.engine.execute,
            policy=config.batch,
            clock=clock,
            on_complete=self._log_request,
            on_fail=on_fail,
            workers=config.workers,
        )

    # --------------------------------------------------------------- client

    def submit(self, request: ReadRequest, context: object = None) -> PendingResult:
        """Admit and enqueue one request; returns its future.

        ``context`` is an opaque caller tag carried on the returned
        :class:`PendingResult` (and through the ``on_result`` /
        ``on_fail`` callbacks); the service never reads it.

        Raises:
            QueueFullError: Admission rejected the request (bounded
                queue at capacity) — the hard backpressure edge.
            ServiceClosedError: The service is draining or closed.
        """
        self.admission.admit(len(self._batcher))
        pending = PendingResult(request, enqueued_at=self.clock(), context=context)
        self._batcher.submit(pending)
        return pending

    def submit_many(
        self, items: "Sequence[Tuple[ReadRequest, object]]"
    ) -> "List[object]":
        """Admit and enqueue a batch of ``(request, context)`` pairs.

        The batch is enqueued in one scheduler lock acquisition, so the
        micro-batcher sees it as one run of requests (the edge's batched
        worker IPC hands whole pipe messages through here).  Admission is
        still per item — a rejected item fails alone: its slot in the
        returned list holds the admission exception
        (:class:`QueueFullError` / :class:`ServiceClosedError`) instead
        of a :class:`PendingResult`, and the rest of the batch proceeds.
        """
        now = self.clock()
        queued = len(self._batcher)
        outcomes: "List[object]" = []
        accepted: "List[PendingResult]" = []
        for request, context in items:
            try:
                self.admission.admit(queued + len(accepted))
            except (QueueFullError, ServiceClosedError) as error:
                outcomes.append(error)
                continue
            pending = PendingResult(request, enqueued_at=now, context=context)
            accepted.append(pending)
            outcomes.append(pending)
        try:
            self._batcher.submit_many(accepted)
        except ServiceClosedError as error:
            for i, outcome in enumerate(outcomes):
                if isinstance(outcome, PendingResult):
                    outcomes[i] = error
        return outcomes

    def read(
        self, request: ReadRequest, timeout: Optional[float] = 30.0
    ) -> ReadResult:
        """Submit one request and block for its answer."""
        return self.submit(request).result(timeout)

    def backpressure(self) -> float:
        """Queue fullness in ``[0, 1]`` — slow down as it approaches 1."""
        return self.admission.backpressure(len(self._batcher))

    # ------------------------------------------------------------ lifecycle

    def close(self, drain: bool = True) -> None:
        """Stop admitting; drain (default) or fail queued requests."""
        self._batcher.close(drain=drain)
        if self._access_sink is not None:
            self._access_sink.flush()
            self._access_sink.close()
            self._access_sink = None
        if self.access_log_path is not None:
            _release_access_log_path(self.access_log_path)

    def __enter__(self) -> "SensorReadService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ----------------------------------------------------------- accounting

    def _log_request(self, pending: PendingResult, result: ReadResult) -> None:
        self._served += 1
        if result.status is ResultStatus.ERROR:
            self._errors += 1
        elif result.status is ResultStatus.DEGRADED:
            self._degraded += 1
        if self._access_sink is not None:
            self._access_sink.emit_metric(
                {
                    "type": "access",
                    "kind": result.request.kind.value,
                    "status": result.status.value,
                    "readings": len(result.readings),
                    "cache_hits": result.cache_hits,
                    "batch_size": result.batch_size,
                    "latency_ms": round(result.latency_s * 1e3, 4),
                    "enqueued_at": round(result.enqueued_at, 6),
                }
            )
        if self._on_result is not None:
            self._on_result(pending, result)

    def stats(self) -> ServiceStats:
        """Snapshot the service's serving counters."""
        queue_length = len(self._batcher)
        return ServiceStats(
            served=self._served,
            errors=self._errors,
            degraded=self._degraded,
            batches=self.engine.batches,
            batch_size_histogram=self.engine.batch_size_histogram(),
            queue_length=queue_length,
            backpressure=self.admission.backpressure(queue_length),
            admission=self.admission.stats(),
            cache=self.cache.stats() if self.cache is not None else None,
        )
