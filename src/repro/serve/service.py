"""The embedded sensor-readout service: queue, batch, answer, log.

:class:`SensorReadService` is the front door of a monitored stack: it
admits typed :class:`~repro.serve.requests.ReadRequest` objects into a
bounded queue, coalesces them into micro-batches, evaluates each batch
in one vectorised pass, and publishes :class:`ReadResult` futures —
optionally writing one JSON line per served request to an access log
(via the thread-safe :class:`repro.telemetry.JsonlSink`).

The service is *embedded* (in-process, thread-based): the reproduction
has no network edge, but every serving concern short of sockets —
micro-batching, caching, admission control, graceful drain, end-to-end
latency accounting — is real and measured.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.sensor import PTSensor
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionStats,
)
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.engine import ReadEngine
from repro.serve.requests import ReadRequest, ReadResult, ResultStatus
from repro.serve.scheduler import BatchPolicy, MicroBatcher, PendingResult
from repro.telemetry import JsonlSink


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serving stack needs, in one frozen config.

    Attributes:
        tiers: Stack height (one sensor per tier).
        seed: Die-population seed of the served stack.
        batch: Micro-batching policy.
        admission: Admission-control policy.
        cache_capacity: Result-cache entries (0 disables caching).
        cache_ttl_s: Result-cache entry lifetime, service-clock seconds.
        temp_resolution_c: Cache-key temperature quantisation.
        vdd_resolution_v: Cache-key supply quantisation.
        deterministic: Serve deterministic (mid-phase) conversions — the
            default, and required for caching; ``False`` serves noisy
            conversions and bypasses the cache.
        workers: Worker threads draining the queue.
    """

    tiers: int = 8
    seed: int = 2012
    batch: BatchPolicy = field(default_factory=BatchPolicy)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_capacity: int = 2048
    cache_ttl_s: float = 5.0
    temp_resolution_c: float = 0.25
    vdd_resolution_v: float = 0.005
    deterministic: bool = True
    workers: int = 1

    def __post_init__(self) -> None:
        if self.tiers < 1:
            raise ValueError("tiers must be >= 1")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


def build_stack_sensors(
    tiers: int = 8, seed: int = 2012
) -> Dict[int, PTSensor]:
    """One reference-design sensor per tier of a seeded stack.

    The design-time model and LUT are shared across tiers (they are
    per-design); each tier gets its own Monte-Carlo die and private
    noise stream, exactly like :func:`repro.faults.campaign` stacks.
    """
    from repro.experiments.common import build_sensor, die_population

    dies = die_population(tiers, seed)
    return {tier: build_sensor(die, die_id=tier) for tier, die in enumerate(dies)}


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of the service's own accounting."""

    served: int
    errors: int
    degraded: int
    batches: int
    batch_size_histogram: Dict[int, int]
    queue_length: int
    backpressure: float
    admission: AdmissionStats
    cache: Optional[CacheStats]


class SensorReadService:
    """The embedded micro-batching readout service over one stack.

    Args:
        sensors: ``tier -> PTSensor``; ``None`` builds a seeded stack
            from ``config``.
        config: Serving configuration.
        access_log: Path of a JSONL access log (one record per served
            request), or ``None`` for no log.
        clock: Monotonic time source (injectable for tests).

    Use as a context manager for guaranteed drain-and-close::

        with SensorReadService(config=ServeConfig(tiers=4)) as service:
            result = service.read(ReadRequest.point(0, 55.0))
    """

    def __init__(
        self,
        sensors: Optional[Dict[int, PTSensor]] = None,
        config: ServeConfig = ServeConfig(),
        access_log: Optional[str] = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        if sensors is None:
            sensors = build_stack_sensors(config.tiers, config.seed)
        self.admission = AdmissionController(config.admission)
        self.cache = (
            ResultCache(
                capacity=config.cache_capacity,
                ttl_s=config.cache_ttl_s,
                temp_resolution_c=config.temp_resolution_c,
                vdd_resolution_v=config.vdd_resolution_v,
            )
            if config.cache_capacity and config.deterministic
            else None
        )
        self.engine = ReadEngine(
            sensors,
            cache=self.cache,
            admission=self.admission,
            deterministic=config.deterministic,
        )
        self._access_sink = JsonlSink(access_log) if access_log else None
        self._served = 0
        self._errors = 0
        self._degraded = 0
        self._batcher = MicroBatcher(
            self.engine.execute,
            policy=config.batch,
            clock=clock,
            on_complete=self._log_request,
            workers=config.workers,
        )

    # --------------------------------------------------------------- client

    def submit(self, request: ReadRequest) -> PendingResult:
        """Admit and enqueue one request; returns its future.

        Raises:
            QueueFullError: Admission rejected the request (bounded
                queue at capacity) — the hard backpressure edge.
            ServiceClosedError: The service is draining or closed.
        """
        self.admission.admit(len(self._batcher))
        pending = PendingResult(request, enqueued_at=self.clock())
        self._batcher.submit(pending)
        return pending

    def read(
        self, request: ReadRequest, timeout: Optional[float] = 30.0
    ) -> ReadResult:
        """Submit one request and block for its answer."""
        return self.submit(request).result(timeout)

    def backpressure(self) -> float:
        """Queue fullness in ``[0, 1]`` — slow down as it approaches 1."""
        return self.admission.backpressure(len(self._batcher))

    # ------------------------------------------------------------ lifecycle

    def close(self, drain: bool = True) -> None:
        """Stop admitting; drain (default) or fail queued requests."""
        self._batcher.close(drain=drain)
        if self._access_sink is not None:
            self._access_sink.flush()
            self._access_sink.close()
            self._access_sink = None

    def __enter__(self) -> "SensorReadService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ----------------------------------------------------------- accounting

    def _log_request(self, pending: PendingResult, result: ReadResult) -> None:
        self._served += 1
        if result.status is ResultStatus.ERROR:
            self._errors += 1
        elif result.status is ResultStatus.DEGRADED:
            self._degraded += 1
        if self._access_sink is not None:
            self._access_sink.emit_metric(
                {
                    "type": "access",
                    "kind": result.request.kind.value,
                    "status": result.status.value,
                    "readings": len(result.readings),
                    "cache_hits": result.cache_hits,
                    "batch_size": result.batch_size,
                    "latency_ms": round(result.latency_s * 1e3, 4),
                    "enqueued_at": round(result.enqueued_at, 6),
                }
            )

    def stats(self) -> ServiceStats:
        """Snapshot the service's serving counters."""
        queue_length = len(self._batcher)
        return ServiceStats(
            served=self._served,
            errors=self._errors,
            degraded=self._degraded,
            batches=self.engine.batches,
            batch_size_histogram=self.engine.batch_size_histogram(),
            queue_length=queue_length,
            backpressure=self.admission.backpressure(queue_length),
            admission=self.admission.stats(),
            cache=self.cache.stats() if self.cache is not None else None,
        )
