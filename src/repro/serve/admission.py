"""Admission control: bounded queueing, shedding and backpressure.

The serving queue is a finite resource.  The :class:`AdmissionController`
enforces a hard depth bound at submit time (reject early, cheaply, rather
than time out late), counts deadline shedding decided downstream by the
engine, and exposes a continuous *backpressure* signal — queue fullness
in ``[0, 1]`` — that well-behaved clients (the closed-loop load
generator, a DTM controller) can use to slow down before rejections
start.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro import telemetry

_ADMITTED = telemetry.counter(
    "serve.admitted", unit="requests", help="Requests admitted to the serving queue"
)
_REJECTED = telemetry.counter(
    "serve.rejected", unit="requests", help="Requests rejected at admission (queue full)"
)
_SHED = telemetry.counter(
    "serve.shed", unit="requests", help="Queued requests shed past their deadline"
)


class AdmissionError(RuntimeError):
    """Base class of admission-control rejections."""


class QueueFullError(AdmissionError):
    """The bounded serving queue is at capacity; back off and retry."""


class ServiceClosedError(AdmissionError):
    """The service is draining or closed and accepts no new requests."""


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission controller.

    Attributes:
        queue_depth: Maximum requests waiting for a batch slot.
        shed_expired: Whether the engine drops queued requests whose
            deadline has already passed instead of evaluating them.
    """

    queue_depth: int = 256
    shed_expired: bool = True

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")


@dataclass(frozen=True)
class AdmissionStats:
    """Counters of one controller instance."""

    admitted: int
    rejected: int
    shed: int


class AdmissionController:
    """Thread-safe gate in front of the serving queue."""

    def __init__(self, policy: AdmissionPolicy = AdmissionPolicy()) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._admitted = 0
        self._rejected = 0
        self._shed = 0

    def admit(self, queue_length: int) -> None:
        """Admit one request given the current queue length.

        Raises:
            QueueFullError: When the bounded queue is at capacity.  The
                exception is the backpressure signal's hard edge; callers
                polling :meth:`backpressure` should rarely see it.
        """
        if queue_length >= self.policy.queue_depth:
            with self._lock:
                self._rejected += 1
            _REJECTED.inc()
            raise QueueFullError(
                f"serving queue full ({queue_length}/{self.policy.queue_depth})"
            )
        with self._lock:
            self._admitted += 1
        _ADMITTED.inc()

    def record_shed(self, count: int = 1) -> None:
        """Account requests the engine shed past their deadline."""
        if count:
            with self._lock:
                self._shed += count
            _SHED.inc(count)

    def backpressure(self, queue_length: int) -> float:
        """Queue fullness in ``[0, 1]``; 1.0 means submits will reject."""
        return min(1.0, queue_length / self.policy.queue_depth)

    def stats(self) -> AdmissionStats:
        """A consistent snapshot of this controller's counters."""
        with self._lock:
            return AdmissionStats(
                admitted=self._admitted, rejected=self._rejected, shed=self._shed
            )
