"""repro.serve — the embedded micro-batching sensor-readout service.

A monitored 3-D stack answers *queries*: point reads, tier scans, Vt
extractions, full-stack polls.  This package turns the reproduction's
batch-evaluation engine into a small but complete serving system for
those queries:

- :mod:`repro.serve.requests` — the typed request/result contract.
- :mod:`repro.serve.scheduler` — micro-batching (coalesce a request
  stream into bounded batches: fill or time out).
- :mod:`repro.serve.engine` — one vectorised conversion per batch via
  :func:`repro.batch.read_paired`, with cache peel-off and fault seams.
- :mod:`repro.serve.cache` — LRU+TTL result cache keyed by quantised
  operating point.
- :mod:`repro.serve.admission` — bounded queue, deadline shedding,
  backpressure.
- :mod:`repro.serve.service` — the threaded front door
  (:class:`SensorReadService`), with JSONL access logging.
- :mod:`repro.serve.loadgen` — a deterministic virtual-time load
  generator reporting latency percentiles, batch-size histograms,
  cache hit rate and the speedup over naive scalar serving.

Quick start::

    from repro.serve import ReadRequest, SensorReadService, ServeConfig

    with SensorReadService(config=ServeConfig(tiers=4)) as service:
        result = service.read(ReadRequest.point(tier=0, temp_c=55.0))
        print(result.readings[0].temperature_c)
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionPolicy,
    AdmissionStats,
    QueueFullError,
    ServiceClosedError,
)
from repro.serve.cache import CacheStats, ResultCache
from repro.serve.engine import ReadEngine
from repro.serve.loadgen import (
    CostModel,
    LoadgenConfig,
    LoadgenReport,
    RequestMix,
    batch_service_time,
    naive_service_time,
    run_loadgen,
    run_loadgen_wall,
)
from repro.serve.requests import (
    ReadRequest,
    ReadResult,
    RequestKind,
    ResultStatus,
    TierReading,
)
from repro.serve.scheduler import BatchPolicy, MicroBatcher, PendingResult
from repro.serve.service import (
    DEFAULT_ACCESS_LOG_PATTERN,
    SensorReadService,
    ServeConfig,
    ServiceStats,
    build_stack_sensors,
    resolve_access_log_path,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionPolicy",
    "AdmissionStats",
    "BatchPolicy",
    "CacheStats",
    "CostModel",
    "DEFAULT_ACCESS_LOG_PATTERN",
    "LoadgenConfig",
    "LoadgenReport",
    "MicroBatcher",
    "PendingResult",
    "QueueFullError",
    "ReadEngine",
    "ReadRequest",
    "ReadResult",
    "RequestKind",
    "RequestMix",
    "ResultCache",
    "ResultStatus",
    "SensorReadService",
    "ServeConfig",
    "ServiceClosedError",
    "ServiceStats",
    "TierReading",
    "batch_service_time",
    "build_stack_sensors",
    "naive_service_time",
    "resolve_access_log_path",
    "run_loadgen",
    "run_loadgen_wall",
]
