"""The batch evaluation engine behind the serving queue.

``ReadEngine.execute`` takes a coalesced batch of heterogeneous
:class:`~repro.serve.requests.ReadRequest` objects and answers all of
them with **one** vectorised :func:`repro.batch.read_paired` call: each
request expands into unit conversions ``(tier, temperature, supply)``,
cache hits are peeled off, the remaining misses become one flat
:class:`~repro.batch.EnvironmentGrid`, and the results are reassembled
per request — instead of N scalar ``PTSensor.read()`` calls.

The engine is synchronous and clock-agnostic (``now`` is an argument),
which is why the same instance serves both the threaded
:class:`~repro.serve.service.SensorReadService` (real clock) and the
deterministic virtual-time load generator.

Fault handling mirrors the scalar seams: an active
:class:`~repro.faults.FaultPlan` perturbs each unit conversion's
environment before the oscillators see it and each published reading
after calibration, and a faulted tier *degrades* its responses
(``quality="degraded"``, cache bypassed) — the server never crashes and
never caches faulted data.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import Counter as TallyCounter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.telemetry.stream import HUB as _STREAM_HUB
from repro.batch.paired import read_paired
from repro.core.sensor import PTSensor
from repro.faults.runtime import active_injector
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.requests import (
    ReadRequest,
    ReadResult,
    RequestKind,
    ResultStatus,
    TierReading,
)
from repro.units import celsius_to_kelvin

_REQUESTS = telemetry.counter(
    "serve.requests", unit="requests", help="Requests answered by the serving engine"
)
_CONVERSIONS = telemetry.counter(
    "serve.conversions",
    unit="conversions",
    help="Unit conversions evaluated through the coalesced batch path",
)
_BATCHES = telemetry.counter(
    "serve.batches", unit="batches", help="Coalesced batches evaluated"
)
_BATCH_SIZE = telemetry.histogram(
    "serve.batch_size", unit="requests", help="Requests coalesced per batch"
)
_DEGRADED = telemetry.counter(
    "serve.degraded",
    unit="requests",
    help="Requests answered with degraded quality (faulted tier or "
    "non-converged calibration)",
)


class _Job:
    """One unit conversion a request expands into."""

    __slots__ = ("request_index", "tier", "temp_c", "vdd", "cache_key", "reading")

    def __init__(self, request_index: int, tier: int, temp_c: float, vdd: float):
        self.request_index = request_index
        self.tier = tier
        self.temp_c = temp_c
        self.vdd = vdd
        self.cache_key: Optional[Tuple] = None
        self.reading: Optional[TierReading] = None


class ReadEngine:
    """Coalesced evaluation of request batches against one sensor stack.

    Args:
        sensors: ``tier -> PTSensor`` of the served stack; one uniform
            design (validated via :meth:`PTSensor.design_key`).
        cache: Result cache, or ``None`` to serve every request cold.
        admission: Controller that accounts deadline shedding; ``None``
            disables shedding accounting (requests are still shed).
        deterministic: Run conversions with deterministic counter phases
            (the serving default).  Caching requires it — a noisy
            conversion consumes private rng state and must never be
            replayed — so with ``deterministic=False`` the cache is
            bypassed entirely.
    """

    def __init__(
        self,
        sensors: Mapping[int, PTSensor],
        cache: Optional[ResultCache] = None,
        admission: Optional[AdmissionController] = None,
        deterministic: bool = True,
    ) -> None:
        if not sensors:
            raise ValueError("need at least one tier sensor")
        self.sensors: Dict[int, PTSensor] = dict(sensors)
        self.tiers: Tuple[int, ...] = tuple(sorted(self.sensors))
        reference = self.sensors[self.tiers[0]]
        reference_key = reference.design_key()
        for sensor in self.sensors.values():
            if sensor.design_key() != reference_key:
                raise ValueError(
                    "the serving engine coalesces one design; got mixed "
                    "sensor designs across tiers"
                )
        self.nominal_vdd = reference.technology.vdd
        self.cache = cache
        self.admission = admission
        self.deterministic = deterministic
        self._lock = threading.Lock()
        self._batches = 0
        self._batch_sizes: TallyCounter = TallyCounter()

    # ------------------------------------------------------------- expansion

    def _expand(self, request: ReadRequest) -> List[Tuple[int, float]]:
        """The ``(tier, temp_c)`` unit conversions of one request."""
        if request.kind in (RequestKind.POINT_READ, RequestKind.VT_EXTRACT):
            return [(request.tier, request.temp_c)]
        if request.kind is RequestKind.TIER_SCAN:
            tiers = self.tiers if request.tiers is None else request.tiers
            return [(tier, request.temp_c) for tier in tiers]
        # STACK_POLL: every tier at its own temperature.
        temps = request.temps_c or {}
        return [(tier, temps.get(tier, request.temp_c)) for tier in self.tiers]

    # ------------------------------------------------------------ evaluation

    def execute(
        self, requests: Sequence[ReadRequest], now: float = 0.0
    ) -> List[ReadResult]:
        """Answer a coalesced batch of requests in one vectorised pass.

        Args:
            requests: The batch, in arrival order (rng consumption order
                matches a sequential scalar loop over the same order).
            now: Current service-clock time, used for deadline shedding
                and cache TTL accounting.

        Returns:
            One :class:`ReadResult` per request, aligned with the input.
            Malformed requests (unknown tier) come back as ``ERROR``
            results; the batch's healthy requests are still served.
        """
        batch_size = len(requests)
        with telemetry.span("serve.batch", requests=batch_size) as trace:
            results: List[Optional[ReadResult]] = [None] * batch_size
            jobs: List[_Job] = []
            shed_count = 0

            injector = active_injector()
            shed_enabled = (
                self.admission is None or self.admission.policy.shed_expired
            )
            for index, request in enumerate(requests):
                if (
                    shed_enabled
                    and request.deadline_s is not None
                    and now > request.deadline_s
                ):
                    results[index] = ReadResult(
                        request=request,
                        status=ResultStatus.SHED,
                        batch_size=batch_size,
                    )
                    shed_count += 1
                    continue
                units = self._expand(request)
                unknown = [tier for tier, _ in units if tier not in self.sensors]
                if unknown:
                    results[index] = ReadResult(
                        request=request,
                        status=ResultStatus.ERROR,
                        batch_size=batch_size,
                        error=f"unknown tier(s) {unknown}; stack has {list(self.tiers)}",
                    )
                    continue
                vdd = self.nominal_vdd if request.vdd is None else request.vdd
                for tier, temp_c in units:
                    jobs.append(_Job(index, tier, temp_c, vdd))

            if shed_count and self.admission is not None:
                self.admission.record_shed(shed_count)

            # Cache peel-off (deterministic mode only; faulted tiers bypass
            # the cache in both directions so faults are never masked by —
            # or leaked into — cached data).
            misses: List[_Job] = []
            for job in jobs:
                request = requests[job.request_index]
                faulted = injector is not None and injector.faulted_now(job.tier)
                if self.cache is not None and self.deterministic and not faulted:
                    job.cache_key = self.cache.key(
                        job.tier, job.temp_c, job.vdd, request.assume_vdd
                    )
                    cached = self.cache.get(job.cache_key, now)
                    if cached is not None:
                        job.reading = dataclasses.replace(cached, cache_hit=True)
                        continue
                misses.append(job)

            if misses:
                self._evaluate(misses, requests, injector, now)

            self._assemble(requests, results, jobs, batch_size)

            # In-process streaming seam: while anything subscribes to the
            # process-wide hub (examples, notebooks, an embedded monitor),
            # publish each served reading.  One attribute read when idle.
            if _STREAM_HUB.active:
                for result in results:
                    if result is not None and result.readings:
                        _STREAM_HUB.publish("read", {
                            "source": "serve",
                            "status": result.status.value,
                            "temps_c": {
                                str(r.tier): r.temperature_c
                                for r in result.readings
                            },
                        })

            with self._lock:
                self._batches += 1
                self._batch_sizes[batch_size] += 1
            _REQUESTS.inc(batch_size)
            _CONVERSIONS.inc(len(misses))
            _BATCHES.inc()
            _BATCH_SIZE.observe(batch_size)
            trace.set(
                conversions=len(misses),
                cache_hits=len(jobs) - len(misses),
                shed=shed_count,
            )
            return results  # type: ignore[return-value]

    def _evaluate(
        self,
        misses: List[_Job],
        requests: Sequence[ReadRequest],
        injector,
        now: float,
    ) -> None:
        """Run the cache misses as one flat vectorised conversion batch."""
        sensors = [self.sensors[job.tier] for job in misses]
        temps_k = np.empty(len(misses))
        vdds = np.empty(len(misses))
        for i, job in enumerate(misses):
            env = sensors[i].physical_environment(
                celsius_to_kelvin(job.temp_c), job.vdd
            )
            if injector is not None:
                env = injector.perturb_environment(job.tier, env)
            temps_k[i] = env.temp_k
            vdds[i] = env.vdd

        # One assume_vdd per batch segment: split lazily only when mixed.
        assume_vdds = {requests[job.request_index].assume_vdd for job in misses}
        if len(assume_vdds) == 1:
            segments = [(misses, temps_k, vdds, assume_vdds.pop())]
        else:
            segments = []
            for assume_vdd in sorted(
                assume_vdds, key=lambda v: (v is not None, v)
            ):
                picks = [
                    i
                    for i, job in enumerate(misses)
                    if requests[job.request_index].assume_vdd == assume_vdd
                ]
                segments.append(
                    (
                        [misses[i] for i in picks],
                        temps_k[picks],
                        vdds[picks],
                        assume_vdd,
                    )
                )

        for segment_jobs, segment_temps, segment_vdds, assume_vdd in segments:
            readings = read_paired(
                [self.sensors[job.tier] for job in segment_jobs],
                segment_temps,
                segment_vdds,
                deterministic=self.deterministic,
                assume_vdd=assume_vdd,
            )
            energy_total = readings.energy.total
            for i, job in enumerate(segment_jobs):
                converged = bool(readings.converged[i])
                reading = TierReading(
                    tier=job.tier,
                    temperature_c=float(readings.temperature_c[i]),
                    dvtn=float(readings.dvtn[i]),
                    dvtp=float(readings.dvtp[i]),
                    converged=converged,
                    quality="ok",
                    cache_hit=False,
                    conversion_time=float(readings.conversion_time[i]),
                    energy_j=float(energy_total[i]),
                )
                if injector is not None:
                    reading = injector.perturb_reading(job.tier, reading)
                    if injector.sensor_faulted_now(job.tier):
                        reading = _degrade(reading)
                if not converged:
                    reading = _degrade(reading)
                job.reading = reading
                if job.cache_key is not None and reading.quality == "ok":
                    self.cache.put(job.cache_key, reading, now)

    def _assemble(
        self,
        requests: Sequence[ReadRequest],
        results: List[Optional[ReadResult]],
        jobs: List[_Job],
        batch_size: int,
    ) -> None:
        """Fold per-job readings back into per-request results."""
        per_request: Dict[int, List[TierReading]] = {}
        for job in jobs:
            per_request.setdefault(job.request_index, []).append(job.reading)
        degraded_requests = 0
        for index, request in enumerate(requests):
            if results[index] is not None:
                continue
            readings = tuple(per_request.get(index, []))
            cache_hits = sum(1 for r in readings if r.cache_hit)
            degraded = any(r.quality != "ok" for r in readings)
            if degraded:
                degraded_requests += 1
            results[index] = ReadResult(
                request=request,
                status=ResultStatus.DEGRADED if degraded else ResultStatus.OK,
                readings=readings,
                batch_size=batch_size,
                cache_hits=cache_hits,
            )
        if degraded_requests:
            _DEGRADED.inc(degraded_requests)

    # ------------------------------------------------------------ accounting

    def batch_size_histogram(self) -> Dict[int, int]:
        """``batch size -> batches`` tally since construction."""
        with self._lock:
            return dict(self._batch_sizes)

    @property
    def batches(self) -> int:
        """Total coalesced batches evaluated."""
        with self._lock:
            return self._batches


def _degrade(reading: TierReading) -> TierReading:
    return dataclasses.replace(reading, quality="degraded")
