"""Conversion sequencing: which oscillator is powered when.

The macro owns a single counter datapath, so the three rings are measured
sequentially and each ring is power-gated outside its own phase — that
gating is what makes the energy-per-conversion figure small and
window-proportional.  The sequencer produces the phase schedule for one
conversion; the energy model integrates power over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import SensorConfig


@dataclass(frozen=True)
class ConversionPhase:
    """One phase of the conversion schedule.

    Attributes:
        name: Ring being measured (``"PSRO-N"``, ``"PSRO-P"``, ``"TSRO"``).
        start: Phase start relative to conversion start, seconds.
        duration: Phase duration, seconds.
    """

    name: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Phase end relative to conversion start, seconds."""
        return self.start + self.duration


@dataclass(frozen=True)
class ConversionSequencer:
    """Builds the phase schedule of one conversion."""

    config: SensorConfig

    def schedule(self, tsro_frequency: float) -> List[ConversionPhase]:
        """Phase list for one conversion given the current TSRO speed.

        The TSRO phase length is data-dependent (period timing), which is
        why conversion time — unlike energy — varies with temperature.
        """
        if tsro_frequency <= 0.0:
            raise ValueError("tsro_frequency must be positive")
        window = self.config.psro_window
        tsro_time = self.config.tsro_periods / tsro_frequency
        return [
            ConversionPhase("PSRO-N", 0.0, window),
            ConversionPhase("PSRO-P", window, window),
            ConversionPhase("TSRO", 2.0 * window, tsro_time),
        ]

    def conversion_time(self, tsro_frequency: float) -> float:
        """Total conversion time in seconds."""
        return self.schedule(tsro_frequency)[-1].end

    def conversion_rate(self, tsro_frequency: float) -> float:
        """Back-to-back conversion rate in samples per second."""
        return 1.0 / self.conversion_time(tsro_frequency)
