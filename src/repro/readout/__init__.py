"""Frequency-to-digital read-out: timers, energy accounting, register map.

This package models the digital half of the sensor macro:

* ``counter`` — the period timer used for the slow temperature ring (the
  fast rings use :class:`repro.circuits.WindowCounter` directly);
* ``sequencer`` — the conversion schedule (which ring is powered when);
* ``energy`` — the per-conversion energy breakdown behind the paper's
  367.5 pJ/conversion headline;
* ``interface`` — the sensor's register frame as shipped over the TSV bus.
"""

from repro.readout.counter import PeriodTimer
from repro.readout.energy import ConversionEnergy, conversion_energy
from repro.readout.interface import SensorFrame, decode_frame, encode_frame
from repro.readout.selftest import SelfTestReport, SensorSelfTest
from repro.readout.sequencer import ConversionPhase, ConversionSequencer

__all__ = [
    "ConversionEnergy",
    "ConversionPhase",
    "ConversionSequencer",
    "PeriodTimer",
    "SelfTestReport",
    "SensorFrame",
    "SensorSelfTest",
    "conversion_energy",
    "decode_frame",
    "encode_frame",
]
