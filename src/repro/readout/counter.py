"""Period timer: measuring a slow oscillator against the reference clock.

The temperature ring spans a ~30x frequency range between -40 and 125 degC.
Edge counting in a fixed window would starve at the cold end (a handful of
counts) and overflow at the hot end.  Instead the sensor times a fixed
number of TSRO periods with the fast system reference clock:

    count = round(K / f_tsro * f_ref)        (plus +/-1 quantisation)

so the *relative* resolution ``1 / count`` improves exactly where the TSRO
is slow, keeping the temperature LSB roughly flat across the range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class PeriodTimer:
    """Times ``periods`` cycles of a target oscillator with a reference clock.

    Attributes:
        periods: Number of target periods per measurement.
        ref_clock_hz: Reference clock frequency in hertz.
        bits: Width of the reference-clock counter; measurements that would
            overflow saturate at the maximum count (hardware sticky-overflow
            behaviour), which callers can detect with :meth:`saturated`.
    """

    periods: int
    ref_clock_hz: float
    bits: int = 14

    def __post_init__(self) -> None:
        if self.periods < 1:
            raise ValueError("periods must be >= 1")
        if self.ref_clock_hz <= 0.0:
            raise ValueError("ref_clock_hz must be positive")
        if self.bits < 1:
            raise ValueError("counter needs at least one bit")

    @property
    def max_count(self) -> int:
        """Largest representable reference count."""
        return (1 << self.bits) - 1

    def count(self, frequency: float, rng: Optional[np.random.Generator] = None) -> int:
        """Reference-clock ticks while the target completes ``periods`` cycles.

        Args:
            frequency: Target oscillator frequency in hertz.
            rng: Source of the start-phase randomness between the two clock
                domains; ``None`` gives the deterministic mid-phase count.
        """
        if frequency <= 0.0:
            raise ValueError("frequency must be positive")
        interval = self.periods / frequency
        phase = 0.5 if rng is None else float(rng.uniform(0.0, 1.0))
        raw = int(math.floor(interval * self.ref_clock_hz + phase))
        return min(raw, self.max_count)

    def saturated(self, count: int) -> bool:
        """Whether a count hit the sticky-overflow ceiling."""
        return count >= self.max_count

    def frequency_from_count(self, count: int) -> float:
        """Invert a reference count back to a target-frequency estimate."""
        if count < 1:
            raise ValueError("count must be >= 1 to invert")
        return self.periods * self.ref_clock_hz / count

    def measurement_time(self, frequency: float) -> float:
        """Wall-clock duration of one measurement in seconds."""
        if frequency <= 0.0:
            raise ValueError("frequency must be positive")
        return self.periods / frequency

    def relative_resolution(self, frequency: float) -> float:
        """One-count relative frequency resolution at ``frequency``."""
        count = self.count(frequency)
        if count < 1:
            return math.inf
        return 1.0 / count
