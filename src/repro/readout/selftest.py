"""Power-on self-test (BIST) of the sensor macro.

A monitoring network must not trust a broken sensor: a stuck counter or a
dead ring produces confidently wrong temperatures.  The self-test runs a
set of structural checks that need no external reference — only the
design-time expectations the calibration ROM already encodes:

* every ring oscillates (non-zero, non-stuck counts);
* every count lies inside the window the characterised (corner + range)
  box allows;
* the ring *ratios* are mutually plausible — the V_tn/V_tp correlation
  bounds how far a real die can skew N against P, so a ratio outside the
  correlated envelope indicates a fault even when both rings are
  individually in-window;
* back-to-back conversions agree within the quantisation budget (a
  metastable counter bit shows up as wild repeat-to-repeat jumps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.circuits.oscillator_bank import BankFrequencies
from repro.core.sensing_model import SensingModel
from repro.units import celsius_to_kelvin

# Corner box used for the expected-window check, volts.  Slightly wider
# than the characterised box so a legal extreme die never fails BIST.
_BIST_VT_MARGIN = 1.1
# Allowed repeat-to-repeat relative jump between back-to-back conversions.
_REPEAT_TOLERANCE = 0.02
# Allowed deviation of the PSRO-N/PSRO-P ratio from the corner envelope.
_RATIO_MARGIN = 1.15
# Largest plausible |dV_tn - dV_tp| skew of a real die, volts.  The global
# shifts are positively correlated (shared gate stack/litho causes), so a
# die skewed far beyond the FS/SF sign-off corners (+/-40 mV each way) is
# manufacturable-implausible even though each threshold alone is in range;
# the ratio check uses this prior (set to double the corner skew).
_MAX_PLAUSIBLE_SKEW = 0.080


@dataclass(frozen=True)
class SelfTestReport:
    """Result of one power-on self-test.

    Attributes:
        passed: Overall verdict.
        failures: Human-readable failure descriptions (empty when passed).
        checks_run: Number of individual checks executed.
    """

    passed: bool
    failures: List[str]
    checks_run: int


class SensorSelfTest:
    """Structural BIST built on the design-time sensing model.

    Args:
        model: The design-time model (provides the expected windows).
    """

    def __init__(self, model: SensingModel) -> None:
        self.model = model
        box = model.vt_box * _BIST_VT_MARGIN
        t_lo = celsius_to_kelvin(model.config.temp_min_c)
        t_hi = celsius_to_kelvin(model.config.temp_max_c)

        # Expected frequency windows over the full legal operating box.
        corners = [(-box, -box), (-box, box), (box, -box), (box, box), (0.0, 0.0)]
        f_n, f_p, f_t = [], [], []
        for dvtn, dvtp in corners:
            for temp_k in (t_lo, t_hi):
                fn, fp = model.process_frequencies(dvtn, dvtp, temp_k)
                f_n.append(fn)
                f_p.append(fp)
                f_t.append(model.tsro_frequency(dvtn, dvtp, temp_k))
        self._window_n = (min(f_n) * 0.9, max(f_n) * 1.1)
        self._window_p = (min(f_p) * 0.9, max(f_p) * 1.1)
        self._window_t = (min(f_t) * 0.5, max(f_t) * 2.0)

        # Ratio envelope over *plausible* dies only: thresholds inside the
        # box AND N-vs-P skew inside the correlated-manufacturing prior.
        ratios = []
        skew = _MAX_PLAUSIBLE_SKEW
        for dvtn in (-box, 0.0, box):
            for dvtp in (dvtn - skew, dvtn, dvtn + skew):
                dvtp = max(-box, min(box, dvtp))
                for temp_k in (t_lo, t_hi):
                    fn, fp = model.process_frequencies(dvtn, dvtp, temp_k)
                    ratios.append(fn / fp)
        self._ratio_window = (
            min(ratios) / _RATIO_MARGIN,
            max(ratios) * _RATIO_MARGIN,
        )

    def _check_window(
        self, label: str, value: float, window: Tuple[float, float], failures: List[str]
    ) -> None:
        lo, hi = window
        if not lo <= value <= hi:
            failures.append(
                f"{label} = {value / 1e6:.3f} MHz outside expected "
                f"[{lo / 1e6:.3f}, {hi / 1e6:.3f}] MHz"
            )

    def run(
        self,
        first: BankFrequencies,
        repeat: Optional[BankFrequencies] = None,
    ) -> SelfTestReport:
        """Judge one (optionally two back-to-back) conversion measurements.

        Args:
            first: Measured ring frequencies (as reconstructed from counts).
            repeat: Optional second measurement at the same condition for
                the repeatability check.

        Returns:
            The :class:`SelfTestReport`.
        """
        failures: List[str] = []
        checks = 0

        # Liveness: nothing may be stuck at (or effectively at) zero.
        for label, value in (
            ("PSRO-N", first.psro_n),
            ("PSRO-P", first.psro_p),
            ("TSRO", first.tsro),
        ):
            checks += 1
            if value <= 1e3:
                failures.append(f"{label} is not oscillating (counts ~0)")

        # Window checks against the characterised envelope.
        checks += 3
        self._check_window("PSRO-N", first.psro_n, self._window_n, failures)
        self._check_window("PSRO-P", first.psro_p, self._window_p, failures)
        self._check_window("TSRO", first.tsro, self._window_t, failures)

        # Cross-ring consistency: the N/P ratio has a corner envelope.
        checks += 1
        if first.psro_p > 0.0:
            ratio = first.psro_n / first.psro_p
            lo, hi = self._ratio_window
            if not lo <= ratio <= hi:
                failures.append(
                    f"PSRO-N/PSRO-P ratio {ratio:.3f} outside corner envelope "
                    f"[{lo:.3f}, {hi:.3f}]"
                )

        # Repeatability: back-to-back conversions must agree.
        if repeat is not None:
            for label, a, b in (
                ("PSRO-N", first.psro_n, repeat.psro_n),
                ("PSRO-P", first.psro_p, repeat.psro_p),
                ("TSRO", first.tsro, repeat.tsro),
            ):
                checks += 1
                if a > 0.0 and abs(a - b) / a > _REPEAT_TOLERANCE:
                    failures.append(
                        f"{label} repeat disagreement {abs(a - b) / a * 100:.1f}% "
                        f"(> {_REPEAT_TOLERANCE * 100:.0f}%)"
                    )

        return SelfTestReport(
            passed=not failures, failures=failures, checks_run=checks
        )
