"""Per-conversion energy accounting.

The paper's headline efficiency figure is **367.5 pJ per conversion**.  The
model reproduces it structurally: each ring burns dynamic power only during
its own measurement phase (power gating), the counters burn toggle energy
proportional to the accumulated counts, and a fixed digital overhead covers
the calibration FSM and register file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.digital import ripple_counter_energy
from repro.circuits.oscillator_bank import BankFrequencies, OscillatorBank
from repro.circuits.ring_oscillator import Environment
from repro.config import SensorConfig


@dataclass(frozen=True)
class ConversionEnergy:
    """Energy breakdown of one conversion, all fields in joules."""

    psro_n: float
    psro_p: float
    tsro: float
    counters: float
    digital: float

    @property
    def total(self) -> float:
        """Total energy of the conversion."""
        return self.psro_n + self.psro_p + self.tsro + self.counters + self.digital

    def as_rows(self):
        """(label, joules) rows for reporting, largest first."""
        rows = [
            ("PSRO-N ring", self.psro_n),
            ("PSRO-P ring", self.psro_p),
            ("TSRO ring", self.tsro),
            ("counters", self.counters),
            ("digital/FSM", self.digital),
        ]
        return sorted(rows, key=lambda row: row[1], reverse=True)


def conversion_energy(
    bank: OscillatorBank, env: Environment, config: SensorConfig
) -> ConversionEnergy:
    """Energy of one full PT conversion under ``env``.

    Args:
        bank: The sensor site's oscillator bank.
        env: Physical operating environment during the conversion.
        config: Sensor design parameters (windows, overheads).

    Returns:
        The per-block energy breakdown.
    """
    frequencies = BankFrequencies(
        psro_n=bank.psro_n.frequency(env),
        psro_p=bank.psro_p.frequency(env),
        tsro=bank.tsro.frequency(env),
        reference=0.0,  # the reference ring is not powered during a conversion
    )
    return conversion_energy_from_frequencies(bank, env, config, frequencies)


def conversion_energy_from_frequencies(
    bank: OscillatorBank,
    env: Environment,
    config: SensorConfig,
    frequencies: BankFrequencies,
) -> ConversionEnergy:
    """Energy of one conversion given already-evaluated ring frequencies.

    Splitting the frequency evaluation from the energy bookkeeping lets
    callers that already hold the frequencies — window sweeps re-costing one
    operating point under many configs, or the batch engine — avoid
    re-walking the device model.
    """
    f_n = frequencies.psro_n
    f_p = frequencies.psro_p
    f_t = frequencies.tsro

    window = config.psro_window
    tsro_time = config.tsro_periods / f_t

    # energy_for_window = power * window with power = k * N * C * V^2 * f.
    e_psro_n = bank.psro_n.power_from_frequency(env, f_n) * window
    e_psro_p = bank.psro_p.power_from_frequency(env, f_p) * window
    e_tsro = bank.tsro.power_from_frequency(env, f_t) * tsro_time

    counts_n = f_n * window
    counts_p = f_p * window
    counts_ref = tsro_time * config.ref_clock_hz
    e_counters = (
        ripple_counter_energy(int(counts_n), env.vdd)
        + ripple_counter_energy(int(counts_p), env.vdd)
        + ripple_counter_energy(int(counts_ref), env.vdd)
    )

    return ConversionEnergy(
        psro_n=e_psro_n,
        psro_p=e_psro_p,
        tsro=e_tsro,
        counters=e_counters,
        digital=config.digital_overhead_energy,
    )
