"""The sensor's register frame as transported over the TSV bus.

Each sensor site publishes one fixed-width frame per conversion.  The frame
layout mirrors a realistic register map: identification, three measurement
codes, a status nibble and even parity.  The TSV bus substrate
(:mod:`repro.tsv.bus`) moves these frames between tiers and may corrupt
them; the parity bit is what lets the aggregator detect that.

Frame layout, MSB first (40 bits):

    [39:34] die_id     (6)
    [33:22] vtn_code   (12)  signed millivolt offset, two's complement
    [21:10] vtp_code   (12)  signed millivolt offset, two's complement
    [9:2]   temp_code  (8)   degrees Celsius + 40, saturating
    [1]     valid      (1)
    [0]     parity     (1)   even parity over bits [39:1]
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

FRAME_BITS = 40
_DIE_BITS = 6
_VT_BITS = 12
_TEMP_BITS = 8

# Scale: V_t codes are in tenths of a millivolt to preserve the sensor's
# sub-millivolt resolution across the digital interface.
VT_CODE_LSB_V = 1e-4
TEMP_CODE_OFFSET_C = 40.0


def _warn_renamed(old: str, new: str) -> None:
    warnings.warn(
        f"SensorFrame.{old} is deprecated; use SensorFrame.{new} "
        "(one naming scheme for threshold shifts across the stack, "
        "matching SensorReading.dvtn/dvtp)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True, init=False)
class SensorFrame:
    """One decoded sensor frame.

    Attributes:
        die_id: Tier identifier (0-63).
        dvtn: Extracted NMOS threshold shift in volts.
        dvtp: Extracted PMOS threshold-magnitude shift in volts.
        temperature_c: Temperature reading in Celsius.
        valid: Whether the sensor marked the conversion valid.

    The threshold-shift fields were named ``vtn_shift``/``vtp_shift``
    before the stack converged on the ``dvtn``/``dvtp`` scheme used by
    :class:`repro.core.sensor.SensorReading` and
    :class:`repro.circuits.ring_oscillator.Environment`; the old names
    still work — as constructor keywords and read-only properties — but
    emit :class:`DeprecationWarning`.
    """

    die_id: int
    dvtn: float
    dvtp: float
    temperature_c: float
    valid: bool = True

    def __init__(
        self,
        die_id: int,
        dvtn: float = None,
        dvtp: float = None,
        temperature_c: float = 0.0,
        valid: bool = True,
        *,
        vtn_shift: float = None,
        vtp_shift: float = None,
    ) -> None:
        if vtn_shift is not None:
            if dvtn is not None:
                raise TypeError("pass dvtn or vtn_shift, not both")
            _warn_renamed("vtn_shift", "dvtn")
            dvtn = vtn_shift
        if vtp_shift is not None:
            if dvtp is not None:
                raise TypeError("pass dvtp or vtp_shift, not both")
            _warn_renamed("vtp_shift", "dvtp")
            dvtp = vtp_shift
        if dvtn is None or dvtp is None:
            raise TypeError("SensorFrame requires dvtn and dvtp")
        object.__setattr__(self, "die_id", die_id)
        object.__setattr__(self, "dvtn", float(dvtn))
        object.__setattr__(self, "dvtp", float(dvtp))
        object.__setattr__(self, "temperature_c", float(temperature_c))
        object.__setattr__(self, "valid", valid)

    @property
    def vtn_shift(self) -> float:
        """Deprecated alias of :attr:`dvtn`."""
        _warn_renamed("vtn_shift", "dvtn")
        return self.dvtn

    @property
    def vtp_shift(self) -> float:
        """Deprecated alias of :attr:`dvtp`."""
        _warn_renamed("vtp_shift", "dvtp")
        return self.dvtp


class FrameError(ValueError):
    """A frame failed structural or parity checks."""


def _to_twos_complement(value: int, bits: int) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    clamped = max(lo, min(hi, value))
    return clamped & ((1 << bits) - 1)

def _from_twos_complement(raw: int, bits: int) -> int:
    if raw >= 1 << (bits - 1):
        return raw - (1 << bits)
    return raw


def _parity(bits: int) -> int:
    return bin(bits).count("1") & 1


def encode_frame(frame: SensorFrame) -> int:
    """Encode a :class:`SensorFrame` into its 40-bit wire representation."""
    if not 0 <= frame.die_id < (1 << _DIE_BITS):
        raise FrameError(f"die_id {frame.die_id} does not fit in {_DIE_BITS} bits")
    vtn_code = _to_twos_complement(round(frame.dvtn / VT_CODE_LSB_V), _VT_BITS)
    vtp_code = _to_twos_complement(round(frame.dvtp / VT_CODE_LSB_V), _VT_BITS)
    temp_raw = round(frame.temperature_c + TEMP_CODE_OFFSET_C)
    temp_code = max(0, min((1 << _TEMP_BITS) - 1, temp_raw))

    word = frame.die_id
    word = (word << _VT_BITS) | vtn_code
    word = (word << _VT_BITS) | vtp_code
    word = (word << _TEMP_BITS) | temp_code
    word = (word << 1) | (1 if frame.valid else 0)
    word = (word << 1) | _parity(word)
    return word


def decode_frame(word: int) -> SensorFrame:
    """Decode a 40-bit wire word, raising :class:`FrameError` on corruption."""
    if not 0 <= word < (1 << FRAME_BITS):
        raise FrameError(f"word does not fit in {FRAME_BITS} bits")
    parity = word & 1
    payload = word >> 1
    if _parity(payload) != parity:
        raise FrameError("parity mismatch: frame corrupted in transit")

    valid = bool(payload & 1)
    payload >>= 1
    temp_code = payload & ((1 << _TEMP_BITS) - 1)
    payload >>= _TEMP_BITS
    vtp_code = payload & ((1 << _VT_BITS) - 1)
    payload >>= _VT_BITS
    vtn_code = payload & ((1 << _VT_BITS) - 1)
    payload >>= _VT_BITS
    die_id = payload

    return SensorFrame(
        die_id=die_id,
        dvtn=_from_twos_complement(vtn_code, _VT_BITS) * VT_CODE_LSB_V,
        dvtp=_from_twos_complement(vtp_code, _VT_BITS) * VT_CODE_LSB_V,
        temperature_c=temp_code - TEMP_CODE_OFFSET_C,
        valid=valid,
    )
