"""Adaptive body bias (ABB): actuating on the sensor's process read-out.

A process monitor is only half a loop; the classic actuator it drives is
the body-bias generator.  Back-biasing a well shifts the threshold through
the body effect:

    dV_t = -k_body * V_bb       (forward bias lowers V_t, reverse raises)

so a die whose sensor reports dV_tn = +20 mV can apply ~+0.13 V of forward
body bias and pull itself back to the typical point — collapsing the
performance/leakage spread of the whole population.  This module models
the actuator (with its range and DAC-quantised steps) and the per-die
compensation policy; experiment R-E7 measures the spread collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class BodyBiasGenerator:
    """One tier's body-bias actuator.

    Attributes:
        k_body: Threshold sensitivity to body bias, volts per volt
            (0.1-0.2 in partially-depleted bulk at 65 nm).
        vbb_range: Maximum bias magnitude either direction, volts (junction
            leakage caps forward bias near 0.4-0.5 V).
        dac_steps: Number of programmable steps across the full range
            (the bias DAC's resolution).
    """

    k_body: float = 0.15
    vbb_range: float = 0.45
    dac_steps: int = 32

    def __post_init__(self) -> None:
        if self.k_body <= 0.0:
            raise ValueError("k_body must be positive")
        if self.vbb_range <= 0.0:
            raise ValueError("vbb_range must be positive")
        if self.dac_steps < 2:
            raise ValueError("the bias DAC needs at least two steps")

    @property
    def dac_lsb(self) -> float:
        """Bias step size in volts."""
        return 2.0 * self.vbb_range / (self.dac_steps - 1)

    def quantise(self, vbb: float) -> float:
        """Clamp and quantise a requested bias to the DAC grid."""
        clamped = max(-self.vbb_range, min(self.vbb_range, vbb))
        steps = round((clamped + self.vbb_range) / self.dac_lsb)
        return -self.vbb_range + steps * self.dac_lsb

    def bias_for_shift(self, target_dvt: float) -> float:
        """DAC-quantised bias producing (approximately) ``target_dvt``."""
        return self.quantise(-target_dvt / self.k_body)

    def vt_shift(self, vbb: float) -> float:
        """Threshold shift produced by a bias, volts."""
        if abs(vbb) > self.vbb_range + 1e-12:
            raise ValueError("bias outside the generator's range")
        return -self.k_body * vbb


def compensate_die(
    generator: BodyBiasGenerator, measured_dvtn: float, measured_dvtp: float
) -> Tuple[float, float, float, float]:
    """Choose per-well biases that cancel a die's measured process point.

    Args:
        generator: The bias actuator (shared spec for both wells here).
        measured_dvtn: Sensor-extracted NMOS shift, volts.
        measured_dvtp: Sensor-extracted PMOS shift, volts.

    Returns:
        ``(vbb_n, vbb_p, residual_dvtn, residual_dvtp)`` — the applied
        biases and the post-compensation threshold shifts (nonzero because
        of DAC quantisation and range clipping).
    """
    vbb_n = generator.bias_for_shift(-measured_dvtn)
    vbb_p = generator.bias_for_shift(-measured_dvtp)
    residual_n = measured_dvtn + generator.vt_shift(vbb_n)
    residual_p = measured_dvtp + generator.vt_shift(vbb_p)
    return vbb_n, vbb_p, residual_n, residual_p
