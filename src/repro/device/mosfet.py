"""Analytic MOSFET drain-current model.

The model is an EKV-style charge-based interpolation that is smooth and
accurate across weak, moderate and strong inversion — exactly the operating
regions the sensor's ring oscillators span (the temperature-sensitive RO is
biased in weak inversion, the process-sensitive ROs in strong inversion).

The forward/reverse normalised currents are

    i_f = ln^2(1 + exp((V_P - V_S) / (2 U_T)))
    i_r = ln^2(1 + exp((V_P - V_D) / (2 U_T)))

with the pinch-off voltage ``V_P = (V_G - V_T) / n`` and the specific current

    I_spec = 2 n mu(T) C_ox (W / L) U_T^2

so that ``I_D = I_spec (i_f - i_r)``, reduced by a velocity-saturation factor
``1 / (1 + lambda_c sqrt(i_f))`` that captures the alpha-power-law behaviour
of short-channel devices.

Temperature enters through three first-order laws:

* ``U_T = k_B T / q`` (thermal voltage),
* ``V_T(T) = V_T0 + (dV_T/dT)(T - T0)`` (threshold roll-off, negative),
* ``mu(T) = mu0 (T / T0)^{-m}`` (phonon-limited mobility).

The opposing signs of the V_T and mobility effects create the
zero-temperature-coefficient (ZTC) bias point that the paper's
process-sensitive ring oscillators exploit.

All voltages are magnitudes referenced to the source, so the same code
serves NMOS and PMOS; callers flip signs at the circuit level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.units import thermal_voltage

ArrayLike = "float | np.ndarray"


@dataclass(frozen=True)
class MosfetParams:
    """Parameters of a single MOSFET instance.

    Attributes:
        polarity: ``"n"`` or ``"p"``; informational (the model works on
            voltage magnitudes) but used by circuit builders.
        vt0: Threshold-voltage magnitude at ``temp_ref`` in volts.
        n_slope: Subthreshold slope factor (dimensionless, typically 1.3-1.4).
        mu0: Low-field carrier mobility at ``temp_ref`` in m^2/(V*s).
        cox: Gate-oxide capacitance per unit area in F/m^2.
        width: Drawn channel width in metres.
        length: Drawn channel length in metres.
        dvt_dt: Threshold temperature coefficient in V/K (negative: the
            threshold magnitude shrinks as the die heats up).
        mobility_exponent: Exponent ``m`` of the mobility power law.
        lambda_c: Velocity-saturation coefficient (dimensionless); larger
            values bend the strong-inversion current from quadratic toward
            linear, emulating the alpha-power law with alpha < 2.
        temp_ref: Reference temperature in kelvin for ``vt0`` and ``mu0``.
    """

    polarity: str
    vt0: float
    n_slope: float
    mu0: float
    cox: float
    width: float
    length: float
    dvt_dt: float
    mobility_exponent: float
    lambda_c: float
    temp_ref: float = 300.0

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.vt0 <= 0.0:
            raise ValueError("vt0 is a magnitude and must be positive")
        if self.n_slope < 1.0:
            raise ValueError("subthreshold slope factor must be >= 1")
        if min(self.mu0, self.cox, self.width, self.length) <= 0.0:
            raise ValueError("mu0, cox, width and length must be positive")
        if self.lambda_c < 0.0:
            raise ValueError("lambda_c must be non-negative")

    def with_vt_shift(self, delta_vt: float) -> "MosfetParams":
        """Return a copy whose threshold is shifted by ``delta_vt`` volts."""
        return replace(self, vt0=self.vt0 + delta_vt)

    def with_mobility_scale(self, scale: float) -> "MosfetParams":
        """Return a copy whose mobility is multiplied by ``scale``."""
        if scale <= 0.0:
            raise ValueError("mobility scale must be positive")
        return replace(self, mu0=self.mu0 * scale)

    def scaled(self, width_scale: float = 1.0, length_scale: float = 1.0) -> "MosfetParams":
        """Return a geometrically scaled copy."""
        if width_scale <= 0.0 or length_scale <= 0.0:
            raise ValueError("geometry scales must be positive")
        return replace(
            self, width=self.width * width_scale, length=self.length * length_scale
        )


def threshold_voltage(params: MosfetParams, temp_k: float) -> float:
    """Threshold-voltage magnitude at temperature ``temp_k``."""
    return params.vt0 + params.dvt_dt * (temp_k - params.temp_ref)


def _mobility(params: MosfetParams, temp_k: float) -> float:
    return params.mu0 * (temp_k / params.temp_ref) ** (-params.mobility_exponent)


def specific_current(params: MosfetParams, temp_k: float) -> float:
    """EKV specific current ``I_spec = 2 n mu C_ox (W/L) U_T^2`` in amperes."""
    ut = thermal_voltage(temp_k)
    return (
        2.0
        * params.n_slope
        * _mobility(params, temp_k)
        * params.cox
        * (params.width / params.length)
        * ut
        * ut
    )


def _softplus(x):
    """Numerically stable ``ln(1 + exp(x))`` for scalars and arrays."""
    return np.logaddexp(0.0, x)


def inversion_coefficient(params: MosfetParams, vgs, temp_k: float):
    """Forward normalised current ``i_f`` at source-referenced gate drive.

    ``i_f << 1`` is weak inversion, ``i_f >> 1`` strong inversion.
    """
    ut = thermal_voltage(temp_k)
    vp = (np.asarray(vgs, dtype=float) - threshold_voltage(params, temp_k)) / params.n_slope
    i_f = _softplus(vp / (2.0 * ut)) ** 2
    if np.ndim(vgs) == 0:
        return float(i_f)
    return i_f


def drain_current(params: MosfetParams, vgs, vds, temp_k: float):
    """Drain-current magnitude in amperes.

    ``vgs`` and ``vds`` are voltage magnitudes referenced to the source (use
    the complementary magnitudes for PMOS).  Negative drives are legal and
    simply land deep in weak inversion.
    """
    ut = thermal_voltage(temp_k)
    vt = threshold_voltage(params, temp_k)
    vgs = np.asarray(vgs, dtype=float)
    vds = np.asarray(vds, dtype=float)
    vp = (vgs - vt) / params.n_slope
    i_f = _softplus(vp / (2.0 * ut)) ** 2
    i_r = _softplus((vp - vds) / (2.0 * ut)) ** 2
    vsat = 1.0 + params.lambda_c * np.sqrt(i_f)
    current = specific_current(params, temp_k) * (i_f - i_r) / vsat
    if np.ndim(current) == 0:
        return float(current)
    return current


def saturation_current(params: MosfetParams, vgs, temp_k: float):
    """Drain current with the drain in full saturation (``i_r -> 0``)."""
    ut = thermal_voltage(temp_k)
    vt = threshold_voltage(params, temp_k)
    vgs = np.asarray(vgs, dtype=float)
    vp = (vgs - vt) / params.n_slope
    i_f = _softplus(vp / (2.0 * ut)) ** 2
    vsat = 1.0 + params.lambda_c * np.sqrt(i_f)
    current = specific_current(params, temp_k) * i_f / vsat
    if np.ndim(current) == 0:
        return float(current)
    return current


def transconductance(params: MosfetParams, vgs: float, temp_k: float, delta: float = 1e-5) -> float:
    """Numeric ``g_m = dI_D/dV_GS`` in saturation, in siemens."""
    hi = saturation_current(params, vgs + delta, temp_k)
    lo = saturation_current(params, vgs - delta, temp_k)
    return (hi - lo) / (2.0 * delta)


def subthreshold_swing(params: MosfetParams, temp_k: float) -> float:
    """Subthreshold swing ``S = n U_T ln 10`` in volts per decade."""
    return params.n_slope * thermal_voltage(temp_k) * np.log(10.0)


def gate_capacitance(params: MosfetParams, overhang_factor: float = 1.3) -> float:
    """Total gate capacitance in farads.

    ``overhang_factor`` lumps overlap and fringe contributions on top of the
    intrinsic ``C_ox W L`` channel capacitance; 1.3 is a typical planar-bulk
    value.
    """
    if overhang_factor < 1.0:
        raise ValueError("overhang_factor must be >= 1")
    return params.cox * params.width * params.length * overhang_factor
