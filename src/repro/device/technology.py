"""65 nm-class technology description and process corners.

The paper's sensor was fabricated in TSMC 65 nm CMOS.  We cannot ship foundry
models, so this module defines a *65 nm-class* low-power parameter set with
the textbook values for that node (V_t ~ 0.4 V, C_ox ~ 17 fF/um^2,
V_DD = 1.2 V) and the five classic corners.  The sensor's behaviour depends
on the structure of the model (V_t / mobility / U_T temperature laws, corner
geometry in the (V_tn, V_tp) plane), not on matching a proprietary deck.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.device.mosfet import MosfetParams

CornerName = str
"""One of ``"TT"``, ``"FF"``, ``"SS"``, ``"FS"``, ``"SF"``."""


@dataclass(frozen=True)
class ProcessCorner:
    """A global (die-to-die) process corner.

    Attributes:
        name: Corner label; first letter is the NMOS speed, second the PMOS
            speed (``F`` fast = low threshold, ``S`` slow = high threshold).
        dvtn: NMOS threshold shift relative to typical, in volts.
        dvtp: PMOS threshold-magnitude shift relative to typical, in volts.
        mun_scale: NMOS mobility multiplier relative to typical.
        mup_scale: PMOS mobility multiplier relative to typical.
    """

    name: CornerName
    dvtn: float
    dvtp: float
    mun_scale: float = 1.0
    mup_scale: float = 1.0


def _standard_corners(vt_span: float, mu_span: float) -> Dict[CornerName, ProcessCorner]:
    fast_mu = 1.0 + mu_span
    slow_mu = 1.0 - mu_span
    return {
        "TT": ProcessCorner("TT", 0.0, 0.0, 1.0, 1.0),
        "FF": ProcessCorner("FF", -vt_span, -vt_span, fast_mu, fast_mu),
        "SS": ProcessCorner("SS", +vt_span, +vt_span, slow_mu, slow_mu),
        "FS": ProcessCorner("FS", -vt_span, +vt_span, fast_mu, slow_mu),
        "SF": ProcessCorner("SF", +vt_span, -vt_span, slow_mu, fast_mu),
    }


@dataclass(frozen=True)
class Technology:
    """A CMOS technology: device templates plus environment defaults.

    Attributes:
        name: Human-readable technology label.
        vdd: Nominal supply voltage in volts.
        nmos: Unit-width NMOS template (width = ``unit_width``).
        pmos: Unit-width PMOS template.
        corners: The five global corners.
        wire_cap_per_um: Local interconnect capacitance in F/um, used for
            ring-oscillator stage loading.
        avt_n: NMOS Pelgrom mismatch coefficient in V*m (sigma_Vt =
            avt / sqrt(W L)).
        avt_p: PMOS Pelgrom mismatch coefficient in V*m.
        temp_nominal: Nominal die temperature in kelvin.
    """

    name: str
    vdd: float
    nmos: MosfetParams
    pmos: MosfetParams
    corners: Dict[CornerName, ProcessCorner] = field(repr=False)
    wire_cap_per_um: float
    avt_n: float
    avt_p: float
    temp_nominal: float = 300.0

    def corner(self, name: CornerName) -> ProcessCorner:
        """Look up a corner by name, raising ``KeyError`` with context."""
        try:
            return self.corners[name]
        except KeyError:
            known = ", ".join(sorted(self.corners))
            raise KeyError(f"unknown corner {name!r}; known corners: {known}") from None

    def devices_at(
        self, corner: ProcessCorner, dvtn_extra: float = 0.0, dvtp_extra: float = 0.0
    ) -> Tuple[MosfetParams, MosfetParams]:
        """NMOS/PMOS templates shifted to a corner plus local V_t offsets.

        ``dvtn_extra`` / ``dvtp_extra`` carry within-die systematic and random
        components on top of the global corner; the variation package feeds
        them in.
        """
        nmos = replace(
            self.nmos,
            vt0=self.nmos.vt0 + corner.dvtn + dvtn_extra,
            mu0=self.nmos.mu0 * corner.mun_scale,
        )
        pmos = replace(
            self.pmos,
            vt0=self.pmos.vt0 + corner.dvtp + dvtp_extra,
            mu0=self.pmos.mu0 * corner.mup_scale,
        )
        return nmos, pmos

    def with_vdd(self, vdd: float) -> "Technology":
        """Return a copy of the technology at a different supply voltage."""
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        return replace(self, vdd=vdd)


def nominal_65nm() -> Technology:
    """The 65 nm-class low-power technology used throughout the reproduction.

    Values are standard for the node: 1.2 V supply, ~0.42/0.40 V thresholds,
    effective mobilities of ~250/60 cm^2/Vs, C_ox of ~17 fF/um^2, threshold
    temperature coefficients just under -1 mV/K, and +/-40 mV corner spans.
    """
    unit_width = 0.6e-6
    drawn_length = 60e-9
    nmos = MosfetParams(
        polarity="n",
        vt0=0.42,
        n_slope=1.35,
        mu0=0.025,
        cox=1.7e-2,
        width=unit_width,
        length=drawn_length,
        dvt_dt=-0.9e-3,
        mobility_exponent=1.4,
        lambda_c=0.35,
    )
    pmos = MosfetParams(
        polarity="p",
        vt0=0.40,
        n_slope=1.38,
        mu0=0.0065,
        cox=1.7e-2,
        width=unit_width,
        length=drawn_length,
        dvt_dt=-1.0e-3,
        mobility_exponent=1.2,
        lambda_c=0.20,
    )
    return Technology(
        name="generic-65nm-LP",
        vdd=1.2,
        nmos=nmos,
        pmos=pmos,
        corners=_standard_corners(vt_span=0.040, mu_span=0.06),
        wire_cap_per_um=0.20e-15,
        avt_n=3.5e-9,  # 3.5 mV*um expressed in V*m
        avt_p=3.0e-9,
        temp_nominal=300.0,
    )
