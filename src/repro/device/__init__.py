"""65 nm-class analytic MOSFET modelling substrate.

This package replaces the paper's silicon/SPICE substrate with a
physics-based analytic model (EKV-style weak/strong inversion interpolation
with velocity saturation and first-order temperature laws).  See DESIGN.md's
substitution ledger for why this preserves the behaviour the sensor relies
on.
"""

from repro.device.bodybias import BodyBiasGenerator, compensate_die
from repro.device.mosfet import (
    MosfetParams,
    drain_current,
    gate_capacitance,
    inversion_coefficient,
    saturation_current,
    specific_current,
    subthreshold_swing,
    threshold_voltage,
    transconductance,
)
from repro.device.stack import (
    parallel_combine,
    series_stack_current,
    series_stack_params,
)
from repro.device.technology import (
    CornerName,
    ProcessCorner,
    Technology,
    nominal_65nm,
)

__all__ = [
    "BodyBiasGenerator",
    "CornerName",
    "compensate_die",
    "MosfetParams",
    "ProcessCorner",
    "Technology",
    "drain_current",
    "gate_capacitance",
    "inversion_coefficient",
    "nominal_65nm",
    "parallel_combine",
    "saturation_current",
    "series_stack_current",
    "series_stack_params",
    "specific_current",
    "subthreshold_swing",
    "threshold_voltage",
    "transconductance",
]
