"""Transistor stacks: effective drive of series/parallel device groups.

The process-sensitive ring oscillators use stacked (series) devices to
amplify the sensitivity of stage delay to one threshold while suppressing the
other.  In strong inversion a series stack of ``k`` identical transistors
behaves to first order like one transistor of length ``k L``; in weak
inversion the stack effect additionally raises the effective threshold
because the intermediate node rises above the source.  Both effects are
captured here with the standard approximations used in leakage/stack-effect
literature.
"""

from __future__ import annotations

from dataclasses import replace

from repro.device.mosfet import MosfetParams, drain_current
from repro.units import thermal_voltage

# Empirical stack-effect threshold lift per stacked device in weak inversion,
# expressed as a multiple of the thermal voltage (DIBL + body effect on the
# internal node).  Typical bulk-CMOS values are 1-2 U_T per device.
_STACK_EFFECT_UT_PER_DEVICE = 1.5


def series_stack_params(params: MosfetParams, count: int, temp_k: float) -> MosfetParams:
    """Equivalent single-device parameters for ``count`` series transistors.

    The equivalent device has length ``count * L`` (strong-inversion current
    division) and a threshold lifted by the weak-inversion stack effect.
    """
    if count < 1:
        raise ValueError("stack count must be >= 1")
    if count == 1:
        return params
    vt_lift = _STACK_EFFECT_UT_PER_DEVICE * (count - 1) * thermal_voltage(temp_k)
    return replace(
        params,
        length=params.length * count,
        vt0=params.vt0 + vt_lift,
        # Velocity saturation weakens as the effective channel lengthens.
        lambda_c=params.lambda_c / count,
    )


def series_stack_current(
    params: MosfetParams, count: int, vgs: float, vds: float, temp_k: float
) -> float:
    """Drain current of a series stack of ``count`` identical devices."""
    equivalent = series_stack_params(params, count, temp_k)
    return drain_current(equivalent, vgs, vds, temp_k)


def parallel_combine(params: MosfetParams, count: int) -> MosfetParams:
    """Equivalent single-device parameters for ``count`` parallel fingers."""
    if count < 1:
        raise ValueError("finger count must be >= 1")
    return replace(params, width=params.width * count)
