"""Aggregate a telemetry JSON-lines file into human-readable tables.

This is the consumer side of :class:`repro.telemetry.JsonlSink`: it
re-parses every record (so it doubles as a format check — CI runs it
against the bench/report smoke output), folds spans by name and keeps
the last snapshot of every metric, and renders the two tables the
``python -m repro telemetry summary`` command prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set


class TelemetryFileError(ValueError):
    """The JSONL file contains a malformed or untyped record."""


@dataclass
class SpanAggregate:
    """Roll-up of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    errors: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class TelemetrySummary:
    """Parsed content of one telemetry JSONL file."""

    metrics: Dict[str, dict] = field(default_factory=dict)
    spans: Dict[str, SpanAggregate] = field(default_factory=dict)
    records: int = 0

    @property
    def subsystems(self) -> Set[str]:
        """Subsystems covered by at least one metric record."""
        return {record["subsystem"] for record in self.metrics.values()}


def load_summary(lines: Iterable[str]) -> TelemetrySummary:
    """Fold JSONL lines into a :class:`TelemetrySummary`.

    Raises :class:`TelemetryFileError` on the first malformed line — the
    point of the smoke check is that *every* record parses.
    """
    summary = TelemetrySummary()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryFileError(f"line {lineno}: not JSON ({error})") from None
        kind = record.get("type")
        if kind == "metric":
            summary.metrics[record["name"]] = record
        elif kind == "span":
            aggregate = summary.spans.setdefault(
                record["name"], SpanAggregate(name=record["name"])
            )
            aggregate.count += 1
            duration = float(record.get("duration_s", 0.0))
            aggregate.total_s += duration
            aggregate.max_s = max(aggregate.max_s, duration)
            if "error" in record.get("attrs", {}):
                aggregate.errors += 1
        else:
            raise TelemetryFileError(f"line {lineno}: unknown record type {kind!r}")
        summary.records += 1
    return summary


def load_summary_file(path: str) -> TelemetrySummary:
    """Parse a telemetry JSONL file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_summary(handle)


def _metric_value(record: dict) -> str:
    if record["kind"] == "histogram":
        if not record.get("count"):
            return "n=0"
        return (
            f"n={record['count']} mean={record['mean']:.4g} "
            f"p50={record['p50']:.4g} max={record['max']:.4g}"
        )
    value = record.get("value")
    return "-" if value is None else f"{value:g}"


def render_summary(summary: TelemetrySummary) -> str:
    """The two aggregate tables: metrics by name, spans by name."""
    lines: List[str] = []
    if summary.metrics:
        width = max(len(name) for name in summary.metrics)
        lines.append("metrics")
        lines.append(f"  {'name':<{width}}  {'kind':<9}  {'unit':<12}  value")
        for name in sorted(summary.metrics):
            record = summary.metrics[name]
            lines.append(
                f"  {name:<{width}}  {record['kind']:<9}  "
                f"{record.get('unit') or '-':<12}  {_metric_value(record)}"
            )
    if summary.spans:
        if lines:
            lines.append("")
        width = max(len(name) for name in summary.spans)
        lines.append("spans")
        lines.append(
            f"  {'name':<{width}}  {'count':>7}  {'total':>10}  "
            f"{'mean':>10}  {'max':>10}  errors"
        )
        for name in sorted(summary.spans):
            aggregate = summary.spans[name]
            lines.append(
                f"  {name:<{width}}  {aggregate.count:>7}  "
                f"{aggregate.total_s * 1e3:>8.2f}ms  "
                f"{aggregate.mean_s * 1e3:>8.3f}ms  "
                f"{aggregate.max_s * 1e3:>8.3f}ms  {aggregate.errors}"
            )
    if not lines:
        lines.append("(empty telemetry file)")
    return "\n".join(lines)
