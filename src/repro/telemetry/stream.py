"""Server-push event streaming: a fan-out hub with bounded subscribers.

The pull faces (Prometheus text, ``/v1/rollup``) answer "what happened";
the stream answers "what is happening".  A :class:`StreamHub` fans
published events out to any number of :class:`Subscription` objects, each
holding a *bounded* deque:

* **Publish never blocks.**  Delivering to a subscriber is an append
  under that subscriber's lock; when the queue is full the oldest event
  is dropped and counted.  A slow consumer can never stall the hot path
  — it loses events instead, and learns that it did.
* **Drops are typed.**  The first poll after a drop is prefixed with a
  synthesized ``notice`` event carrying ``{"code": "backpressure",
  "dropped": n}`` — the same closed error vocabulary the edge wire uses.
* **Idle costs one attribute read.**  Publishers gate on
  :attr:`StreamHub.active`; with no subscribers the hot seams pay a
  single boolean check.

Event kinds are a small open set (``metric``, ``read``, ``alert``,
``heartbeat``, ``notice``); subscriptions filter by kind and, for named
payloads, by dotted-name prefix.  Everything is thread-safe and consumes
no randomness, so streaming never perturbs a seeded run.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import telemetry

#: Default per-subscriber queue bound (events, not bytes).
DEFAULT_QUEUE = 256

#: Event kinds the hub itself synthesizes.
NOTICE = "notice"
HEARTBEAT = "heartbeat"

_EVENTS = telemetry.counter(
    "stream.events_published", unit="events",
    help="Events published into the stream hub (before fan-out).")
_DELIVERED = telemetry.counter(
    "stream.events_delivered", unit="events",
    help="Event deliveries enqueued across all subscribers.")
_DROPPED = telemetry.counter(
    "stream.events_dropped", unit="events",
    help="Deliveries dropped because a subscriber queue was full.")
_SUBSCRIBERS = telemetry.gauge(
    "stream.subscribers", unit="subscribers",
    help="Live subscriptions on the process-wide stream hub.")


@dataclass(frozen=True)
class StreamEvent:
    """One immutable event on the stream: a kind, a sequence, a payload."""

    seq: int
    kind: str
    data: Mapping[str, object]

    def to_wire(self) -> dict:
        """The flat JSON object pushed to subscribers."""
        record = {"event": self.kind, "seq": self.seq}
        record.update(self.data)
        return record


class Subscription:
    """One subscriber's bounded view of the stream.

    Created by :meth:`StreamHub.subscribe`; consumers call :meth:`poll`
    (non-blocking) or :meth:`wait` and read :attr:`dropped` for loss
    accounting.  The queue bound caps per-subscriber memory at
    ``queue`` events regardless of how far the consumer falls behind.
    """

    def __init__(
        self,
        hub: "StreamHub",
        sub_id: int,
        kinds: Optional[Iterable[str]],
        metrics: Optional[Iterable[str]],
        queue: int,
        notify: Optional[Callable[[], None]],
    ) -> None:
        if queue < 1:
            raise ValueError(f"subscription queue bound must be >= 1, got {queue}")
        self.id = sub_id
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.prefixes: Optional[Tuple[str, ...]] = (
            tuple(metrics) if metrics is not None else None
        )
        self.maxlen = int(queue)
        self._hub = hub
        self._lock = threading.Lock()
        self._queue: Deque[StreamEvent] = deque()
        self._dropped_total = 0
        self._dropped_pending = 0
        self._event = threading.Event()
        self._notify = notify
        self.closed = False

    # -- matching ----------------------------------------------------

    def matches(self, event: StreamEvent) -> bool:
        """Whether this subscription wants ``event``."""
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.prefixes is not None and event.kind == "metric":
            name = str(event.data.get("name", ""))
            return any(name.startswith(prefix) for prefix in self.prefixes)
        return True

    # -- producer side (hub only) ------------------------------------

    def _offer(self, event: StreamEvent) -> bool:
        """Enqueue ``event``, dropping the oldest on overflow.

        Returns True when the event was enqueued without loss.  Never
        blocks: overflow evicts, counts, and carries on.
        """
        dropped = False
        with self._lock:
            if len(self._queue) >= self.maxlen:
                self._queue.popleft()
                self._dropped_total += 1
                self._dropped_pending += 1
                dropped = True
            self._queue.append(event)
        self._event.set()
        if self._notify is not None:
            try:
                self._notify()
            except Exception:
                pass
        return not dropped

    # -- consumer side -----------------------------------------------

    @property
    def dropped(self) -> int:
        """Total deliveries lost to this subscriber's queue bound."""
        return self._dropped_total

    @property
    def pending(self) -> int:
        return len(self._queue)

    def poll(self, max_events: Optional[int] = None) -> List[StreamEvent]:
        """Drain queued events (non-blocking).

        When deliveries were dropped since the previous poll, the batch
        is prefixed with a synthesized ``notice`` event —
        ``{"code": "backpressure", "dropped": n}`` — so consumers see
        typed, counted loss instead of silent gaps.
        """
        with self._lock:
            dropped = self._dropped_pending
            self._dropped_pending = 0
            if max_events is None or max_events >= len(self._queue):
                events = list(self._queue)
                self._queue.clear()
            else:
                events = [self._queue.popleft() for _ in range(max_events)]
            if not self._queue:
                self._event.clear()
        if dropped:
            notice = StreamEvent(
                seq=self._hub._next_seq(),
                kind=NOTICE,
                data={"code": "backpressure", "dropped": dropped},
            )
            events.insert(0, notice)
        return events

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until at least one event is queued (True) or timeout."""
        return self._event.wait(timeout)

    def _wake(self) -> None:
        """Wake any waiter (close paths: let pushers notice ``closed``)."""
        self._event.set()
        if self._notify is not None:
            try:
                self._notify()
            except Exception:
                pass

    def close(self) -> None:
        """Unsubscribe (idempotent)."""
        self._hub.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StreamHub:
    """Fan-out broker: publish once, deliver to every matching subscriber.

    Hubs are cheap; the edge server owns one per instance and the serve
    path shares the process-wide hub from :func:`get_hub`.  Publishing
    with zero subscribers short-circuits on :attr:`active` — instrumented
    hot seams pay one boolean read when nobody is listening.
    """

    def __init__(self, replay: int = 0) -> None:
        if replay < 0:
            raise ValueError("replay bound must be >= 0")
        self._lock = threading.Lock()
        self._subs: Dict[int, Subscription] = {}
        self._snapshot: Tuple[Subscription, ...] = ()
        self._next_id = 0
        self._seq = 0
        self._seq_lock = threading.Lock()
        # Bounded ring of recently *published* events, the basis of SSE
        # ``Last-Event-ID`` resume.  Only fed while the hub is active —
        # with no subscribers nothing is published, so there is nothing
        # to replay (and, consistently, nothing was missed).
        self._replay: Optional[Deque[StreamEvent]] = (
            deque(maxlen=int(replay)) if replay else None
        )
        self._replay_lock = threading.Lock()
        self.active = False

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    @property
    def seq(self) -> int:
        """The most recently issued sequence number."""
        with self._seq_lock:
            return self._seq

    def replay_since(
        self,
        last_seq: int,
        matcher: Optional[Callable[[StreamEvent], bool]] = None,
    ) -> Tuple[List[StreamEvent], bool]:
        """Retained events with ``seq > last_seq``, oldest first.

        Returns ``(events, gap)`` — ``gap`` is True when events beyond
        ``last_seq`` were published but are no longer retained (ring
        overflow, or replay disabled), so a resuming consumer can be
        told, typed, that its history has a hole rather than silently
        skipping it.  ``matcher`` (usually ``Subscription.matches``)
        filters the replayed events; gap detection stays conservative —
        it looks at retention, not at the filter.
        """
        if self._replay is None:
            return [], self.seq > last_seq
        with self._replay_lock:
            ring = list(self._replay)
        if not ring:
            return [], self.seq > last_seq
        events = [
            event
            for event in ring
            if event.seq > last_seq and (matcher is None or matcher(event))
        ]
        gap = ring[0].seq > last_seq + 1
        return events, gap

    def subscribe(
        self,
        kinds: Optional[Iterable[str]] = None,
        metrics: Optional[Iterable[str]] = None,
        queue: int = DEFAULT_QUEUE,
        notify: Optional[Callable[[], None]] = None,
    ) -> Subscription:
        """Register a subscriber.

        ``kinds`` filters by event kind (None = all kinds); ``metrics``
        filters ``metric`` events by dotted-name prefix; ``queue`` bounds
        the subscriber's memory; ``notify`` is an optional callable
        invoked after each enqueue (the edge uses it to kick an asyncio
        event from the publisher thread).
        """
        with self._lock:
            self._next_id += 1
            sub = Subscription(self, self._next_id, kinds, metrics, queue, notify)
            self._subs[sub.id] = sub
            self._snapshot = tuple(self._subs.values())
            self.active = True
        _SUBSCRIBERS.set(len(self._snapshot))
        return sub

    def unsubscribe(self, sub: "Subscription | int") -> bool:
        """Remove a subscription by object or id (idempotent)."""
        sub_id = sub.id if isinstance(sub, Subscription) else int(sub)
        with self._lock:
            removed = self._subs.pop(sub_id, None)
            if removed is None:
                return False
            removed.closed = True
            self._snapshot = tuple(self._subs.values())
            self.active = bool(self._snapshot)
        removed._wake()
        _SUBSCRIBERS.set(len(self._snapshot))
        return True

    @property
    def subscribers(self) -> int:
        return len(self._snapshot)

    def publish(self, kind: str, data: Mapping[str, object]) -> int:
        """Publish one event; returns the number of lossless deliveries.

        Never blocks on any consumer: a full subscriber queue drops its
        oldest event (counted per subscriber and in
        ``stream.events_dropped``) and the publisher moves on.
        """
        subs = self._snapshot
        if not subs:
            return 0
        event = StreamEvent(seq=self._next_seq(), kind=kind, data=dict(data))
        _EVENTS.inc()
        if self._replay is not None:
            with self._replay_lock:
                self._replay.append(event)
        delivered = 0
        matched = 0
        dropped = 0
        for sub in subs:
            if sub.matches(event):
                matched += 1
                if sub._offer(event):
                    delivered += 1
                else:
                    dropped += 1
        if matched:
            _DELIVERED.inc(matched)
        if dropped:
            _DROPPED.inc(dropped)
        return delivered

    def close(self) -> None:
        """Drop every subscription (used on server shutdown)."""
        with self._lock:
            dropped = list(self._subs.values())
            for sub in dropped:
                sub.closed = True
            self._subs.clear()
            self._snapshot = ()
            self.active = False
        for sub in dropped:
            sub._wake()
        _SUBSCRIBERS.set(0)


#: The process-wide hub: in-process consumers (examples, notebooks)
#: subscribe here, and the serve engine publishes ``read`` events into it
#: whenever it is active.
HUB = StreamHub()


def get_hub() -> StreamHub:
    """The process-wide stream hub."""
    return HUB
