"""Deterministic time-series rollups: windowed min/mean/p99 per metric.

Raw observations (a request latency, a tier temperature) are bucketed
into fixed-width windows aligned to the epoch (``floor(t / window_s)``).
A closed window is *sealed* into an immutable :class:`RollupWindow`
carrying exact count/sum/min/max plus p50/p99 from the same deterministic
decimating-reservoir technique the PR 2 histograms use — on overflow the
reservoir keeps every other sample and doubles its stride, so memory is
bounded and no RNG is consumed.  Each series retains a ring of the most
recent sealed windows; the edge serves them over ``GET /v1/rollup``.

Retention comes in two tiers.  The **fine** tier is the original ring of
1-window resolution; the **coarse** tier is a second, downsampled ring
whose windows span ``coarse_every`` fine windows each (default 15) and
whose ring is deeper in wall-clock terms (24 windows of 15 epochs versus
60 of 1).  Both tiers accumulate from the *same raw observations* — the
coarse window runs its own decimating reservoir rather than merging fine
quantiles, so its p50/p99 carry the same determinism guarantee.  The
edge serves either over ``GET /v1/rollup?tier=``.

Determinism: given the same ``(value, t)`` observation sequence, window
boundaries, counts and quantiles are bit-identical — timestamps are
supplied by the caller (virtual time in tests and loadgen, wall clock on
a live edge), never read from a clock here.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

#: Reservoir capacity per open window.  Windows are short-lived, so a
#: smaller reservoir than the registry histograms' 512 keeps the ring
#: memory proportional to ``ring * reservoir`` per metric.
WINDOW_RESERVOIR = 128

#: Retention tiers a rollup query may name.
ROLLUP_TIERS = ("fine", "coarse")


@dataclass(frozen=True)
class RollupPolicy:
    """Shape of the rollup plane: window widths and ring depths.

    The fine tier keeps ``ring`` windows of ``window_s`` each; the
    coarse tier keeps ``coarse_ring`` windows of
    ``coarse_every * window_s`` each (defaults: 60 x 1 epoch plus
    24 x 15 epochs).
    """

    window_s: float = 1.0
    ring: int = 60
    coarse_every: int = 15
    coarse_ring: int = 24

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if self.ring < 1:
            raise ValueError(f"ring must be >= 1, got {self.ring}")
        if self.coarse_every < 2:
            raise ValueError(
                f"coarse_every must be >= 2, got {self.coarse_every}"
            )
        if self.coarse_ring < 1:
            raise ValueError(f"coarse_ring must be >= 1, got {self.coarse_ring}")

    @property
    def coarse_window_s(self) -> float:
        return self.window_s * self.coarse_every


@dataclass(frozen=True)
class RollupWindow:
    """One sealed window of a metric's observations."""

    start: float
    end: float
    count: int
    sum: float
    min: float
    max: float
    p50: float
    p99: float

    @property
    def mean(self) -> float:
        return self.sum / self.count

    def to_record(self) -> dict:
        """JSON-serialisable form (what ``/v1/rollup`` returns)."""
        return {
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p50": self.p50,
            "p99": self.p99,
        }


class _OpenWindow:
    """The accumulating (unsealed) window of one series."""

    __slots__ = ("index", "count", "sum", "min", "max",
                 "reservoir", "stride", "since_kept")

    def __init__(self, index: int) -> None:
        self.index = index
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.reservoir: List[float] = []
        self.stride = 1
        self.since_kept = 0

    def record(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.since_kept += 1
        if self.since_kept >= self.stride:
            self.since_kept = 0
            self.reservoir.append(value)
            if len(self.reservoir) >= WINDOW_RESERVOIR:
                self.reservoir = self.reservoir[::2]
                self.stride *= 2

    def seal(self, window_s: float) -> RollupWindow:
        ordered = sorted(self.reservoir)
        last = len(ordered) - 1

        def quantile(q: float) -> float:
            return ordered[min(last, int(round(q * last)))]

        return RollupWindow(
            start=self.index * window_s,
            end=(self.index + 1) * window_s,
            count=self.count,
            sum=self.sum,
            min=self.min,
            max=self.max,
            p50=quantile(0.5),
            p99=quantile(0.99),
        )


class RollupSeries:
    """One metric's open windows (both tiers) plus their sealed rings."""

    def __init__(self, name: str, policy: RollupPolicy) -> None:
        self.name = name
        self.policy = policy
        self._open: Optional[_OpenWindow] = None
        self._sealed: Deque[RollupWindow] = deque(maxlen=policy.ring)
        self._open_coarse: Optional[_OpenWindow] = None
        self._sealed_coarse: Deque[RollupWindow] = deque(maxlen=policy.coarse_ring)

    def _index_of(self, t: float) -> int:
        return int(math.floor(t / self.policy.window_s))

    def _roll_to(self, index: int) -> None:
        if self._open is not None and index > self._open.index:
            if self._open.count:
                self._sealed.append(self._open.seal(self.policy.window_s))
            self._open = None
        if self._open is None:
            self._open = _OpenWindow(index)
        coarse = index // self.policy.coarse_every
        if self._open_coarse is not None and coarse > self._open_coarse.index:
            if self._open_coarse.count:
                self._sealed_coarse.append(
                    self._open_coarse.seal(self.policy.coarse_window_s)
                )
            self._open_coarse = None
        if self._open_coarse is None:
            self._open_coarse = _OpenWindow(coarse)

    def observe(self, value: float, t: float) -> None:
        """Record ``value`` at time ``t`` (monotonically non-decreasing).

        Both tiers accumulate the raw value: the coarse window is not a
        merge of fine windows but a second reservoir over the same
        stream, so its quantiles are as deterministic as the fine ones.
        """
        self._roll_to(self._index_of(t))
        assert self._open is not None and self._open_coarse is not None
        value = float(value)
        self._open.record(value)
        self._open_coarse.record(value)

    def advance(self, t: float) -> None:
        """Seal any window that ended at or before ``t`` (no new data)."""
        index = self._index_of(t)
        if self._open is not None and index > self._open.index:
            if self._open.count:
                self._sealed.append(self._open.seal(self.policy.window_s))
            self._open = None
        if (
            self._open_coarse is not None
            and index // self.policy.coarse_every > self._open_coarse.index
        ):
            if self._open_coarse.count:
                self._sealed_coarse.append(
                    self._open_coarse.seal(self.policy.coarse_window_s)
                )
            self._open_coarse = None

    def windows(
        self, last: Optional[int] = None, tier: str = "fine"
    ) -> List[RollupWindow]:
        """Sealed windows, oldest first (``last`` trims to the newest n)."""
        if tier not in ROLLUP_TIERS:
            raise ValueError(f"tier must be one of {ROLLUP_TIERS}, not {tier!r}")
        sealed = list(self._sealed if tier == "fine" else self._sealed_coarse)
        if last is not None:
            sealed = sealed[-last:]
        return sealed


class RollupTable:
    """Name -> series store behind one lock; the edge's rollup plane.

    Get-or-create on observe, like the metrics registry: the first
    observation of a name creates its series.
    """

    def __init__(self, policy: Optional[RollupPolicy] = None) -> None:
        self.policy = policy if policy is not None else RollupPolicy()
        self._series: Dict[str, RollupSeries] = {}
        self._lock = threading.Lock()

    def observe(self, name: str, value: float, t: float) -> None:
        """Record one observation of metric ``name`` at time ``t``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = RollupSeries(name, self.policy)
                self._series[name] = series
            series.observe(value, t)

    def advance(self, t: float) -> None:
        """Seal every series' windows that ended at or before ``t``."""
        with self._lock:
            for series in self._series.values():
                series.advance(t)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def windows(
        self, name: str, last: Optional[int] = None, tier: str = "fine"
    ) -> List[RollupWindow]:
        """Sealed windows of ``name`` (empty when the series is unknown)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            return series.windows(last, tier=tier)

    def snapshot(
        self,
        names: Optional[List[str]] = None,
        last: Optional[int] = None,
        tier: str = "fine",
    ) -> Dict[str, List[dict]]:
        """JSON-serialisable rollups, keyed by metric name."""
        if tier not in ROLLUP_TIERS:
            raise ValueError(f"tier must be one of {ROLLUP_TIERS}, not {tier!r}")
        with self._lock:
            selected = sorted(self._series) if names is None else names
            return {
                name: [
                    w.to_record() for w in self._series[name].windows(last, tier=tier)
                ]
                for name in selected
                if name in self._series
            }
