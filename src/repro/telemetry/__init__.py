"""Unified telemetry for the sensing stack: metrics + trace spans.

One process-wide :class:`Telemetry` instance owns a metric registry and
a sink.  Call sites bind instrument handles once at import time and hit
them from the hot seams::

    from repro import telemetry

    _CONVERSIONS = telemetry.counter("core.conversions", unit="conversions")

    def read(...):
        with telemetry.span("core.conversion", die_id=die_id) as span:
            ...
            _CONVERSIONS.inc()
            span.set(rounds_used=state.rounds_used)

Semantics, chosen for near-zero overhead on the paths PR 1 made fast:

* **Metrics always record.**  A counter increment is a lock and an
  integer add; leaving them unconditionally on keeps accounting like the
  thermal LU-cache hit rate available without any setup (and is what
  :func:`repro.thermal.solver.factorization_cache_stats` now reads).
* **Spans and export are gated.**  While disabled (the default),
  :func:`span` returns the shared no-op span and nothing reaches the
  sink; enabling telemetry (``configure`` or the :func:`capture`
  context manager) streams finished spans to the configured sink and
  :func:`flush_metrics` writes one snapshot record per instrument.

The JSON-lines schema (``{"type": "span"|"metric", ...}``) is documented
in docs/telemetry.md together with the full metric catalogue.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    TelemetryError,
    subsystem_of,
)
from repro.telemetry.sinks import InMemorySink, JsonlSink, NullSink, Sink
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span, _SpanStack

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "Instrument",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "RollupPolicy",
    "RollupTable",
    "RollupWindow",
    "RunawayDetector",
    "RunawayPolicy",
    "Sink",
    "Span",
    "StreamEvent",
    "StreamHub",
    "Subscription",
    "Telemetry",
    "TelemetryError",
    "batch_alarm_round",
    "capture",
    "configure",
    "counter",
    "enabled",
    "flush_metrics",
    "gauge",
    "get",
    "get_hub",
    "histogram",
    "reset_metrics",
    "span",
    "subsystem_of",
]


class Telemetry:
    """The registry + sink + enable flag behind the module-level API.

    The process-wide instance (from :func:`get`) is never replaced, only
    reconfigured — so instrument handles bound at import time stay valid
    across ``configure``/``capture`` cycles.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.sink: Sink = NullSink()
        self._enabled = False
        self._stack = _SpanStack()

    @property
    def enabled(self) -> bool:
        return self._enabled

    def configure(
        self, sink: Optional[Sink] = None, enabled: Optional[bool] = None
    ) -> None:
        """Swap the sink and/or flip the enable flag."""
        if sink is not None:
            self.sink = sink
        if enabled is not None:
            self._enabled = bool(enabled)

    def counter(self, name: str, unit: str = "", help: str = "") -> Counter:
        return self.registry.counter(name, unit=unit, help=help)

    def gauge(self, name: str, unit: str = "", help: str = "") -> Gauge:
        return self.registry.gauge(name, unit=unit, help=help)

    def histogram(self, name: str, unit: str = "", help: str = "") -> Histogram:
        return self.registry.histogram(name, unit=unit, help=help)

    def span(self, name: str, **attributes):
        """An open span context manager (the shared no-op when disabled)."""
        if not self._enabled:
            return NULL_SPAN
        return Span(name, attributes, self.sink, self._stack)

    def flush_metrics(self) -> None:
        """Write one snapshot record per registered instrument to the sink."""
        for record in self.registry.snapshot():
            self.sink.emit_metric(record)
        self.sink.flush()

    def reset_metrics(self) -> None:
        """Zero every instrument (handles stay valid)."""
        self.registry.reset()

    @contextmanager
    def capture(
        self, sink: Optional[Sink] = None, reset: bool = True
    ) -> Iterator[Sink]:
        """Temporarily enable telemetry into ``sink`` (default in-memory).

        Restores the previous sink and enable flag on exit and flushes a
        metric snapshot into the sink first.  ``reset=True`` (default)
        zeroes all metrics on entry so captured counts reflect only the
        enclosed block — the test-isolation mode.
        """
        target = sink if sink is not None else InMemorySink()
        previous_sink, previous_enabled = self.sink, self._enabled
        if reset:
            self.reset_metrics()
        self.configure(sink=target, enabled=True)
        try:
            yield target
        finally:
            self.flush_metrics()
            self.configure(sink=previous_sink, enabled=previous_enabled)


_TELEMETRY = Telemetry()


def get() -> Telemetry:
    """The process-wide telemetry instance."""
    return _TELEMETRY


def counter(name: str, unit: str = "", help: str = "") -> Counter:
    """Get-or-create a counter in the process-wide registry."""
    return _TELEMETRY.counter(name, unit=unit, help=help)


def gauge(name: str, unit: str = "", help: str = "") -> Gauge:
    """Get-or-create a gauge in the process-wide registry."""
    return _TELEMETRY.gauge(name, unit=unit, help=help)


def histogram(name: str, unit: str = "", help: str = "") -> Histogram:
    """Get-or-create a histogram in the process-wide registry."""
    return _TELEMETRY.histogram(name, unit=unit, help=help)


def span(name: str, **attributes):
    """An open span on the process-wide instance (no-op when disabled)."""
    return _TELEMETRY.span(name, **attributes)


def configure(sink: Optional[Sink] = None, enabled: Optional[bool] = None) -> None:
    """Reconfigure the process-wide instance."""
    _TELEMETRY.configure(sink=sink, enabled=enabled)


def enabled() -> bool:
    """Whether span tracing/export is currently on."""
    return _TELEMETRY.enabled


def flush_metrics() -> None:
    """Snapshot every metric into the current sink."""
    _TELEMETRY.flush_metrics()


def reset_metrics() -> None:
    """Zero every metric in the process-wide registry."""
    _TELEMETRY.reset_metrics()


def capture(sink: Optional[Sink] = None, reset: bool = True):
    """Context manager: temporarily enable telemetry (see Telemetry.capture)."""
    return _TELEMETRY.capture(sink=sink, reset=reset)


# The streaming layer binds its own stream.* instruments at import time,
# so it must come after the process-wide instance above exists.
from repro.telemetry.rollup import (  # noqa: E402
    RollupPolicy,
    RollupTable,
    RollupWindow,
)
from repro.telemetry.stream import (  # noqa: E402
    StreamEvent,
    StreamHub,
    Subscription,
    get_hub,
)
from repro.telemetry.runaway import (  # noqa: E402
    RunawayDetector,
    RunawayPolicy,
    batch_alarm_round,
)
