"""Streaming thermal-runaway early warning (online E8).

The batch E8 experiment maps the runaway power boundary post-hoc from a
full sweep; the :class:`StackMonitor` alarm bands fire when a tier's
*absolute* temperature crosses 95 °C (warning) / 110 °C (emergency).
Both see runaway late: a compounding fault (``thermal_runaway`` grows the
offset ~1.1x per round) spends many rounds below the absolute band while
its *slope* is already unmistakable.

:class:`RunawayDetector` watches the slope.  Per ``(stack, tier)`` it
keeps an EWMA of the temperature and an EWMA of the per-round delta; when
the smoothed slope and smoothed temperature both exceed their thresholds
for ``consecutive`` rounds it arms and publishes one
``alert.runaway_warning`` event, then holds the alert (hysteresis) until
the smoothed slope stays below ``clear_slope_c`` for
``clear_consecutive`` rounds, publishing ``alert.runaway_clear``.

Bit-reproducibility: the detector is pure IEEE-754 float recurrences on a
logical round clock — no RNG, no wall time — so in deterministic mode the
same read sequence yields the same alert at the same round with the same
payload floats, regardless of which wire face (NDJSON, binary, HTTP/SSE)
carried the reads.

:func:`batch_alarm_round` is the post-hoc baseline the acceptance gate
compares against: the first round a raw trace crosses the absolute
monitor band.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import telemetry
from repro.telemetry.stream import StreamHub

#: Event names published onto the stream.
ALERT_WARNING = "alert.runaway_warning"
ALERT_CLEAR = "alert.runaway_clear"

_ALERTS = telemetry.counter(
    "stream.alerts", unit="alerts",
    help="alert.* events published by the runaway early-warning detector.")


@dataclass(frozen=True)
class RunawayPolicy:
    """Knobs of the early-warning detector.

    ``alpha``/``slope_alpha`` smooth the temperature and its per-round
    delta; an alert arms when smoothed slope >= ``warn_slope_c`` *and*
    smoothed temperature >= ``warn_temp_c`` for ``consecutive`` rounds,
    and clears when smoothed slope <= ``clear_slope_c`` for
    ``clear_consecutive`` rounds (hysteresis: the gap between the two
    slope thresholds stops border flapping).  ``batch_alarm_c`` is the
    absolute monitor band the baseline comparison uses.
    """

    alpha: float = 0.5
    slope_alpha: float = 0.5
    warn_slope_c: float = 0.75
    warn_temp_c: float = 75.0
    consecutive: int = 2
    clear_slope_c: float = 0.25
    clear_consecutive: int = 3
    batch_alarm_c: float = 95.0

    def __post_init__(self) -> None:
        for name in ("alpha", "slope_alpha"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {value}")
        if self.clear_slope_c >= self.warn_slope_c:
            raise ValueError(
                "clear_slope_c must sit below warn_slope_c (hysteresis)")
        if self.consecutive < 1 or self.clear_consecutive < 1:
            raise ValueError("consecutive counts must be >= 1")


class _TierState:
    """EWMA state of one (stack, tier)."""

    __slots__ = ("ewma_temp", "ewma_slope", "last_temp",
                 "armed_streak", "calm_streak", "alerted", "alert_round")

    def __init__(self) -> None:
        self.ewma_temp: Optional[float] = None
        self.ewma_slope = 0.0
        self.last_temp = 0.0
        self.armed_streak = 0
        self.calm_streak = 0
        self.alerted = False
        self.alert_round: Optional[int] = None


class RunawayDetector:
    """Online per-tier runaway detection over live reads.

    Feed it ``(stack, tier, temp_c, round)`` observations in round order
    (:meth:`observe`, or :meth:`observe_reading` for a whole stack's
    tier map); it returns the alert payload when one fires and publishes
    ``alert`` events onto ``hub`` when one is attached.  Thread-safe;
    consumes no randomness.
    """

    def __init__(
        self,
        policy: Optional[RunawayPolicy] = None,
        hub: Optional[StreamHub] = None,
    ) -> None:
        self.policy = policy if policy is not None else RunawayPolicy()
        self.hub = hub
        self._states: Dict[Tuple[int, int], _TierState] = {}
        self._lock = threading.Lock()
        self.alerts: List[dict] = []

    def observe(
        self, stack: int, tier: int, temp_c: float, round_index: int
    ) -> Optional[dict]:
        """Ingest one tier temperature; returns an alert payload or None."""
        policy = self.policy
        temp_c = float(temp_c)
        with self._lock:
            state = self._states.get((stack, tier))
            if state is None:
                state = _TierState()
                self._states[(stack, tier)] = state
            if state.ewma_temp is None:
                state.ewma_temp = temp_c
                state.last_temp = temp_c
                return None
            state.ewma_temp = (
                policy.alpha * temp_c + (1.0 - policy.alpha) * state.ewma_temp
            )
            raw_slope = temp_c - state.last_temp
            state.last_temp = temp_c
            state.ewma_slope = (
                policy.slope_alpha * raw_slope
                + (1.0 - policy.slope_alpha) * state.ewma_slope
            )
            payload: Optional[dict] = None
            if not state.alerted:
                hot = (
                    state.ewma_slope >= policy.warn_slope_c
                    and state.ewma_temp >= policy.warn_temp_c
                )
                state.armed_streak = state.armed_streak + 1 if hot else 0
                if state.armed_streak >= policy.consecutive:
                    state.alerted = True
                    state.alert_round = round_index
                    state.calm_streak = 0
                    payload = self._payload(
                        ALERT_WARNING, stack, tier, round_index, state)
            else:
                calm = state.ewma_slope <= policy.clear_slope_c
                state.calm_streak = state.calm_streak + 1 if calm else 0
                if state.calm_streak >= policy.clear_consecutive:
                    state.alerted = False
                    state.armed_streak = 0
                    payload = self._payload(
                        ALERT_CLEAR, stack, tier, round_index, state)
            if payload is not None:
                self.alerts.append(payload)
        if payload is not None:
            _ALERTS.inc()
            if self.hub is not None:
                self.hub.publish("alert", payload)
        return payload

    def observe_reading(
        self, stack: int, temps_c: Mapping[int, float], round_index: int
    ) -> List[dict]:
        """Ingest a whole stack read (tier -> temp); returns fired alerts."""
        fired = []
        for tier in sorted(temps_c):
            payload = self.observe(stack, tier, temps_c[tier], round_index)
            if payload is not None:
                fired.append(payload)
        return fired

    def _payload(
        self, name: str, stack: int, tier: int, round_index: int,
        state: _TierState,
    ) -> dict:
        return {
            "name": name,
            "stack": stack,
            "tier": tier,
            "round": round_index,
            "temp_c": state.ewma_temp,
            "slope_c": state.ewma_slope,
        }

    def state(self, stack: int, tier: int) -> Optional[dict]:
        """The EWMA state of one tier (for status surfaces and tests)."""
        with self._lock:
            state = self._states.get((stack, tier))
            if state is None:
                return None
            return {
                "ewma_temp": state.ewma_temp,
                "ewma_slope": state.ewma_slope,
                "alerted": state.alerted,
                "alert_round": state.alert_round,
            }


def batch_alarm_round(
    temps_c: Sequence[float], threshold_c: Optional[float] = None
) -> Optional[int]:
    """The post-hoc batch baseline: first round a raw trace crosses the
    absolute monitor alarm band (None when it never does)."""
    limit = RunawayPolicy().batch_alarm_c if threshold_c is None else threshold_c
    for index, temp in enumerate(temps_c):
        if temp >= limit:
            return index
    return None


def streaming_alert_round(
    temps_c: Sequence[float], policy: Optional[RunawayPolicy] = None
) -> Optional[int]:
    """First round a fresh detector alerts on a single-tier trace."""
    detector = RunawayDetector(policy)
    for index, temp in enumerate(temps_c):
        payload = detector.observe(0, 0, temp, index)
        if payload is not None and payload["name"] == ALERT_WARNING:
            return index
    return None
