"""Lightweight trace spans: name, parent, duration, attributes.

A span brackets one operation (a conversion, a polling round, an
experiment) as a context manager.  Nesting is tracked per thread, so a
conversion performed inside a polling round records the round as its
parent.  On exit the span becomes one JSON-serialisable record::

    {"type": "span", "name": "core.conversion", "parent": "network.poll_round",
     "duration_s": 1.3e-4, "attrs": {"die_id": 3, "rounds_used": 2, ...}}

When telemetry is disabled, :meth:`repro.telemetry.Telemetry.span`
returns the shared :data:`NULL_SPAN` instead — entering it, setting
attributes on it and leaving it are all no-ops with no allocation, which
is what keeps the disabled-mode overhead of an instrumented hot path at
a single attribute check.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class NullSpan:
    """The do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes) -> None:
        """Discard attributes."""


NULL_SPAN = NullSpan()


class _SpanStack(threading.local):
    """Per-thread stack of open span names (for parent attribution)."""

    def __init__(self) -> None:
        self.names: List[str] = []


class Span:
    """One live span; emitted to the sink as a record when it closes."""

    __slots__ = ("name", "attributes", "_sink", "_stack", "_started", "parent")

    def __init__(self, name: str, attributes: Dict, sink, stack: _SpanStack) -> None:
        self.name = name
        self.attributes = attributes
        self.parent: Optional[str] = None
        self._sink = sink
        self._stack = stack
        self._started = 0.0

    def set(self, **attributes) -> None:
        """Attach or update attributes on the open span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        names = self._stack.names
        self.parent = names[-1] if names else None
        names.append(self.name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._started
        names = self._stack.names
        if names and names[-1] == self.name:
            names.pop()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._sink.emit_span(
            {
                "type": "span",
                "name": self.name,
                "parent": self.parent,
                "duration_s": duration,
                "attrs": self.attributes,
            }
        )
        return False
