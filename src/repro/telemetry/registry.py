"""Metric instruments and the registry that owns them.

Three instrument kinds cover everything the sensing stack wants to count:

* :class:`Counter` — monotonically increasing event counts (conversions,
  parity errors, cache hits);
* :class:`Gauge` — last-written values (worker counts, configuration);
* :class:`Histogram` — bounded-memory distributions (calibration rounds,
  conversion energy) keeping exact count/sum/min/max plus a decimating
  reservoir for quantiles.

Metric *recording* is always on: an increment is a lock plus an integer
add, cheap enough to leave in every hot seam unconditionally (the global
enable flag in :mod:`repro.telemetry` gates the expensive parts — spans
and sink export).  All instruments are thread-safe; the parallel
experiment runner increments them from worker threads.

Names are dotted lowercase paths (``network.bus.parity_errors``); the
first segment is the subsystem and is what the report/summary tooling
groups by.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Dict, Iterable, List, Optional

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

# Reservoir capacity of a histogram.  When full the reservoir decimates
# (keeps every other sample) and doubles its stride — deterministic, no
# RNG involved, so telemetry never perturbs seeded experiments.
RESERVOIR_CAPACITY = 512


class TelemetryError(ValueError):
    """Invalid metric name, kind conflict, or bad instrument arguments."""


def subsystem_of(name: str) -> str:
    """The subsystem a metric belongs to: the first dotted segment."""
    return name.split(".", 1)[0]


class Instrument:
    """Common base: identity, locking and the snapshot contract."""

    kind = "instrument"

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise TelemetryError(
                f"metric name {name!r} must be dotted lowercase "
                "(e.g. 'core.conversions')"
            )
        self.name = name
        self.unit = unit
        self.help = help
        self._lock = threading.Lock()

    @property
    def subsystem(self) -> str:
        return subsystem_of(self.name)

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def snapshot(self) -> dict:
        """One JSON-serialisable record of the instrument's current state."""
        record = {
            "type": "metric",
            "kind": self.kind,
            "name": self.name,
            "subsystem": self.subsystem,
            "unit": self.unit,
        }
        record.update(self._state())
        return record

    def _state(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        super().__init__(name, unit=unit, help=help)
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) events."""
        if n < 0:
            raise TelemetryError(f"counter {self.name} cannot decrease (n={n})")
        if n == 0:
            return
        with self._lock:
            self._value += int(n)

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def _state(self) -> dict:
        return {"value": self._value}


class Gauge(Instrument):
    """A last-written value."""

    kind = "gauge"

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        super().__init__(name, unit=unit, help=help)
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def reset(self) -> None:
        with self._lock:
            self._value = None

    def _state(self) -> dict:
        return {"value": self._value}


class Histogram(Instrument):
    """A distribution with exact moments and a bounded reservoir.

    Count, sum, min and max are exact over every observation; quantiles
    come from a reservoir that keeps every ``stride``-th sample and
    decimates (deterministically) whenever it fills, so memory stays
    bounded at :data:`RESERVOIR_CAPACITY` samples regardless of volume.
    """

    kind = "histogram"

    def __init__(self, name: str, unit: str = "", help: str = "") -> None:
        super().__init__(name, unit=unit, help=help)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: List[float] = []
        self._stride = 1
        self._since_kept = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._record(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (one lock acquisition)."""
        with self._lock:
            for value in values:
                self._record(float(value))

    def _record(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._since_kept += 1
        if self._since_kept >= self._stride:
            self._since_kept = 0
            self._reservoir.append(value)
            if len(self._reservoir) >= RESERVOIR_CAPACITY:
                self._reservoir = self._reservoir[::2]
                self._stride *= 2

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile from the reservoir (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must lie in [0, 1]")
        with self._lock:
            if not self._reservoir:
                return None
            ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf
            self._reservoir = []
            self._stride = 1
            self._since_kept = 0

    def _state(self) -> dict:
        if not self._count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p90": None}
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self._sum / self._count,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
        }


class MetricsRegistry:
    """Name -> instrument store with get-or-create semantics.

    Asking twice for the same name returns the same instrument, so call
    sites can bind handles at import time; asking for an existing name
    with a different kind is an error (one name, one meaning).
    """

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, kind: str, name: str, unit: str, help: str
    ) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise TelemetryError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            instrument = self._KINDS[kind](name, unit=unit, help=help)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, unit: str = "", help: str = "") -> Counter:
        return self._get_or_create("counter", name, unit, help)  # type: ignore[return-value]

    def gauge(self, name: str, unit: str = "", help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, unit, help)  # type: ignore[return-value]

    def histogram(self, name: str, unit: str = "", help: str = "") -> Histogram:
        return self._get_or_create("histogram", name, unit, help)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Instrument]:
        """The instrument registered under ``name``, or None."""
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[Instrument]:
        """All instruments, sorted by name."""
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.name)

    def reset(self) -> None:
        """Zero every instrument (identities are preserved)."""
        for instrument in self.instruments():
            instrument.reset()

    def snapshot(self) -> List[dict]:
        """One serialisable record per instrument, sorted by name."""
        return [instrument.snapshot() for instrument in self.instruments()]
