"""The auto-generated metric catalogue: registry -> markdown, with drift check.

Every instrument in this codebase is born with a unit and a help string
(:mod:`repro.telemetry.registry` requires neither, convention demands
both), which makes the registry itself the source of truth for the
documentation's metric table.  This module renders that table and checks
``docs/telemetry.md`` against it:

* ``python -m repro telemetry catalogue`` prints the markdown table;
* ``... catalogue --write docs/telemetry.md`` regenerates the table
  between the ``BEGIN``/``END`` markers in place;
* ``... catalogue --check docs/telemetry.md`` exits non-zero when the
  docs and the registry disagree — CI runs this, so a new instrument
  without a regenerated table (or a deleted one leaving a stale row)
  fails the build.

The registry is populated by *importing* the instrumented modules, so
:data:`INSTRUMENTED_MODULES` lists every module that binds instruments
at import time; a module added to the system without being listed here
shows up as drift the moment its metrics are documented (or never shows
up at all — which the docs reviewer will notice, and the check keeps
honest thereafter).
"""

from __future__ import annotations

import importlib
from typing import List, Optional

#: Modules that bind instruments at import time.  Importing these fills
#: the process-wide registry with the full catalogue.
INSTRUMENTED_MODULES = (
    "repro.core",
    "repro.batch",
    "repro.network",
    "repro.thermal",
    "repro.serve",
    "repro.serve.engine",
    "repro.dtm.engine",
    "repro.dtm.service",
    "repro.dtm.table",
    "repro.edge.server",
    "repro.edge.supervisor",
    "repro.fleet.client",
    "repro.fleet.supervisor",
    "repro.experiments.runner",
    "repro.telemetry",  # binds the stream.* instruments via the streaming layer
)

#: Markers delimiting the generated table inside ``docs/telemetry.md``.
BEGIN_MARK = (
    "<!-- BEGIN metric catalogue "
    "(generated: python -m repro telemetry catalogue --write docs/telemetry.md) -->"
)
END_MARK = "<!-- END metric catalogue -->"

_HEADER = "| name | kind | unit | description |"
_RULE = "|---|---|---|---|"


def collect() -> List[dict]:
    """Import every instrumented module; return the catalogue rows sorted.

    Each row is ``{"name", "kind", "unit", "help"}``.
    """
    for module in INSTRUMENTED_MODULES:
        importlib.import_module(module)
    from repro import telemetry

    rows = [
        {
            "name": instrument.name,
            "kind": instrument.kind,
            "unit": instrument.unit or "-",
            "help": instrument.help or "-",
        }
        for instrument in telemetry.get().registry.instruments()
    ]
    rows.sort(key=lambda row: row["name"])
    return rows


def render_table(rows: Optional[List[dict]] = None) -> str:
    """The catalogue as a markdown table (no surrounding markers)."""
    if rows is None:
        rows = collect()
    lines = [_HEADER, _RULE]
    for row in rows:
        lines.append(
            f"| `{row['name']}` | {row['kind']} | {row['unit']} | {row['help']} |"
        )
    return "\n".join(lines)


def render_block(rows: Optional[List[dict]] = None) -> str:
    """The generated region, markers included."""
    return f"{BEGIN_MARK}\n{render_table(rows)}\n{END_MARK}"


def _split_docs(text: str, path: str) -> tuple:
    """(before, table, after) around the marker region, or raise."""
    try:
        before, rest = text.split(BEGIN_MARK, 1)
        table, after = rest.split(END_MARK, 1)
    except ValueError:
        raise ValueError(
            f"{path} has no metric-catalogue markers "
            f"({BEGIN_MARK!r} ... {END_MARK!r})"
        ) from None
    return before, table.strip("\n"), after


def check_docs(path: str) -> List[str]:
    """Drift between the docs' table and the live registry (empty = clean)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    _, documented, _ = _split_docs(text, path)
    expected = render_table()
    if documented == expected:
        return []
    documented_rows = {
        line.split("|")[1].strip(): line
        for line in documented.splitlines()
        if line.startswith("| `")
    }
    expected_rows = {
        line.split("|")[1].strip(): line
        for line in expected.splitlines()
        if line.startswith("| `")
    }
    drift = []
    for name in sorted(expected_rows.keys() - documented_rows.keys()):
        drift.append(f"missing from docs: {name}")
    for name in sorted(documented_rows.keys() - expected_rows.keys()):
        drift.append(f"stale in docs (no such instrument): {name}")
    for name in sorted(expected_rows.keys() & documented_rows.keys()):
        if expected_rows[name] != documented_rows[name]:
            drift.append(f"row differs: {name}")
    return drift or ["table formatting differs from the generator's output"]


def write_docs(path: str) -> bool:
    """Regenerate the table in place; True when the file changed."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    before, _, after = _split_docs(text, path)
    updated = before + render_block() + after
    if updated == text:
        return False
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(updated)
    return True


__all__ = [
    "BEGIN_MARK",
    "END_MARK",
    "INSTRUMENTED_MODULES",
    "check_docs",
    "collect",
    "render_block",
    "render_table",
    "write_docs",
]
