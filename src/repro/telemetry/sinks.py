"""Where telemetry records go: null, in-memory, or JSON-lines file.

A sink receives two record streams — finished trace spans (one dict per
span, streamed as they close) and metric snapshots (one dict per
instrument, written on flush).  Records are plain JSON-serialisable
dicts; see :mod:`repro.telemetry.registry` and
:mod:`repro.telemetry.spans` for the schemas.

All sinks are thread-safe: the parallel experiment runner closes spans
from worker threads.
"""

from __future__ import annotations

import json
import threading
from typing import IO, List, Optional, Union


class Sink:
    """Base sink: discards everything (also serves as the null sink)."""

    def emit_span(self, record: dict) -> None:
        """Receive one finished span record."""

    def emit_metric(self, record: dict) -> None:
        """Receive one metric snapshot record."""

    def flush(self) -> None:
        """Push buffered records to their destination."""

    def close(self) -> None:
        """Release resources; the sink must not be used afterwards."""


class NullSink(Sink):
    """Explicit do-nothing sink (telemetry on, export off)."""


class InMemorySink(Sink):
    """Collects records into lists — the test/debugging sink.

    Attributes:
        spans: Finished span records, in completion order.
        metrics: Metric snapshot records, in flush order.
    """

    def __init__(self) -> None:
        self.spans: List[dict] = []
        self.metrics: List[dict] = []
        self._lock = threading.Lock()

    def emit_span(self, record: dict) -> None:
        with self._lock:
            self.spans.append(record)

    def emit_metric(self, record: dict) -> None:
        with self._lock:
            self.metrics.append(record)

    def spans_named(self, name: str) -> List[dict]:
        """The collected spans with a given name (test helper)."""
        with self._lock:
            return [span for span in self.spans if span["name"] == name]

    def clear(self) -> None:
        with self._lock:
            self.spans = []
            self.metrics = []


class JsonlSink(Sink):
    """Appends every record as one JSON line to a file.

    Args:
        target: Path to open (truncating) or an already-open text handle
            (not closed by :meth:`close` when handed in).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: Optional[IO[str]] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()

    def _write(self, record: dict) -> None:
        # Serialise *inside* the lock: a record that is still being
        # updated by another thread must not be snapshotted concurrently
        # with a write, and the serialise+write pair must be atomic for
        # lines to stay whole under concurrent emitters.
        with self._lock:
            if self._handle is None:
                raise ValueError("JsonlSink is closed")
            line = json.dumps(record, sort_keys=True)
            self._handle.write(line + "\n")

    def emit_span(self, record: dict) -> None:
        self._write(record)

    def emit_metric(self, record: dict) -> None:
        self._write(record)

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self._owns_handle:
                self._handle.close()
            self._handle = None
